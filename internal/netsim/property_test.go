package netsim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"dvod/internal/grnet"
	"dvod/internal/routing"
	"dvod/internal/topology"
)

// grnetNet builds an idle emulator over the GRNET backbone.
func grnetNet(t *testing.T) (*Network, *topology.Graph) {
	t.Helper()
	g, err := grnet.Backbone()
	if err != nil {
		t.Fatal(err)
	}
	return New(g, t0), g
}

// Property: with random flows over random paths, every active flow's rate is
// non-negative and no link carries more than its residual capacity.
func TestAllocationFeasibilityProperty(t *testing.T) {
	g, err := grnet.Backbone()
	if err != nil {
		t.Fatal(err)
	}
	nodes := g.Nodes()
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := New(g, t0)
		// Random background.
		for _, l := range g.Links() {
			if err := n.SetBackground(l.ID, r.Float64()*l.CapacityMbps); err != nil {
				return false
			}
		}
		// Random flows over shortest hop paths between random node pairs.
		flows := make([]*Flow, 0, 8)
		tree := map[topology.NodeID]*routing.Tree{}
		for range 1 + r.Intn(8) {
			src := nodes[r.Intn(len(nodes))]
			dst := nodes[r.Intn(len(nodes))]
			if src == dst {
				continue
			}
			tr, ok := tree[src]
			if !ok {
				var err error
				tr, err = routing.ShortestPaths(g, routing.MinHopWeights(g), src)
				if err != nil {
					return false
				}
				tree[src] = tr
			}
			path, err := tr.PathTo(dst)
			if err != nil {
				return false
			}
			f, err := n.StartFlow(path, 1+r.Int63n(1<<20))
			if err != nil {
				return false
			}
			flows = append(flows, f)
		}
		// Feasibility: per-link flow sum ≤ residual capacity.
		for _, l := range g.Links() {
			var sum float64
			for _, f := range flows {
				if done, _ := n.Completed(f); done {
					continue
				}
				for _, id := range f.Path().Links() {
					if id == l.ID {
						sum += n.RateMbps(f)
					}
				}
			}
			residual := l.CapacityMbps - n.Background(l.ID)
			if sum > residual+1e-9 {
				return false
			}
			if sum < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: byte conservation — a flow that RunUntilIdle completes has
// delivered exactly its size: completion time × integrated rate equals the
// requested bytes (verified via remaining-bytes bookkeeping and exact
// completion instants for a single flow).
func TestByteConservationProperty(t *testing.T) {
	g, err := grnet.Backbone()
	if err != nil {
		t.Fatal(err)
	}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := New(g, t0)
		path := routing.Path{Nodes: []topology.NodeID{grnet.Patra, grnet.Athens}}
		bytes := 1 + r.Int63n(1<<22)
		bg := r.Float64() * 1.9
		id := topology.MakeLinkID(grnet.Patra, grnet.Athens)
		if err := n.SetBackground(id, bg); err != nil {
			return false
		}
		f, err := n.StartFlow(path, bytes)
		if err != nil {
			return false
		}
		if err := n.RunUntilIdle(24 * time.Hour); err != nil {
			return false
		}
		done, at := n.Completed(f)
		if !done {
			return false
		}
		// Analytic completion time: bytes / residual rate.
		rate := 2 - bg // Mbps
		wantSec := float64(bytes) / (rate * 1e6 / 8)
		gotSec := at.Sub(t0).Seconds()
		return math.Abs(gotSec-wantSec) < wantSec*1e-6+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: completion order matches size order for same-path flows started
// together (max-min fairness gives them equal rates throughout).
func TestSamePathCompletionOrderProperty(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := topology.NewGraph()
		if err := g.AddNode("A"); err != nil {
			return false
		}
		if err := g.AddNode("B"); err != nil {
			return false
		}
		if _, err := g.AddLink("A", "B", 8); err != nil {
			return false
		}
		n := New(g, t0)
		path := routing.Path{Nodes: []topology.NodeID{"A", "B"}}
		sizes := make([]int64, 2+r.Intn(4))
		flows := make([]*Flow, len(sizes))
		for i := range sizes {
			sizes[i] = 1 + r.Int63n(1<<20)
			f, err := n.StartFlow(path, sizes[i])
			if err != nil {
				return false
			}
			flows[i] = f
		}
		if err := n.RunUntilIdle(time.Hour); err != nil {
			return false
		}
		for i := range flows {
			for j := range flows {
				_, ti := n.Completed(flows[i])
				_, tj := n.Completed(flows[j])
				if sizes[i] < sizes[j] && ti.After(tj) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestNextEventIgnoresStalledFlows(t *testing.T) {
	n, g := grnetNet(t)
	id := topology.MakeLinkID(grnet.Patra, grnet.Athens)
	if err := n.SetBackground(id, 2); err != nil {
		t.Fatal(err)
	}
	_, err := n.StartFlow(routing.Path{Nodes: []topology.NodeID{grnet.Patra, grnet.Athens}}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := n.NextEventAt(); ok {
		t.Fatal("stalled flow produced a next event")
	}
	_ = g
}
