package netsim

import (
	"testing"
	"time"

	"dvod/internal/topology"
)

func TestSetLatencyValidation(t *testing.T) {
	g, id := pair(t, 8)
	n := New(g, t0)
	if err := n.SetLatency("no--link", time.Millisecond); err == nil {
		t.Fatal("unknown link accepted")
	}
	if err := n.SetLatency(id, -time.Millisecond); err == nil {
		t.Fatal("negative latency accepted")
	}
	if err := n.SetLatency(id, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if n.Latency(id) != 5*time.Millisecond {
		t.Fatalf("Latency = %v", n.Latency(id))
	}
}

func TestLatencyDelaysCompletion(t *testing.T) {
	g, id := pair(t, 8) // 1 MB/s
	n := New(g, t0)
	if err := n.SetLatency(id, 100*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	f, err := n.StartFlow(path("A", "B"), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	// During the propagation delay nothing moves and no bandwidth is
	// consumed.
	if n.RateMbps(f) != 0 {
		t.Fatalf("rate during propagation = %g", n.RateMbps(f))
	}
	u, err := n.LinkUtilization(id)
	if err != nil {
		t.Fatal(err)
	}
	if u != 0 {
		t.Fatalf("utilization during propagation = %g", u)
	}
	if err := n.Advance(50 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if got := n.RemainingBytes(f); got != 1_000_000 {
		t.Fatalf("remaining mid-propagation = %d", got)
	}
	// After activation the full rate applies; completion at latency +
	// transfer time.
	if err := n.RunUntilIdle(time.Minute); err != nil {
		t.Fatal(err)
	}
	done, at := n.Completed(f)
	want := t0.Add(1100 * time.Millisecond)
	if !done || !at.Equal(want) {
		t.Fatalf("completed=%v at=%v, want %v", done, at, want)
	}
}

func TestPathLatencySums(t *testing.T) {
	g := chain(t, 10, 10)
	n := New(g, t0)
	if err := n.SetLatency(topology.MakeLinkID("A", "B"), 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := n.SetLatency(topology.MakeLinkID("B", "C"), 15*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	p := path("A", "B", "C")
	if got := n.PathLatency(p); got != 25*time.Millisecond {
		t.Fatalf("PathLatency = %v", got)
	}
	// TransferTime includes it: 1 MB over 10 Mbps = 800ms, plus 25ms.
	d, err := n.TransferTime(p, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if d != 825*time.Millisecond {
		t.Fatalf("TransferTime = %v", d)
	}
}

func TestInactiveFlowDoesNotStealBandwidth(t *testing.T) {
	g, id := pair(t, 8)
	n := New(g, t0)
	if err := n.SetLatency(id, time.Second); err != nil {
		t.Fatal(err)
	}
	// A delayed flow and an... immediate one is impossible on the same
	// link (same latency); use a second link instead.
	if err := g.AddNode("C"); err != nil {
		t.Fatal(err)
	}
	id2, err := g.AddLink("A", "C", 8)
	if err != nil {
		t.Fatal(err)
	}
	_ = id2
	delayed, err := n.StartFlow(path("A", "B"), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	// During the delay, a flow on the zero-latency link is unaffected...
	// and once the delayed flow activates, both links carry their own
	// traffic independently anyway. The meaningful check: the delayed
	// flow's rate stays 0 until t0+1s, then becomes 8.
	if err := n.Advance(999 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if n.RateMbps(delayed) != 0 {
		t.Fatalf("rate before activation = %g", n.RateMbps(delayed))
	}
	if err := n.Advance(2 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if n.RateMbps(delayed) != 8 {
		t.Fatalf("rate after activation = %g", n.RateMbps(delayed))
	}
}

func TestLatencySharingAfterActivation(t *testing.T) {
	// Two flows on one 8 Mbps link with 100ms latency, started together:
	// both activate together and share 4/4.
	g, id := pair(t, 8)
	n := New(g, t0)
	if err := n.SetLatency(id, 100*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	f1, err := n.StartFlow(path("A", "B"), 500_000)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := n.StartFlow(path("A", "B"), 500_000)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Advance(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if n.RateMbps(f1) != 4 || n.RateMbps(f2) != 4 {
		t.Fatalf("rates = %g/%g", n.RateMbps(f1), n.RateMbps(f2))
	}
	if err := n.RunUntilIdle(time.Minute); err != nil {
		t.Fatal(err)
	}
	// 0.5 MB at 0.5 MB/s = 1s after the 100ms activation.
	_, at := n.Completed(f1)
	if want := t0.Add(1100 * time.Millisecond); !at.Equal(want) {
		t.Fatalf("completion = %v, want %v", at, want)
	}
}

func TestZeroLatencyBehaviourUnchanged(t *testing.T) {
	// Sanity: with no latency configured the original exact numbers hold.
	g, _ := pair(t, 8)
	n := New(g, t0)
	f, err := n.StartFlow(path("A", "B"), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.RunUntilIdle(time.Minute); err != nil {
		t.Fatal(err)
	}
	_, at := n.Completed(f)
	if !at.Equal(t0.Add(time.Second)) {
		t.Fatalf("completion = %v", at)
	}
}
