package netsim

import (
	"errors"
	"math"
	"testing"
	"time"

	"dvod/internal/routing"
	"dvod/internal/topology"
)

var t0 = time.Date(2000, time.April, 10, 8, 0, 0, 0, time.UTC)

// pair builds A--B with the given capacity.
func pair(t *testing.T, capMbps float64) (*topology.Graph, topology.LinkID) {
	t.Helper()
	g := topology.NewGraph()
	for _, n := range []topology.NodeID{"A", "B"} {
		if err := g.AddNode(n); err != nil {
			t.Fatal(err)
		}
	}
	id, err := g.AddLink("A", "B", capMbps)
	if err != nil {
		t.Fatal(err)
	}
	return g, id
}

// chain builds A-B-C with the given capacities.
func chain(t *testing.T, cap1, cap2 float64) *topology.Graph {
	t.Helper()
	g := topology.NewGraph()
	for _, n := range []topology.NodeID{"A", "B", "C"} {
		if err := g.AddNode(n); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := g.AddLink("A", "B", cap1); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddLink("B", "C", cap2); err != nil {
		t.Fatal(err)
	}
	return g
}

func path(nodes ...topology.NodeID) routing.Path {
	return routing.Path{Nodes: nodes}
}

func TestSingleFlowTransferTime(t *testing.T) {
	g, _ := pair(t, 8) // 8 Mbps = 1 MB/s
	n := New(g, t0)
	f, err := n.StartFlow(path("A", "B"), 1_000_000) // 1 MB
	if err != nil {
		t.Fatalf("StartFlow: %v", err)
	}
	if got := n.RateMbps(f); got != 8 {
		t.Fatalf("rate = %g, want 8", got)
	}
	next, ok := n.NextEventAt()
	if !ok {
		t.Fatal("no next event")
	}
	if want := t0.Add(time.Second); !next.Equal(want) {
		t.Fatalf("completion at %v, want %v", next, want)
	}
	if err := n.RunUntilIdle(time.Minute); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	done, at := n.Completed(f)
	if !done || !at.Equal(t0.Add(time.Second)) {
		t.Fatalf("completed=%v at=%v", done, at)
	}
	if n.RemainingBytes(f) != 0 {
		t.Fatalf("remaining = %d", n.RemainingBytes(f))
	}
}

func TestBackgroundReducesRate(t *testing.T) {
	g, id := pair(t, 8)
	n := New(g, t0)
	if err := n.SetBackground(id, 4); err != nil {
		t.Fatal(err)
	}
	f, err := n.StartFlow(path("A", "B"), 500_000) // 0.5 MB at 0.5 MB/s = 1s
	if err != nil {
		t.Fatal(err)
	}
	if got := n.RateMbps(f); got != 4 {
		t.Fatalf("rate = %g, want 4", got)
	}
	u, err := n.LinkUtilization(id)
	if err != nil {
		t.Fatal(err)
	}
	if u != 1.0 {
		t.Fatalf("utilization = %g, want 1 (4 bg + 4 flow over 8)", u)
	}
	if err := n.RunUntilIdle(time.Minute); err != nil {
		t.Fatal(err)
	}
	done, at := n.Completed(f)
	if !done || !at.Equal(t0.Add(time.Second)) {
		t.Fatalf("completed=%v at=%v", done, at)
	}
}

func TestTwoFlowsShareFairly(t *testing.T) {
	g, _ := pair(t, 8)
	n := New(g, t0)
	f1, err := n.StartFlow(path("A", "B"), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := n.StartFlow(path("A", "B"), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if n.RateMbps(f1) != 4 || n.RateMbps(f2) != 4 {
		t.Fatalf("rates = %g/%g, want 4/4", n.RateMbps(f1), n.RateMbps(f2))
	}
	// Both complete at t0+2s; after completion nothing remains.
	if err := n.RunUntilIdle(time.Minute); err != nil {
		t.Fatal(err)
	}
	_, at1 := n.Completed(f1)
	_, at2 := n.Completed(f2)
	want := t0.Add(2 * time.Second)
	if !at1.Equal(want) || !at2.Equal(want) {
		t.Fatalf("completions %v/%v, want %v", at1, at2, want)
	}
}

func TestFlowSpeedsUpWhenCompetitorFinishes(t *testing.T) {
	g, _ := pair(t, 8)
	n := New(g, t0)
	// f1: 0.5 MB, f2: 1 MB. Shared at 4 Mbps (0.5 MB/s each): f1 done at
	// 1s; then f2 runs at 8 Mbps for its remaining 0.5 MB → done at 1.5s.
	f1, err := n.StartFlow(path("A", "B"), 500_000)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := n.StartFlow(path("A", "B"), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.RunUntilIdle(time.Minute); err != nil {
		t.Fatal(err)
	}
	_, at1 := n.Completed(f1)
	_, at2 := n.Completed(f2)
	if !at1.Equal(t0.Add(time.Second)) {
		t.Fatalf("f1 completed at %v, want t0+1s", at1)
	}
	if !at2.Equal(t0.Add(1500 * time.Millisecond)) {
		t.Fatalf("f2 completed at %v, want t0+1.5s", at2)
	}
}

func TestMaxMinAcrossBottleneck(t *testing.T) {
	// A-B at 10, B-C at 2. A two-hop flow A→C is limited to 2 even though
	// A-B has room; a one-hop flow A→B then gets the remaining 8.
	g := chain(t, 10, 2)
	n := New(g, t0)
	long, err := n.StartFlow(path("A", "B", "C"), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	short, err := n.StartFlow(path("A", "B"), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if got := n.RateMbps(long); math.Abs(got-2) > 1e-9 {
		t.Fatalf("long rate = %g, want 2 (bottleneck B-C)", got)
	}
	if got := n.RateMbps(short); math.Abs(got-8) > 1e-9 {
		t.Fatalf("short rate = %g, want 8 (residual of A-B)", got)
	}
}

func TestZeroHopFlowCompletesInstantly(t *testing.T) {
	g, _ := pair(t, 8)
	n := New(g, t0)
	f, err := n.StartFlow(path("A"), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	done, at := n.Completed(f)
	if !done || !at.Equal(t0) {
		t.Fatalf("zero-hop flow: done=%v at=%v", done, at)
	}
	if n.ActiveFlows() != 0 {
		t.Fatalf("ActiveFlows = %d", n.ActiveFlows())
	}
}

func TestStartFlowValidation(t *testing.T) {
	g, _ := pair(t, 8)
	n := New(g, t0)
	if _, err := n.StartFlow(path("A", "B"), 0); !errors.Is(err, ErrBadBytes) {
		t.Fatalf("zero bytes error = %v", err)
	}
	if _, err := n.StartFlow(path("A", "Z"), 10); !errors.Is(err, ErrBadPath) {
		t.Fatalf("bad path error = %v", err)
	}
}

func TestSetBackgroundValidation(t *testing.T) {
	g, id := pair(t, 8)
	n := New(g, t0)
	if err := n.SetBackground("no--link", 1); !errors.Is(err, topology.ErrLinkUnknown) {
		t.Fatalf("unknown link error = %v", err)
	}
	if err := n.SetBackground(id, math.NaN()); err == nil {
		t.Fatal("NaN background accepted")
	}
	// Clamping.
	if err := n.SetBackground(id, -3); err != nil {
		t.Fatal(err)
	}
	if n.Background(id) != 0 {
		t.Fatalf("negative background = %g, want 0", n.Background(id))
	}
	if err := n.SetBackground(id, 100); err != nil {
		t.Fatal(err)
	}
	if n.Background(id) != 8 {
		t.Fatalf("oversized background = %g, want clamp to 8", n.Background(id))
	}
}

func TestCancelFlowFreesBandwidth(t *testing.T) {
	g, _ := pair(t, 8)
	n := New(g, t0)
	f1, err := n.StartFlow(path("A", "B"), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := n.StartFlow(path("A", "B"), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	n.CancelFlow(f1)
	if !n.Cancelled(f1) {
		t.Fatal("flow not cancelled")
	}
	if got := n.RateMbps(f2); got != 8 {
		t.Fatalf("survivor rate = %g, want 8", got)
	}
	if n.RateMbps(f1) != 0 {
		t.Fatal("cancelled flow still has a rate")
	}
	// Cancel of a completed flow is a no-op.
	if err := n.RunUntilIdle(time.Minute); err != nil {
		t.Fatal(err)
	}
	n.CancelFlow(f2)
	if done, _ := n.Completed(f2); !done {
		t.Fatal("completed flow flipped to cancelled")
	}
	n.CancelFlow(nil) // must not panic
}

func TestAdvanceBackwardsRejected(t *testing.T) {
	g, _ := pair(t, 8)
	n := New(g, t0)
	if err := n.AdvanceTo(t0.Add(-time.Second)); !errors.Is(err, ErrPastTime) {
		t.Fatalf("backwards advance error = %v", err)
	}
}

func TestAdvancePartialProgress(t *testing.T) {
	g, _ := pair(t, 8) // 1 MB/s
	n := New(g, t0)
	f, err := n.StartFlow(path("A", "B"), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Advance(500 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if got := n.RemainingBytes(f); got != 500_000 {
		t.Fatalf("remaining after 0.5s = %d, want 500000", got)
	}
	if done, _ := n.Completed(f); done {
		t.Fatal("flow completed early")
	}
	if err := n.Advance(time.Second); err != nil {
		t.Fatal(err)
	}
	done, at := n.Completed(f)
	if !done || !at.Equal(t0.Add(time.Second)) {
		t.Fatalf("done=%v at=%v, want completion exactly at t0+1s", done, at)
	}
}

func TestRunUntilIdleStalledAndBounds(t *testing.T) {
	g, id := pair(t, 8)
	n := New(g, t0)
	if err := n.SetBackground(id, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := n.StartFlow(path("A", "B"), 100); err != nil {
		t.Fatal(err)
	}
	if err := n.RunUntilIdle(time.Minute); !errors.Is(err, ErrStalled) {
		t.Fatalf("stalled error = %v", err)
	}
	// Free the link but bound too tight.
	if err := n.SetBackground(id, 7.999999); err != nil {
		t.Fatal(err)
	}
	if err := n.RunUntilIdle(time.Nanosecond); !errors.Is(err, ErrMaxElapsed) {
		t.Fatalf("bound error = %v", err)
	}
}

func TestBackgroundChangeMidFlow(t *testing.T) {
	g, id := pair(t, 8) // 1 MB/s clean
	n := New(g, t0)
	f, err := n.StartFlow(path("A", "B"), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	// Half done at 0.5s, then background eats half the capacity: the
	// remaining 0.5 MB moves at 0.5 MB/s → completes at 1.5s.
	if err := n.Advance(500 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := n.SetBackground(id, 4); err != nil {
		t.Fatal(err)
	}
	if err := n.RunUntilIdle(time.Minute); err != nil {
		t.Fatal(err)
	}
	_, at := n.Completed(f)
	if want := t0.Add(1500 * time.Millisecond); !at.Equal(want) {
		t.Fatalf("completed at %v, want %v", at, want)
	}
}

func TestLinkUsedMbps(t *testing.T) {
	g, id := pair(t, 8)
	n := New(g, t0)
	if err := n.SetBackground(id, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := n.StartFlow(path("A", "B"), 1_000_000); err != nil {
		t.Fatal(err)
	}
	used, err := n.LinkUsedMbps(id)
	if err != nil {
		t.Fatal(err)
	}
	if used != 8 { // 2 bg + 6 flow
		t.Fatalf("used = %g, want 8", used)
	}
	if _, err := n.LinkUsedMbps("no--link"); err == nil {
		t.Fatal("unknown link accepted")
	}
	if _, err := n.LinkUtilization("no--link"); err == nil {
		t.Fatal("unknown link accepted")
	}
}

func TestTransferTime(t *testing.T) {
	g := chain(t, 10, 2)
	n := New(g, t0)
	// Bottleneck 2 Mbps = 0.25 MB/s → 1 MB in 4s.
	d, err := n.TransferTime(path("A", "B", "C"), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if d != 4*time.Second {
		t.Fatalf("TransferTime = %v, want 4s", d)
	}
	if d, err := n.TransferTime(path("A"), 100); err != nil || d != 0 {
		t.Fatalf("zero-hop TransferTime = %v, %v", d, err)
	}
	if _, err := n.TransferTime(path("A", "B"), 0); !errors.Is(err, ErrBadBytes) {
		t.Fatalf("zero bytes error = %v", err)
	}
	if _, err := n.TransferTime(path("A", "Z"), 10); !errors.Is(err, ErrBadPath) {
		t.Fatalf("bad path error = %v", err)
	}
	// Saturated link → effectively infinite.
	id := topology.MakeLinkID("B", "C")
	if err := n.SetBackground(id, 2); err != nil {
		t.Fatal(err)
	}
	d, err = n.TransferTime(path("A", "B", "C"), 100)
	if err != nil {
		t.Fatal(err)
	}
	if d < time.Hour {
		t.Fatalf("saturated TransferTime = %v, want huge", d)
	}
}

func TestFlowAccessors(t *testing.T) {
	g, _ := pair(t, 8)
	n := New(g, t0)
	f, err := n.StartFlow(path("A", "B"), 123)
	if err != nil {
		t.Fatal(err)
	}
	if f.TotalBytes() != 123 || f.Path().String() != "A,B" {
		t.Fatalf("accessors wrong: %d %s", f.TotalBytes(), f.Path())
	}
	f2, err := n.StartFlow(path("A", "B"), 10)
	if err != nil {
		t.Fatal(err)
	}
	if f.ID() == f2.ID() {
		t.Fatal("flow IDs collide")
	}
}

// Conservation: on a single link the sum of allocated rates never exceeds
// residual capacity.
func TestRateConservation(t *testing.T) {
	g, id := pair(t, 10)
	n := New(g, t0)
	if err := n.SetBackground(id, 3); err != nil {
		t.Fatal(err)
	}
	flows := make([]*Flow, 5)
	for i := range flows {
		f, err := n.StartFlow(path("A", "B"), 1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		flows[i] = f
	}
	var sum float64
	for _, f := range flows {
		sum += n.RateMbps(f)
	}
	if sum > 7+1e-9 {
		t.Fatalf("allocated %g Mbps over 7 residual", sum)
	}
	if math.Abs(sum-7) > 1e-9 {
		t.Fatalf("work-conserving allocation should use all 7 Mbps, got %g", sum)
	}
}
