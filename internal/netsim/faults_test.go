package netsim

import (
	"math"
	"testing"
	"time"

	"dvod/internal/topology"
)

func TestSetLinkDownStallsFlows(t *testing.T) {
	g, id := pair(t, 8)
	n := New(g, t0)
	f, err := n.StartFlow(path("A", "B"), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if got := n.RateMbps(f); got != 8 {
		t.Fatalf("rate before outage = %v", got)
	}
	if err := n.SetLinkDown(id, true); err != nil {
		t.Fatal(err)
	}
	if !n.LinkDown(id) {
		t.Fatal("LinkDown = false after SetLinkDown")
	}
	if got := n.RateMbps(f); got != 0 {
		t.Fatalf("rate during outage = %v, want 0", got)
	}
	// The flow makes no progress while the link is down.
	before := n.RemainingBytes(f)
	n.Advance(time.Second)
	if got := n.RemainingBytes(f); got != before {
		t.Fatalf("flow progressed over a down link: %d -> %d", before, got)
	}
	// Restoration resumes the transfer at full rate.
	if err := n.SetLinkDown(id, false); err != nil {
		t.Fatal(err)
	}
	if got := n.RateMbps(f); got != 8 {
		t.Fatalf("rate after restore = %v", got)
	}
	n.Advance(2 * time.Second)
	if done, _ := n.Completed(f); !done {
		t.Fatal("flow did not finish after the link came back")
	}
}

func TestLinkDownTransferTimeUnreachable(t *testing.T) {
	g := chain(t, 8, 8)
	n := New(g, t0)
	id := topology.MakeLinkID("B", "C")
	if err := n.SetLinkDown(id, true); err != nil {
		t.Fatal(err)
	}
	d, err := n.TransferTime(path("A", "B", "C"), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if d != time.Duration(math.MaxInt64) {
		t.Fatalf("transfer time over a down link = %v, want unreachable", d)
	}
	// The healthy prefix is unaffected.
	d, err = n.TransferTime(path("A", "B"), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if d >= time.Duration(math.MaxInt64) {
		t.Fatal("healthy link reported unreachable")
	}
}

func TestSetLinkDownUnknownLink(t *testing.T) {
	g, _ := pair(t, 8)
	n := New(g, t0)
	if err := n.SetLinkDown(topology.MakeLinkID("X", "Y"), true); err == nil {
		t.Fatal("unknown link accepted")
	}
}
