package striping

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"dvod/internal/disk"
	"dvod/internal/media"
)

func title(name string, size int64) media.Title {
	return media.Title{Name: name, SizeBytes: size, BitrateMbps: 1.5}
}

func array(t *testing.T, n int, capacity int64) *disk.Array {
	t.Helper()
	arr, err := disk.NewUniformArray("t", n, capacity)
	if err != nil {
		t.Fatalf("NewUniformArray: %v", err)
	}
	return arr
}

func TestNewLayoutValidation(t *testing.T) {
	if _, err := NewLayout(title("m", 100), 0, 3); !errors.Is(err, ErrBadCluster) {
		t.Fatalf("zero cluster error = %v", err)
	}
	if _, err := NewLayout(title("m", 100), 10, 0); !errors.Is(err, disk.ErrNoDisks) {
		t.Fatalf("zero disks error = %v", err)
	}
	if _, err := NewLayout(media.Title{}, 10, 3); err == nil {
		t.Fatal("invalid title accepted")
	}
}

func TestLayoutPartMath(t *testing.T) {
	// 100 bytes, 30-byte clusters → 4 parts: 30,30,30,10.
	l, err := NewLayout(title("m", 100), 30, 3)
	if err != nil {
		t.Fatal(err)
	}
	if l.NumParts() != 4 {
		t.Fatalf("NumParts = %d, want 4", l.NumParts())
	}
	wantRanges := [][2]int64{{0, 30}, {30, 30}, {60, 30}, {90, 10}}
	wantDisks := []int{0, 1, 2, 0} // cyclic wrap: p > n reuses disk 0
	for p := range 4 {
		off, length, err := l.PartRange(p)
		if err != nil {
			t.Fatal(err)
		}
		if off != wantRanges[p][0] || length != wantRanges[p][1] {
			t.Fatalf("PartRange(%d) = %d,%d want %v", p, off, length, wantRanges[p])
		}
		di, err := l.DiskFor(p)
		if err != nil {
			t.Fatal(err)
		}
		if di != wantDisks[p] {
			t.Fatalf("DiskFor(%d) = %d, want %d", p, di, wantDisks[p])
		}
	}
	if _, _, err := l.PartRange(4); !errors.Is(err, ErrBadPart) {
		t.Fatalf("PartRange(4) error = %v", err)
	}
	if _, err := l.DiskFor(-1); !errors.Is(err, ErrBadPart) {
		t.Fatalf("DiskFor(-1) error = %v", err)
	}
}

func TestLayoutFewerPartsThanDisks(t *testing.T) {
	// Paper: "if n>p then one video part is stored in each one of the first
	// p hard disks".
	l, err := NewLayout(title("m", 50), 30, 8)
	if err != nil {
		t.Fatal(err)
	}
	if l.NumParts() != 2 {
		t.Fatalf("NumParts = %d, want 2", l.NumParts())
	}
	for p := range 2 {
		di, err := l.DiskFor(p)
		if err != nil {
			t.Fatal(err)
		}
		if di != p {
			t.Fatalf("DiskFor(%d) = %d, want %d", p, di, p)
		}
	}
}

func TestPartForOffset(t *testing.T) {
	l, err := NewLayout(title("m", 100), 30, 3)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		off  int64
		want int
	}{{0, 0}, {29, 0}, {30, 1}, {89, 2}, {90, 3}, {99, 3}}
	for _, tc := range cases {
		got, err := l.PartForOffset(tc.off)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Fatalf("PartForOffset(%d) = %d, want %d", tc.off, got, tc.want)
		}
	}
	for _, off := range []int64{-1, 100} {
		if _, err := l.PartForOffset(off); err == nil {
			t.Fatalf("PartForOffset(%d) accepted", off)
		}
	}
}

func TestWriteAndReadBack(t *testing.T) {
	arr := array(t, 3, 1000)
	tt := title("movie", 250)
	layout, err := Write(arr, tt, 64, nil)
	if err != nil {
		t.Fatalf("Write: %v", err)
	}
	if layout.NumParts() != 4 {
		t.Fatalf("NumParts = %d, want 4", layout.NumParts())
	}
	if bad, err := VerifyStored(arr, layout); err != nil || bad != -1 {
		t.Fatalf("VerifyStored = %d, %v", bad, err)
	}
	// Whole-title range read matches canonical content.
	data, err := ReadRange(arr, layout, 0, 250)
	if err != nil {
		t.Fatalf("ReadRange: %v", err)
	}
	if !media.Verify("movie", 0, data) {
		t.Fatal("reassembled content mismatch")
	}
	// Cross-part range.
	data, err = ReadRange(arr, layout, 60, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !media.Verify("movie", 60, data) {
		t.Fatal("cross-part range mismatch")
	}
	// Array accounting: 250 bytes stored.
	if arr.Used() != 250 {
		t.Fatalf("array used = %d, want 250", arr.Used())
	}
}

func TestReadRangeValidation(t *testing.T) {
	arr := array(t, 2, 1000)
	layout, err := Write(arr, title("m", 100), 30, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range [][2]int64{{-1, 10}, {0, 101}, {95, 10}, {0, -1}} {
		if _, err := ReadRange(arr, layout, tc[0], tc[1]); err == nil {
			t.Fatalf("ReadRange(%d,%d) accepted", tc[0], tc[1])
		}
	}
	// Zero-length read at a valid offset succeeds.
	data, err := ReadRange(arr, layout, 50, 0)
	if err != nil {
		t.Fatalf("zero-length ReadRange: %v", err)
	}
	if len(data) != 0 {
		t.Fatalf("zero-length read returned %d bytes", len(data))
	}
}

func TestWriteRollbackOnFullDisk(t *testing.T) {
	// Disk 0 gets parts 0 and 2 (2×30=60 bytes) but only holds 50: the
	// write must fail and leave the array empty.
	arr := array(t, 2, 50)
	tt := title("big", 100)
	if Fits(arr, tt, 30) {
		t.Fatal("Fits should report false")
	}
	if _, err := Write(arr, tt, 30, nil); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("Write error = %v, want ErrInsufficient", err)
	}
	if arr.Used() != 0 {
		t.Fatalf("rollback left %d bytes on array", arr.Used())
	}
}

func TestFitsPerDiskNotAggregate(t *testing.T) {
	// Aggregate free = 100, but cyclic placement puts 60 bytes on disk 0
	// which has only 50 free.
	arr := array(t, 2, 50)
	if Fits(arr, title("m", 100), 30) {
		t.Fatal("Fits ignored per-disk capacity")
	}
	// Same bytes over 4 disks fits.
	arr4 := array(t, 4, 50)
	if !Fits(arr4, title("m", 100), 30) {
		t.Fatal("Fits rejected a feasible layout")
	}
}

func TestDeleteFreesEverything(t *testing.T) {
	arr := array(t, 3, 1000)
	layout, err := Write(arr, title("m", 500), 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := Delete(arr, layout); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if arr.Used() != 0 {
		t.Fatalf("Delete left %d bytes", arr.Used())
	}
	// Deleting again is a no-op.
	if err := Delete(arr, layout); err != nil {
		t.Fatalf("second Delete: %v", err)
	}
}

func TestVerifyStoredDetectsCorruption(t *testing.T) {
	arr := array(t, 2, 1000)
	layout, err := Write(arr, title("m", 100), 30, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt part 1 by replacing it on its disk.
	di, err := layout.DiskFor(1)
	if err != nil {
		t.Fatal(err)
	}
	d, err := arr.Disk(di)
	if err != nil {
		t.Fatal(err)
	}
	id := disk.BlockID{Title: "m", Part: 1}
	if err := d.Delete(id); err != nil {
		t.Fatal(err)
	}
	if err := d.Write(id, make([]byte, 30)); err != nil {
		t.Fatal(err)
	}
	bad, err := VerifyStored(arr, layout)
	if err != nil {
		t.Fatal(err)
	}
	if bad != 1 {
		t.Fatalf("VerifyStored = %d, want 1", bad)
	}
}

// Property: for any size/cluster/disks, part ranges tile [0, size) exactly
// and each disk's assigned bytes differ by at most one cluster.
func TestLayoutTilingProperty(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		size := 1 + r.Int63n(10000)
		cluster := 1 + r.Int63n(500)
		nd := 1 + r.Intn(10)
		l, err := NewLayout(title("p", size), cluster, nd)
		if err != nil {
			return false
		}
		var next int64
		perDisk := make([]int64, nd)
		for p := range l.NumParts() {
			off, length, err := l.PartRange(p)
			if err != nil || off != next || length <= 0 || length > cluster {
				return false
			}
			di, err := l.DiskFor(p)
			if err != nil {
				return false
			}
			perDisk[di] += length
			next = off + length
		}
		if next != size {
			return false
		}
		// Balance: max and min per-disk load differ by at most one cluster
		// among disks that received any part.
		var mn, mx int64 = 1 << 62, 0
		for _, b := range perDisk {
			if b > mx {
				mx = b
			}
			if b > 0 && b < mn {
				mn = b
			}
		}
		return mx == 0 || mx-mn <= cluster
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: write then read-range returns canonical content for random
// sub-ranges.
func TestWriteReadRangeProperty(t *testing.T) {
	arr, err := disk.NewUniformArray("p", 3, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	tt := title("prop-movie", 5000)
	layout, err := Write(arr, tt, 256, nil)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		off := r.Int63n(5000)
		length := r.Int63n(5000 - off)
		data, err := ReadRange(arr, layout, off, length)
		if err != nil {
			return false
		}
		return media.Verify("prop-movie", off, data)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
