package striping

import (
	"errors"
	"testing"

	"dvod/internal/disk"
	"dvod/internal/media"
)

// TestWriteRollbackOnMidwayCollision: if a later part's block ID already
// exists on its disk, the write fails and every part written earlier is
// removed, leaving pre-existing foreign blocks untouched.
func TestWriteRollbackOnMidwayCollision(t *testing.T) {
	arr, err := disk.NewUniformArray("rb", 2, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// Occupy the slot part 2 of "m" would use (disk 0).
	d0, err := arr.Disk(0)
	if err != nil {
		t.Fatal(err)
	}
	squatter := disk.BlockID{Title: "m", Part: 2}
	if err := d0.Write(squatter, []byte("squat")); err != nil {
		t.Fatal(err)
	}
	usedBefore := arr.Used()

	title := media.Title{Name: "m", SizeBytes: 100, BitrateMbps: 1.5}
	_, err = Write(arr, title, 30, nil) // parts 0..3; part 2 collides
	if !errors.Is(err, ErrInsufficient) {
		t.Fatalf("Write error = %v, want ErrInsufficient wrapping the collision", err)
	}
	if arr.Used() != usedBefore {
		t.Fatalf("rollback left %d bytes, want %d", arr.Used(), usedBefore)
	}
	if !d0.Has(squatter) {
		t.Fatal("rollback deleted the pre-existing block")
	}
	got, err := d0.Read(squatter)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "squat" {
		t.Fatalf("squatter content = %q", got)
	}
}

// TestWriteCustomContentFunc: the content callback drives what lands on
// disk.
func TestWriteCustomContentFunc(t *testing.T) {
	arr, err := disk.NewUniformArray("cc", 2, 1000)
	if err != nil {
		t.Fatal(err)
	}
	title := media.Title{Name: "custom", SizeBytes: 10, BitrateMbps: 1.5}
	layout, err := Write(arr, title, 4, func(off int64, buf []byte) {
		for i := range buf {
			buf[i] = byte('A' + off + int64(i))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := ReadRange(arr, layout, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "ABCDEFGHIJ" {
		t.Fatalf("content = %q", data)
	}
	// Canonical verification fails by design for custom content.
	bad, err := VerifyStored(arr, layout)
	if err != nil {
		t.Fatal(err)
	}
	if bad == -1 {
		t.Fatal("custom content passed canonical verification")
	}
}
