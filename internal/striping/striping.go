// Package striping implements the DMA's storage layout (paper §"The
// algorithm"): a title of S bytes is divided into p = ⌈S/c⌉ parts of cluster
// size c, and part i is stored on disk i mod n of the server's n-disk array —
// "capacity oriented" cyclic placement. The same cluster boundaries drive the
// VRA's mid-stream re-routing: each cluster may be fetched from a different
// server.
package striping

import (
	"errors"
	"fmt"

	"dvod/internal/disk"
	"dvod/internal/media"
)

// Errors reported by the striping layer.
var (
	ErrBadCluster   = errors.New("cluster size must be positive")
	ErrBadPart      = errors.New("part index out of range")
	ErrInsufficient = errors.New("array cannot hold title")
)

// Layout describes how one title is striped over an array.
type Layout struct {
	Title        string `json:"title"`
	SizeBytes    int64  `json:"sizeBytes"`
	ClusterBytes int64  `json:"clusterBytes"`
	NumDisks     int    `json:"numDisks"`
}

// NewLayout computes the layout of a title over an n-disk array with cluster
// size c.
func NewLayout(t media.Title, clusterBytes int64, numDisks int) (Layout, error) {
	if err := t.Validate(); err != nil {
		return Layout{}, err
	}
	if clusterBytes <= 0 {
		return Layout{}, fmt.Errorf("%w: %d", ErrBadCluster, clusterBytes)
	}
	if numDisks <= 0 {
		return Layout{}, disk.ErrNoDisks
	}
	return Layout{
		Title:        t.Name,
		SizeBytes:    t.SizeBytes,
		ClusterBytes: clusterBytes,
		NumDisks:     numDisks,
	}, nil
}

// NumParts returns p = ⌈S/c⌉.
func (l Layout) NumParts() int {
	return int((l.SizeBytes + l.ClusterBytes - 1) / l.ClusterBytes)
}

// DiskFor returns the disk index holding part i: the cyclic rule of the
// paper (parts beyond n wrap around "starting from disk 1").
func (l Layout) DiskFor(part int) (int, error) {
	if part < 0 || part >= l.NumParts() {
		return 0, fmt.Errorf("%w: %d of %d", ErrBadPart, part, l.NumParts())
	}
	return part % l.NumDisks, nil
}

// PartRange returns the byte range [off, off+length) of part i within the
// title. The final part may be shorter than the cluster size.
func (l Layout) PartRange(part int) (off, length int64, err error) {
	if part < 0 || part >= l.NumParts() {
		return 0, 0, fmt.Errorf("%w: %d of %d", ErrBadPart, part, l.NumParts())
	}
	off = int64(part) * l.ClusterBytes
	length = l.ClusterBytes
	if off+length > l.SizeBytes {
		length = l.SizeBytes - off
	}
	return off, length, nil
}

// PartForOffset returns the part index containing byte offset off.
func (l Layout) PartForOffset(off int64) (int, error) {
	if off < 0 || off >= l.SizeBytes {
		return 0, fmt.Errorf("offset %d outside title of %d bytes", off, l.SizeBytes)
	}
	return int(off / l.ClusterBytes), nil
}

// ContentFunc supplies title content for writing: it fills buf with the
// title's bytes starting at off. media.ContentAt (curried) is the canonical
// implementation.
type ContentFunc func(off int64, buf []byte)

// TitleContent adapts package media's deterministic generator to a
// ContentFunc for the named title.
func TitleContent(name string) ContentFunc {
	return func(off int64, buf []byte) { media.ContentAt(name, off, buf) }
}

// Fits reports whether the title would fit on the array right now, honoring
// per-disk capacity under cyclic placement (not just aggregate free space).
func Fits(arr *disk.Array, t media.Title, clusterBytes int64) bool {
	layout, err := NewLayout(t, clusterBytes, arr.NumDisks())
	if err != nil {
		return false
	}
	need := make([]int64, arr.NumDisks())
	for part := range layout.NumParts() {
		di, err := layout.DiskFor(part)
		if err != nil {
			return false
		}
		_, length, err := layout.PartRange(part)
		if err != nil {
			return false
		}
		need[di] += length
	}
	for i, n := range need {
		d, err := arr.Disk(i)
		if err != nil {
			return false
		}
		if d.Free() < n {
			return false
		}
	}
	return true
}

// Write stripes the title's content onto the array. On any failure every
// block written so far is rolled back and the array is left unchanged.
func Write(arr *disk.Array, t media.Title, clusterBytes int64, content ContentFunc) (Layout, error) {
	layout, err := NewLayout(t, clusterBytes, arr.NumDisks())
	if err != nil {
		return Layout{}, err
	}
	if content == nil {
		content = TitleContent(t.Name)
	}
	written := make([]struct {
		d  *disk.Disk
		id disk.BlockID
	}, 0, layout.NumParts())
	rollback := func() {
		for _, w := range written {
			_ = w.d.Delete(w.id)
		}
	}
	buf := make([]byte, clusterBytes)
	for part := range layout.NumParts() {
		di, err := layout.DiskFor(part)
		if err != nil {
			rollback()
			return Layout{}, err
		}
		d, err := arr.Disk(di)
		if err != nil {
			rollback()
			return Layout{}, err
		}
		off, length, err := layout.PartRange(part)
		if err != nil {
			rollback()
			return Layout{}, err
		}
		chunk := buf[:length]
		content(off, chunk)
		id := disk.BlockID{Title: t.Name, Part: part}
		if err := d.Write(id, chunk); err != nil {
			rollback()
			return Layout{}, fmt.Errorf("%w: part %d: %v", ErrInsufficient, part, err)
		}
		written = append(written, struct {
			d  *disk.Disk
			id disk.BlockID
		}{d, id})
	}
	return layout, nil
}

// ReadPart returns the bytes of one part from the array.
func ReadPart(arr *disk.Array, layout Layout, part int) ([]byte, error) {
	di, err := layout.DiskFor(part)
	if err != nil {
		return nil, err
	}
	d, err := arr.Disk(di)
	if err != nil {
		return nil, err
	}
	return d.Read(disk.BlockID{Title: layout.Title, Part: part})
}

// ReadPartInto copies one part into dst without allocating — the entry point
// of the delivery plane's pooled-buffer pipeline. dst must be at least the
// part's length (PartRange); the part size is returned.
func ReadPartInto(arr *disk.Array, layout Layout, part int, dst []byte) (int, error) {
	di, err := layout.DiskFor(part)
	if err != nil {
		return 0, err
	}
	d, err := arr.Disk(di)
	if err != nil {
		return 0, err
	}
	return d.ReadInto(disk.BlockID{Title: layout.Title, Part: part}, dst)
}

// PartFileRef pins one part's backing file for a kernel-path send
// (transport.NewFileFrame → sendfile). It reports ok = false whenever the
// part cannot be served straight off a descriptor — memory-backed disk,
// absent block, or an installed read interceptor — and the caller falls back
// to ReadPartInto. On success the caller owns the ref and must Close it.
func PartFileRef(arr *disk.Array, layout Layout, part int) (disk.FileRef, bool) {
	di, err := layout.DiskFor(part)
	if err != nil {
		return disk.FileRef{}, false
	}
	d, err := arr.Disk(di)
	if err != nil {
		return disk.FileRef{}, false
	}
	return d.FileRef(disk.BlockID{Title: layout.Title, Part: part})
}

// ReadRange reads an arbitrary byte range of the title by visiting the parts
// that cover it.
func ReadRange(arr *disk.Array, layout Layout, off, length int64) ([]byte, error) {
	if length < 0 || off < 0 || off+length > layout.SizeBytes {
		return nil, fmt.Errorf("range [%d,%d) outside title of %d bytes",
			off, off+length, layout.SizeBytes)
	}
	out := make([]byte, 0, length)
	for length > 0 {
		part, err := layout.PartForOffset(off)
		if err != nil {
			return nil, err
		}
		pOff, pLen, err := layout.PartRange(part)
		if err != nil {
			return nil, err
		}
		data, err := ReadPart(arr, layout, part)
		if err != nil {
			return nil, err
		}
		start := off - pOff
		n := pLen - start
		if n > length {
			n = length
		}
		out = append(out, data[start:start+n]...)
		off += n
		length -= n
	}
	return out, nil
}

// Delete removes all of the title's parts from the array. Missing parts are
// ignored so Delete is safe to call on partially stored titles.
func Delete(arr *disk.Array, layout Layout) error {
	var firstErr error
	for part := range layout.NumParts() {
		di, err := layout.DiskFor(part)
		if err != nil {
			return err
		}
		d, err := arr.Disk(di)
		if err != nil {
			return err
		}
		if err := d.Delete(disk.BlockID{Title: layout.Title, Part: part}); err != nil &&
			!errors.Is(err, disk.ErrBlockUnknown) && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// VerifyStored checks that every stored part of the title matches the
// canonical synthetic content, returning the first mismatching part index or
// -1 when all parts verify.
func VerifyStored(arr *disk.Array, layout Layout) (int, error) {
	for part := range layout.NumParts() {
		data, err := ReadPart(arr, layout, part)
		if err != nil {
			return part, err
		}
		off, _, err := layout.PartRange(part)
		if err != nil {
			return part, err
		}
		if !media.Verify(layout.Title, off, data) {
			return part, nil
		}
	}
	return -1, nil
}
