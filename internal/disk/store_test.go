package disk

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func newFileDisk(t *testing.T, capacity int64) *Disk {
	t.Helper()
	d, err := NewFileBacked("fd-0", capacity, t.TempDir())
	if err != nil {
		t.Fatalf("NewFileBacked: %v", err)
	}
	return d
}

func TestFileBackedRoundTrip(t *testing.T) {
	d := newFileDisk(t, 1<<20)
	id := BlockID{Title: "alpha", Part: 3}
	data := bytes.Repeat([]byte{0xAB, 0xCD}, 4096)
	if err := d.Write(id, data); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if !d.FileBacked() {
		t.Fatal("FileBacked() = false for file-backed disk")
	}
	if got := d.Used(); got != int64(len(data)) {
		t.Fatalf("Used = %d, want %d", got, len(data))
	}
	out, err := d.Read(id)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("Read returned different bytes than written")
	}
	dst := make([]byte, len(data)+10)
	n, err := d.ReadInto(id, dst)
	if err != nil {
		t.Fatalf("ReadInto: %v", err)
	}
	if n != len(data) || !bytes.Equal(dst[:n], data) {
		t.Fatal("ReadInto returned different bytes than written")
	}
	if err := d.Delete(id); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if d.Used() != 0 {
		t.Fatalf("Used after delete = %d", d.Used())
	}
}

// corruptFile rewrites the single block file under dir via fn.
func corruptFile(t *testing.T, dir string, fn func(path string)) {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "*.blk"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("expected one block file, got %v (%v)", matches, err)
	}
	fn(matches[0])
}

func TestFileBackedTruncationIsTypedError(t *testing.T) {
	dir := t.TempDir()
	d, err := NewFileBacked("fd-t", 1<<20, dir)
	if err != nil {
		t.Fatalf("NewFileBacked: %v", err)
	}
	id := BlockID{Title: "beta", Part: 0}
	data := bytes.Repeat([]byte{0x5A}, 8192)
	if err := d.Write(id, data); err != nil {
		t.Fatalf("Write: %v", err)
	}
	corruptFile(t, dir, func(p string) {
		if err := os.Truncate(p, blockHeaderLen+100); err != nil {
			t.Fatalf("truncate: %v", err)
		}
	})
	if _, err := d.Read(id); !errors.Is(err, ErrCorruptBlock) {
		t.Fatalf("Read after truncation: err = %v, want ErrCorruptBlock", err)
	}
	dst := make([]byte, len(data))
	if _, err := d.ReadInto(id, dst); !errors.Is(err, ErrCorruptBlock) {
		t.Fatalf("ReadInto after truncation: err = %v, want ErrCorruptBlock", err)
	}
}

func TestFileBackedCorruptHeaderIsTypedError(t *testing.T) {
	for name, scribble := range map[string]func(*testing.T, string){
		"bad-magic": func(t *testing.T, p string) {
			f, err := os.OpenFile(p, os.O_WRONLY, 0)
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			defer f.Close()
			if _, err := f.WriteAt([]byte("XXXXXXXX"), 0); err != nil {
				t.Fatalf("scribble: %v", err)
			}
		},
		"bad-size": func(t *testing.T, p string) {
			f, err := os.OpenFile(p, os.O_WRONLY, 0)
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			defer f.Close()
			if _, err := f.WriteAt([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}, 8); err != nil {
				t.Fatalf("scribble: %v", err)
			}
		},
		"headerless": func(t *testing.T, p string) {
			if err := os.Truncate(p, 4); err != nil {
				t.Fatalf("truncate: %v", err)
			}
		},
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			d, err := NewFileBacked("fd-c", 1<<20, dir)
			if err != nil {
				t.Fatalf("NewFileBacked: %v", err)
			}
			id := BlockID{Title: "gamma", Part: 1}
			if err := d.Write(id, bytes.Repeat([]byte{1}, 512)); err != nil {
				t.Fatalf("Write: %v", err)
			}
			corruptFile(t, dir, func(p string) { scribble(t, p) })
			if _, err := d.Read(id); !errors.Is(err, ErrCorruptBlock) {
				t.Fatalf("Read: err = %v, want ErrCorruptBlock", err)
			}
		})
	}
}

func TestFileRefLifecycle(t *testing.T) {
	d := newFileDisk(t, 1<<20)
	id := BlockID{Title: "delta", Part: 2}
	data := bytes.Repeat([]byte{7}, 2048)
	if err := d.Write(id, data); err != nil {
		t.Fatalf("Write: %v", err)
	}

	ref, ok := d.FileRef(id)
	if !ok {
		t.Fatal("FileRef refused on a file-backed block")
	}
	if ref.Size() != int64(len(data)) || ref.Offset() != blockHeaderLen {
		t.Fatalf("ref geometry = (off %d, size %d)", ref.Offset(), ref.Size())
	}
	// The pin must keep the descriptor readable across a concurrent Delete.
	if err := d.Delete(id); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	got := make([]byte, ref.Size())
	if _, err := ref.File().ReadAt(got, ref.Offset()); err != nil {
		t.Fatalf("ReadAt after Delete with pin held: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("pinned read returned wrong bytes")
	}
	ref.Close()
	// Last ref dropped: the descriptor is closed now.
	if _, err := ref.File().ReadAt(got[:1], ref.Offset()); err == nil {
		t.Fatal("descriptor still open after final Close")
	}
}

func TestFileRefRefusals(t *testing.T) {
	mem, err := New("mem-0", 1<<20)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	id := BlockID{Title: "eps", Part: 0}
	if err := mem.Write(id, []byte("hello")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if _, ok := mem.FileRef(id); ok {
		t.Fatal("FileRef granted on a memory-backed disk")
	}

	fd := newFileDisk(t, 1<<20)
	if _, ok := fd.FileRef(id); ok {
		t.Fatal("FileRef granted for an absent block")
	}
	if err := fd.Write(id, []byte("hello")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	// An armed fault injector must force the buffered path.
	fd.SetReadInterceptor(func(BlockID) ReadFault { return ReadFault{} })
	if _, ok := fd.FileRef(id); ok {
		t.Fatal("FileRef granted while a ReadInterceptor is installed")
	}
	fd.SetReadInterceptor(nil)
	ref, ok := fd.FileRef(id)
	if !ok {
		t.Fatal("FileRef refused after interceptor removed")
	}
	ref.Close()
}

func TestFileBackedInterceptorFaults(t *testing.T) {
	d := newFileDisk(t, 1<<20)
	id := BlockID{Title: "zeta", Part: 0}
	data := bytes.Repeat([]byte{9}, 1000)
	if err := d.Write(id, data); err != nil {
		t.Fatalf("Write: %v", err)
	}
	d.SetReadInterceptor(func(BlockID) ReadFault { return ReadFault{ShortFraction: 0.5} })
	out, err := d.Read(id)
	if !errors.Is(err, ErrInjectedRead) {
		t.Fatalf("Read: err = %v, want ErrInjectedRead", err)
	}
	if len(out) != 500 {
		t.Fatalf("short read returned %d bytes, want 500", len(out))
	}
}

func TestNewUniformFileArray(t *testing.T) {
	dir := t.TempDir()
	arr, err := NewUniformFileArray("srv1", 3, 1<<20, dir)
	if err != nil {
		t.Fatalf("NewUniformFileArray: %v", err)
	}
	if arr.NumDisks() != 3 {
		t.Fatalf("NumDisks = %d", arr.NumDisks())
	}
	for i := range 3 {
		d, err := arr.Disk(i)
		if err != nil {
			t.Fatalf("Disk(%d): %v", i, err)
		}
		if !d.FileBacked() {
			t.Fatalf("disk %d not file-backed", i)
		}
	}
}

func TestBlockFileNameEscapesHostilePaths(t *testing.T) {
	dir := t.TempDir()
	d, err := NewFileBacked("fd-h", 1<<20, dir)
	if err != nil {
		t.Fatalf("NewFileBacked: %v", err)
	}
	id := BlockID{Title: "../../etc/passwd", Part: 0}
	if err := d.Write(id, []byte("x")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	matches, _ := filepath.Glob(filepath.Join(dir, "*.blk"))
	if len(matches) != 1 {
		t.Fatalf("block file not confined to disk dir: %v", matches)
	}
	out, err := d.Read(id)
	if err != nil || string(out) != "x" {
		t.Fatalf("Read: %q, %v", out, err)
	}
}
