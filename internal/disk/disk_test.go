package disk

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func newDisk(t *testing.T, capacity int64) *Disk {
	t.Helper()
	d, err := New("d0", capacity)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return d
}

func TestNewRejectsBadCapacity(t *testing.T) {
	for _, c := range []int64{0, -1} {
		if _, err := New("x", c); !errors.Is(err, ErrBadCapacity) {
			t.Fatalf("New(%d) error = %v, want ErrBadCapacity", c, err)
		}
	}
}

func TestWriteReadDelete(t *testing.T) {
	d := newDisk(t, 100)
	id := BlockID{Title: "m", Part: 0}
	data := []byte("hello world")
	if err := d.Write(id, data); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if d.Used() != int64(len(data)) || d.Free() != 100-int64(len(data)) {
		t.Fatalf("Used/Free = %d/%d", d.Used(), d.Free())
	}
	if !d.Has(id) || d.NumBlocks() != 1 {
		t.Fatal("Has/NumBlocks wrong")
	}
	got, err := d.Read(id)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if string(got) != string(data) {
		t.Fatalf("Read = %q, want %q", got, data)
	}
	if err := d.Delete(id); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if d.Used() != 0 || d.Has(id) {
		t.Fatal("Delete did not free space")
	}
}

func TestWriteIsolation(t *testing.T) {
	d := newDisk(t, 100)
	id := BlockID{Title: "m", Part: 0}
	data := []byte("abc")
	if err := d.Write(id, data); err != nil {
		t.Fatal(err)
	}
	data[0] = 'Z' // mutate caller's slice
	got, err := d.Read(id)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 'a' {
		t.Fatal("disk shares storage with caller's write buffer")
	}
	got[1] = 'Z' // mutate returned slice
	got2, err := d.Read(id)
	if err != nil {
		t.Fatal(err)
	}
	if got2[1] != 'b' {
		t.Fatal("disk shares storage with caller's read buffer")
	}
}

func TestWriteErrors(t *testing.T) {
	d := newDisk(t, 10)
	id := BlockID{Title: "m", Part: 0}
	if err := d.Write(id, nil); !errors.Is(err, ErrEmptyBlockNil) {
		t.Fatalf("empty write error = %v", err)
	}
	if err := d.Write(id, make([]byte, 11)); !errors.Is(err, ErrDiskFull) {
		t.Fatalf("oversize write error = %v", err)
	}
	if err := d.Write(id, make([]byte, 6)); err != nil {
		t.Fatal(err)
	}
	if err := d.Write(id, make([]byte, 1)); !errors.Is(err, ErrBlockExists) {
		t.Fatalf("duplicate write error = %v", err)
	}
	if err := d.Write(BlockID{Title: "m", Part: 1}, make([]byte, 5)); !errors.Is(err, ErrDiskFull) {
		t.Fatalf("full-disk write error = %v", err)
	}
	// Exactly filling the disk is allowed.
	if err := d.Write(BlockID{Title: "m", Part: 2}, make([]byte, 4)); err != nil {
		t.Fatalf("exact-fit write: %v", err)
	}
	if d.Free() != 0 {
		t.Fatalf("Free = %d, want 0", d.Free())
	}
}

func TestReadDeleteUnknown(t *testing.T) {
	d := newDisk(t, 10)
	id := BlockID{Title: "nope", Part: 0}
	if _, err := d.Read(id); !errors.Is(err, ErrBlockUnknown) {
		t.Fatalf("Read unknown error = %v", err)
	}
	if err := d.Delete(id); !errors.Is(err, ErrBlockUnknown) {
		t.Fatalf("Delete unknown error = %v", err)
	}
	if _, err := d.ReadTime(id); !errors.Is(err, ErrBlockUnknown) {
		t.Fatalf("ReadTime unknown error = %v", err)
	}
}

func TestBlocksSorted(t *testing.T) {
	d := newDisk(t, 100)
	ids := []BlockID{{"b", 1}, {"a", 2}, {"b", 0}, {"a", 0}}
	for _, id := range ids {
		if err := d.Write(id, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	got := d.Blocks()
	want := []BlockID{{"a", 0}, {"a", 2}, {"b", 0}, {"b", 1}}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Blocks = %v, want %v", got, want)
		}
	}
}

func TestBlockIDString(t *testing.T) {
	if s := (BlockID{Title: "m", Part: 3}).String(); s != "m#3" {
		t.Fatalf("String = %q", s)
	}
}

func TestAccessModel(t *testing.T) {
	m := AccessModel{Seek: 10 * time.Millisecond, ThroughputMBps: 10}
	// 1 MB at 10 MB/s = 100 ms + 10 ms seek.
	if got, want := m.ReadTime(1e6), 110*time.Millisecond; got != want {
		t.Fatalf("ReadTime = %v, want %v", got, want)
	}
	if got := m.ReadTime(0); got != m.Seek {
		t.Fatalf("ReadTime(0) = %v, want seek only", got)
	}
	if got := (AccessModel{Seek: time.Millisecond}).ReadTime(100); got != time.Millisecond {
		t.Fatalf("zero-throughput ReadTime = %v, want seek only", got)
	}
}

func TestDiskReadTime(t *testing.T) {
	d := newDisk(t, 1000)
	d.SetAccessModel(AccessModel{Seek: time.Millisecond, ThroughputMBps: 1})
	id := BlockID{Title: "m", Part: 0}
	if err := d.Write(id, make([]byte, 500)); err != nil {
		t.Fatal(err)
	}
	got, err := d.ReadTime(id)
	if err != nil {
		t.Fatal(err)
	}
	want := time.Millisecond + 500*time.Microsecond
	if got != want {
		t.Fatalf("ReadTime = %v, want %v", got, want)
	}
}

func TestDiskConcurrentWriters(t *testing.T) {
	d := newDisk(t, 1<<20)
	var wg sync.WaitGroup
	for i := range 8 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range 50 {
				id := BlockID{Title: "t", Part: i*1000 + j}
				if err := d.Write(id, make([]byte, 100)); err != nil {
					t.Errorf("Write: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got, want := d.Used(), int64(8*50*100); got != want {
		t.Fatalf("Used = %d, want %d", got, want)
	}
}

func TestArrayBasics(t *testing.T) {
	arr, err := NewUniformArray("srv", 4, 1000)
	if err != nil {
		t.Fatalf("NewUniformArray: %v", err)
	}
	if arr.NumDisks() != 4 || arr.Capacity() != 4000 || arr.Free() != 4000 {
		t.Fatalf("array accessors wrong: %d disks cap %d free %d",
			arr.NumDisks(), arr.Capacity(), arr.Free())
	}
	d0, err := arr.Disk(0)
	if err != nil {
		t.Fatal(err)
	}
	if d0.ID() != "srv-0" {
		t.Fatalf("disk 0 id = %s", d0.ID())
	}
	if err := d0.Write(BlockID{"m", 0}, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if arr.Used() != 100 || arr.Free() != 3900 {
		t.Fatalf("Used/Free = %d/%d", arr.Used(), arr.Free())
	}
	if _, err := arr.Disk(4); !errors.Is(err, ErrBadDiskIndex) {
		t.Fatalf("Disk(4) error = %v", err)
	}
	if _, err := arr.Disk(-1); !errors.Is(err, ErrBadDiskIndex) {
		t.Fatalf("Disk(-1) error = %v", err)
	}
}

func TestArrayConstructionErrors(t *testing.T) {
	if _, err := NewArray(); !errors.Is(err, ErrNoDisks) {
		t.Fatalf("NewArray() error = %v", err)
	}
	if _, err := NewUniformArray("x", 0, 100); !errors.Is(err, ErrNoDisks) {
		t.Fatalf("NewUniformArray(0) error = %v", err)
	}
	if _, err := NewUniformArray("x", 2, -1); !errors.Is(err, ErrBadCapacity) {
		t.Fatalf("NewUniformArray bad capacity error = %v", err)
	}
}
