package disk

import (
	"errors"
	"testing"
)

func TestReadInterceptorErrorFault(t *testing.T) {
	d := newDisk(t, 100)
	id := BlockID{Title: "m", Part: 0}
	if err := d.Write(id, []byte("hello world")); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("head crash")
	d.SetReadInterceptor(func(BlockID) ReadFault { return ReadFault{Err: boom} })
	if _, err := d.Read(id); !errors.Is(err, ErrInjectedRead) || !errors.Is(err, boom) {
		t.Fatalf("Read error = %v, want ErrInjectedRead wrapping the cause", err)
	}
	if _, err := d.ReadInto(id, make([]byte, 11)); !errors.Is(err, ErrInjectedRead) {
		t.Fatalf("ReadInto error = %v, want ErrInjectedRead", err)
	}
	// Clearing the hook restores clean reads.
	d.SetReadInterceptor(nil)
	if _, err := d.Read(id); err != nil {
		t.Fatalf("Read after clearing interceptor: %v", err)
	}
}

func TestReadInterceptorShortRead(t *testing.T) {
	d := newDisk(t, 100)
	id := BlockID{Title: "m", Part: 0}
	data := []byte("0123456789")
	if err := d.Write(id, data); err != nil {
		t.Fatal(err)
	}
	d.SetReadInterceptor(func(BlockID) ReadFault { return ReadFault{ShortFraction: 0.5} })
	got, err := d.Read(id)
	if !errors.Is(err, ErrInjectedRead) {
		t.Fatalf("short read error = %v, want ErrInjectedRead", err)
	}
	if len(got) != 5 {
		t.Fatalf("short read returned %d bytes, want 5", len(got))
	}
	dst := make([]byte, len(data))
	n, err := d.ReadInto(id, dst)
	if !errors.Is(err, ErrInjectedRead) || n != 5 {
		t.Fatalf("ReadInto = (%d, %v), want (5, ErrInjectedRead)", n, err)
	}
}

func TestArrayReadInterceptorCoversEveryDisk(t *testing.T) {
	a, err := NewUniformArray("n1", 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]BlockID, 3)
	for i := range ids {
		ids[i] = BlockID{Title: "m", Part: i}
		d, err := a.Disk(i)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Write(ids[i], []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	var calls int
	a.SetReadInterceptor(func(BlockID) ReadFault {
		calls++
		return ReadFault{}
	})
	for i, id := range ids {
		d, err := a.Disk(i)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.Read(id); err != nil {
			t.Fatalf("Read %s: %v", id, err)
		}
	}
	if calls != 3 {
		t.Fatalf("interceptor saw %d reads, want 3", calls)
	}
}
