package disk

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"
)

// File-backed block store: one file per block under the disk's directory,
// each opening with a fixed header so a truncated or scribbled-over file
// surfaces as a typed ErrCorruptBlock instead of silently serving garbage.
// The layout is
//
//	magic(8) "DVODBLK1" | size(8, big-endian) | size bytes of block data
//
// Block data therefore starts at blockHeaderLen, which is also the offset a
// kernel-path sender (sendfile/splice) must begin its transfer at — see
// FileRef.
const (
	blockMagic     = "DVODBLK1"
	blockHeaderLen = 16
)

// ErrCorruptBlock reports a file-backed block whose backing file is missing,
// truncated, or carries a mangled header — storage corruption, as opposed to
// the injected faults of ErrInjectedRead.
var ErrCorruptBlock = errors.New("stored block corrupt")

// block is one stored block's backing: exactly one of data (memory-backed)
// or f (file-backed) is set.
type block struct {
	size int64
	data []byte
	f    *os.File
	// refs counts the stored map entry (1) plus every outstanding FileRef,
	// so Delete during an in-flight kernel send removes the name but keeps
	// the descriptor open until the last sender drops its pin.
	refs atomic.Int32
}

// release drops one reference, closing the backing file when the last holder
// is gone. Memory-backed blocks have no file to close.
func (b *block) release() {
	if b.refs.Add(-1) == 0 && b.f != nil {
		_ = b.f.Close()
	}
}

// blockFileName maps a block id to its file name. The title is hex-encoded
// so arbitrary catalog names (path separators, dots) cannot escape the
// disk's directory.
func blockFileName(id BlockID) string {
	return fmt.Sprintf("%x.%d.blk", id.Title, id.Part)
}

// writeBlockFile creates the block's backing file and returns the open
// handle, positioned for ReadAt use. The file is created exclusively: a
// leftover file of the same name fails the write like ErrBlockExists would.
func writeBlockFile(dir string, id BlockID, data []byte) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, blockFileName(id)),
		os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("create block file: %w", err)
	}
	var hdr [blockHeaderLen]byte
	copy(hdr[:8], blockMagic)
	binary.BigEndian.PutUint64(hdr[8:], uint64(len(data)))
	if _, err := f.Write(hdr[:]); err == nil {
		_, err = f.Write(data)
	}
	if err != nil {
		name := f.Name()
		_ = f.Close()
		_ = os.Remove(name)
		return nil, fmt.Errorf("write block file: %w", err)
	}
	return f, nil
}

// checkBlockFile re-validates a block file's header against the recorded
// block size, classifying mismatches as ErrCorruptBlock.
func checkBlockFile(b *block, id BlockID, diskID string) error {
	var hdr [blockHeaderLen]byte
	if _, err := b.f.ReadAt(hdr[:], 0); err != nil {
		return fmt.Errorf("read %s on %s: %w: header unreadable: %v", id, diskID, ErrCorruptBlock, err)
	}
	if string(hdr[:8]) != blockMagic {
		return fmt.Errorf("read %s on %s: %w: bad magic %q", id, diskID, ErrCorruptBlock, hdr[:8])
	}
	if got := int64(binary.BigEndian.Uint64(hdr[8:])); got != b.size {
		return fmt.Errorf("read %s on %s: %w: header says %d bytes, stored %d",
			id, diskID, ErrCorruptBlock, got, b.size)
	}
	st, err := b.f.Stat()
	if err != nil {
		return fmt.Errorf("read %s on %s: %w: stat: %v", id, diskID, ErrCorruptBlock, err)
	}
	if st.Size() != blockHeaderLen+b.size {
		return fmt.Errorf("read %s on %s: %w: file is %d bytes, want %d",
			id, diskID, ErrCorruptBlock, st.Size(), blockHeaderLen+b.size)
	}
	return nil
}

// readBlockInto copies one block's bytes into dst (len(dst) == block size),
// from memory or via pread on the backing file. File reads re-validate the
// header first so truncation and header scribbles surface as ErrCorruptBlock.
func readBlockInto(b *block, id BlockID, diskID string, dst []byte) error {
	if b.f == nil {
		copy(dst, b.data)
		return nil
	}
	if err := checkBlockFile(b, id, diskID); err != nil {
		return err
	}
	if _, err := b.f.ReadAt(dst, blockHeaderLen); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return fmt.Errorf("read %s on %s: %w: body truncated", id, diskID, ErrCorruptBlock)
		}
		return fmt.Errorf("read %s on %s: %w: %v", id, diskID, ErrCorruptBlock, err)
	}
	return nil
}

// FileRef is a pinned zero-copy handle on one file-backed block: the open
// descriptor plus the byte range [Offset, Offset+Size) holding the block's
// data. The kernel delivery path hands it to sendfile(2)/splice(2) so the
// bytes travel disk→socket without entering Go userspace.
//
// The descriptor is shared with every other reader of the block; holders
// must only use positioned I/O (ReadAt, sendfile with an explicit offset)
// and never Seek it. The pin keeps the descriptor open across a concurrent
// Delete; call Close exactly once when the transfer is done.
type FileRef struct {
	f    *os.File
	off  int64
	size int64
	blk  *block
}

// File returns the backing descriptor (positioned I/O only — see FileRef).
func (r FileRef) File() *os.File { return r.f }

// Offset returns the byte offset of the block data within the file.
func (r FileRef) Offset() int64 { return r.off }

// Size returns the block's data length in bytes.
func (r FileRef) Size() int64 { return r.size }

// Close drops the pin. The descriptor closes once the block is deleted and
// every ref is closed; Close must be called exactly once per FileRef.
func (r FileRef) Close() {
	if r.blk != nil {
		r.blk.release()
	}
}

// FileRef returns a kernel-sendable handle on the block, or ok == false when
// the delivery plane must use the buffered read path instead: the disk is
// memory-backed, the block is absent, or a fault-injection ReadInterceptor
// is installed (injected slow/stall/short-read faults act on buffered reads,
// so an armed injector forces every read through them).
func (d *Disk) FileRef(id BlockID) (FileRef, bool) {
	if d.intercept.Load() != nil {
		return FileRef{}, false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	b, ok := d.blocks[id]
	if !ok || b.f == nil {
		return FileRef{}, false
	}
	b.refs.Add(1)
	return FileRef{f: b.f, off: blockHeaderLen, size: b.size, blk: b}, true
}

// FileBacked reports whether this disk stores blocks in backing files (built
// with NewFileBacked) rather than in memory.
func (d *Disk) FileBacked() bool { return d.dir != "" }

// NewFileBacked returns a disk that stores each block in its own file under
// dir (created if missing) instead of in memory, enabling the kernel
// delivery path's FileRef handles. Capacity accounting, the service-time
// model, and the ReadInterceptor fault hook behave exactly as on a
// memory-backed disk.
func NewFileBacked(id string, capacityBytes int64, dir string) (*Disk, error) {
	d, err := New(id, capacityBytes)
	if err != nil {
		return nil, err
	}
	if dir == "" {
		return nil, errors.New("file-backed disk needs a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("disk %s: %w", id, err)
	}
	d.dir = dir
	return d, nil
}

// NewUniformFileArray builds an array of n identical file-backed disks named
// "<prefix>-0".."<prefix>-n-1", each storing its blocks under its own
// subdirectory of dir.
func NewUniformFileArray(prefix string, n int, capacityBytes int64, dir string) (*Array, error) {
	if n <= 0 {
		return nil, ErrNoDisks
	}
	disks := make([]*Disk, n)
	for i := range n {
		name := fmt.Sprintf("%s-%d", prefix, i)
		d, err := NewFileBacked(name, capacityBytes, filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		disks[i] = d
	}
	return NewArray(disks...)
}
