// Package disk simulates the video servers' storage hardware: individual
// disks with fixed capacity holding named blocks, grouped into the
// multi-disk arrays the paper's DMA stripes titles across. Capacity
// accounting is exact; block contents are held in memory (tests and
// experiments use scaled-down title sizes) or, for disks built with
// NewFileBacked, in one backing file per block so the delivery plane can
// hand bodies straight to sendfile(2) via FileRef. A simple service-time
// model provides read latencies for the emulated plane.
package disk

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// BlockID names one stored block: a part (stripe) of a title.
type BlockID struct {
	Title string `json:"title"`
	Part  int    `json:"part"`
}

// String renders the block id for logs.
func (b BlockID) String() string { return fmt.Sprintf("%s#%d", b.Title, b.Part) }

// Errors reported by disks and arrays.
var (
	ErrDiskFull      = errors.New("disk full")
	ErrBlockExists   = errors.New("block already stored")
	ErrBlockUnknown  = errors.New("block not stored")
	ErrNoDisks       = errors.New("array has no disks")
	ErrBadDiskIndex  = errors.New("disk index out of range")
	ErrBadCapacity   = errors.New("capacity must be positive")
	ErrEmptyBlockNil = errors.New("block data must be non-empty")
	// ErrInjectedRead reports a read that an installed ReadInterceptor
	// failed or truncated (fault injection).
	ErrInjectedRead = errors.New("injected read fault")
)

// ReadFault is a ReadInterceptor's verdict for one block read. The zero
// value lets the read proceed untouched. Err fails the read outright; a
// ShortFraction in (0, 1) truncates the returned data to that fraction of
// the block, surfacing as an ErrInjectedRead-wrapped error alongside the
// partial byte count — the torn read a resilient delivery path must detect.
type ReadFault struct {
	ShortFraction float64
	Err           error
}

// ReadInterceptor inspects each block read before it happens and may inject
// a fault. It is called outside the disk's lock and may block (fault
// injectors use that to model latency and stalls).
type ReadInterceptor func(BlockID) ReadFault

// AccessModel is the disk service-time model: a fixed positioning (seek +
// rotational) delay plus transfer at a sustained rate.
type AccessModel struct {
	Seek           time.Duration
	ThroughputMBps float64
}

// DefaultAccessModel approximates a late-1990s SCSI disk: 9 ms positioning,
// 15 MB/s sustained.
func DefaultAccessModel() AccessModel {
	return AccessModel{Seek: 9 * time.Millisecond, ThroughputMBps: 15}
}

// ReadTime returns the modeled time to read n bytes.
func (m AccessModel) ReadTime(n int64) time.Duration {
	if n <= 0 {
		return m.Seek
	}
	if m.ThroughputMBps <= 0 {
		return m.Seek
	}
	sec := float64(n) / (m.ThroughputMBps * 1e6)
	return m.Seek + time.Duration(sec*float64(time.Second))
}

// Disk is a single simulated disk. All methods are safe for concurrent use.
type Disk struct {
	id       string
	capacity int64
	model    AccessModel
	// intercept optionally injects faults into reads (set via
	// SetReadInterceptor; consulted lock-free on the read hot path).
	intercept atomic.Pointer[ReadInterceptor]
	// dir, when non-empty, makes the disk file-backed: blocks live in one
	// file each under dir instead of in memory (see NewFileBacked).
	dir string

	mu     sync.Mutex
	used   int64
	blocks map[BlockID]*block
}

// New returns a disk with the given identifier and capacity in bytes.
func New(id string, capacityBytes int64) (*Disk, error) {
	if capacityBytes <= 0 {
		return nil, fmt.Errorf("%w: %d", ErrBadCapacity, capacityBytes)
	}
	return &Disk{
		id:       id,
		capacity: capacityBytes,
		model:    DefaultAccessModel(),
		blocks:   make(map[BlockID]*block),
	}, nil
}

// ID returns the disk identifier.
func (d *Disk) ID() string { return d.id }

// Capacity returns total capacity in bytes.
func (d *Disk) Capacity() int64 { return d.capacity }

// Used returns bytes currently stored.
func (d *Disk) Used() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.used
}

// Free returns remaining capacity in bytes.
func (d *Disk) Free() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.capacity - d.used
}

// NumBlocks returns how many blocks are stored.
func (d *Disk) NumBlocks() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.blocks)
}

// Write stores a block. It fails with ErrDiskFull when the block does not
// fit and ErrBlockExists when the id is already present.
func (d *Disk) Write(id BlockID, data []byte) error {
	if len(data) == 0 {
		return ErrEmptyBlockNil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.blocks[id]; ok {
		return fmt.Errorf("%w: %s on %s", ErrBlockExists, id, d.id)
	}
	if d.used+int64(len(data)) > d.capacity {
		return fmt.Errorf("%w: %s needs %d, %s has %d free",
			ErrDiskFull, id, len(data), d.id, d.capacity-d.used)
	}
	b := &block{size: int64(len(data))}
	if d.dir != "" {
		f, err := writeBlockFile(d.dir, id, data)
		if err != nil {
			return fmt.Errorf("write %s on %s: %w", id, d.id, err)
		}
		b.f = f
	} else {
		b.data = make([]byte, len(data))
		copy(b.data, data)
	}
	b.refs.Store(1)
	d.blocks[id] = b
	d.used += int64(len(data))
	return nil
}

// SetReadInterceptor installs (or, with nil, removes) a fault-injection hook
// consulted before every Read/ReadInto. The interceptor runs outside the
// disk's lock and may block.
func (d *Disk) SetReadInterceptor(f ReadInterceptor) {
	if f == nil {
		d.intercept.Store(nil)
		return
	}
	d.intercept.Store(&f)
}

// readFault consults the interceptor for one read; the zero fault means
// proceed.
func (d *Disk) readFault(id BlockID) ReadFault {
	if p := d.intercept.Load(); p != nil {
		return (*p)(id)
	}
	return ReadFault{}
}

// Read returns a copy of the block's data.
func (d *Disk) Read(id BlockID) ([]byte, error) {
	fault := d.readFault(id)
	if fault.Err != nil {
		return nil, fmt.Errorf("read %s on %s: %w: %w", id, d.id, ErrInjectedRead, fault.Err)
	}
	d.mu.Lock()
	b, ok := d.blocks[id]
	if !ok {
		d.mu.Unlock()
		return nil, fmt.Errorf("%w: %s on %s", ErrBlockUnknown, id, d.id)
	}
	out := make([]byte, b.size)
	err := readBlockInto(b, id, d.id, out)
	d.mu.Unlock()
	if err != nil {
		return nil, err
	}
	if fault.ShortFraction > 0 && fault.ShortFraction < 1 {
		n := int(fault.ShortFraction * float64(len(out)))
		return out[:n], fmt.Errorf("read %s on %s: %w: short read %d of %d bytes",
			id, d.id, ErrInjectedRead, n, len(out))
	}
	return out, nil
}

// ReadInto copies the block's data into dst — the allocation-free read the
// delivery plane's pooled-buffer pipeline uses — and returns the block size.
// dst must be at least the block size.
func (d *Disk) ReadInto(id BlockID, dst []byte) (int, error) {
	fault := d.readFault(id)
	if fault.Err != nil {
		return 0, fmt.Errorf("read %s on %s: %w: %w", id, d.id, ErrInjectedRead, fault.Err)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	b, ok := d.blocks[id]
	if !ok {
		return 0, fmt.Errorf("%w: %s on %s", ErrBlockUnknown, id, d.id)
	}
	if int64(len(dst)) < b.size {
		return 0, fmt.Errorf("read %s on %s: buffer %d bytes, block %d",
			id, d.id, len(dst), b.size)
	}
	if err := readBlockInto(b, id, d.id, dst[:b.size]); err != nil {
		return 0, err
	}
	n := int(b.size)
	if fault.ShortFraction > 0 && fault.ShortFraction < 1 {
		short := int(fault.ShortFraction * float64(n))
		return short, fmt.Errorf("read %s on %s: %w: short read %d of %d bytes",
			id, d.id, ErrInjectedRead, short, n)
	}
	return n, nil
}

// Has reports whether the block is stored.
func (d *Disk) Has(id BlockID) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	_, ok := d.blocks[id]
	return ok
}

// Delete removes a block, freeing its space. A file-backed block's file is
// unlinked immediately; its descriptor stays open until any in-flight
// FileRef pins (kernel sends) are closed.
func (d *Disk) Delete(id BlockID) error {
	d.mu.Lock()
	b, ok := d.blocks[id]
	if !ok {
		d.mu.Unlock()
		return fmt.Errorf("%w: %s on %s", ErrBlockUnknown, id, d.id)
	}
	delete(d.blocks, id)
	d.used -= b.size
	d.mu.Unlock()
	if b.f != nil {
		_ = os.Remove(b.f.Name())
	}
	b.release()
	return nil
}

// ReadTime returns the modeled service time for reading the block.
func (d *Disk) ReadTime(id BlockID) (time.Duration, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	b, ok := d.blocks[id]
	if !ok {
		return 0, fmt.Errorf("%w: %s on %s", ErrBlockUnknown, id, d.id)
	}
	return d.model.ReadTime(b.size), nil
}

// SetAccessModel replaces the disk's service-time model.
func (d *Disk) SetAccessModel(m AccessModel) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.model = m
}

// Blocks returns the stored block IDs, sorted by title then part.
func (d *Disk) Blocks() []BlockID {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]BlockID, 0, len(d.blocks))
	for id := range d.blocks {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Title != out[j].Title {
			return out[i].Title < out[j].Title
		}
		return out[i].Part < out[j].Part
	})
	return out
}

// Array is an ordered group of disks: the striping unit of one video server.
// The paper recommends "the use of as many disks as possible".
type Array struct {
	disks []*Disk
}

// NewArray groups pre-built disks. The order defines stripe placement.
func NewArray(disks ...*Disk) (*Array, error) {
	if len(disks) == 0 {
		return nil, ErrNoDisks
	}
	return &Array{disks: append([]*Disk(nil), disks...)}, nil
}

// NewUniformArray builds an array of n identical disks named
// "<prefix>-0".."<prefix>-n-1".
func NewUniformArray(prefix string, n int, capacityBytes int64) (*Array, error) {
	if n <= 0 {
		return nil, ErrNoDisks
	}
	disks := make([]*Disk, n)
	for i := range n {
		d, err := New(fmt.Sprintf("%s-%d", prefix, i), capacityBytes)
		if err != nil {
			return nil, err
		}
		disks[i] = d
	}
	return NewArray(disks...)
}

// NumDisks returns the number of disks in the array.
func (a *Array) NumDisks() int { return len(a.disks) }

// SetReadInterceptor installs (or removes, with nil) a fault-injection hook
// on every disk of the array.
func (a *Array) SetReadInterceptor(f ReadInterceptor) {
	for _, d := range a.disks {
		d.SetReadInterceptor(f)
	}
}

// Disk returns the i-th disk.
func (a *Array) Disk(i int) (*Disk, error) {
	if i < 0 || i >= len(a.disks) {
		return nil, fmt.Errorf("%w: %d of %d", ErrBadDiskIndex, i, len(a.disks))
	}
	return a.disks[i], nil
}

// Capacity returns the summed capacity of all disks.
func (a *Array) Capacity() int64 {
	var total int64
	for _, d := range a.disks {
		total += d.Capacity()
	}
	return total
}

// Used returns the summed stored bytes of all disks.
func (a *Array) Used() int64 {
	var total int64
	for _, d := range a.disks {
		total += d.Used()
	}
	return total
}

// Free returns the summed free bytes of all disks.
func (a *Array) Free() int64 { return a.Capacity() - a.Used() }
