package topology

import (
	"encoding/json"
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func buildTriangle(t *testing.T) *Graph {
	t.Helper()
	g := NewGraph()
	for _, n := range []NodeID{"A", "B", "C"} {
		if err := g.AddNode(n); err != nil {
			t.Fatalf("AddNode(%s): %v", n, err)
		}
	}
	mustLink := func(a, b NodeID, cap float64) {
		if _, err := g.AddLink(a, b, cap); err != nil {
			t.Fatalf("AddLink(%s,%s): %v", a, b, err)
		}
	}
	mustLink("A", "B", 2)
	mustLink("B", "C", 18)
	mustLink("A", "C", 2)
	return g
}

func TestMakeLinkIDCanonical(t *testing.T) {
	if MakeLinkID("B", "A") != MakeLinkID("A", "B") {
		t.Fatal("link IDs are not order-independent")
	}
	if got, want := MakeLinkID("Patra", "Athens"), LinkID("Athens--Patra"); got != want {
		t.Fatalf("MakeLinkID = %q, want %q", got, want)
	}
}

func TestLinkIDEndpoints(t *testing.T) {
	a, b, err := MakeLinkID("X", "Y").Endpoints()
	if err != nil {
		t.Fatalf("Endpoints: %v", err)
	}
	if a != "X" || b != "Y" {
		t.Fatalf("Endpoints = %s,%s want X,Y", a, b)
	}
	if _, _, err := LinkID("garbage").Endpoints(); err == nil {
		t.Fatal("Endpoints accepted malformed id")
	}
}

func TestAddNodeDuplicate(t *testing.T) {
	g := NewGraph()
	if err := g.AddNode("A"); err != nil {
		t.Fatalf("AddNode: %v", err)
	}
	if err := g.AddNode("A"); !errors.Is(err, ErrNodeExists) {
		t.Fatalf("duplicate AddNode error = %v, want ErrNodeExists", err)
	}
	if err := g.AddNode(""); err == nil {
		t.Fatal("AddNode accepted empty id")
	}
}

func TestAddLinkValidation(t *testing.T) {
	g := NewGraph()
	if err := g.AddNode("A"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddNode("B"); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddLink("A", "A", 1); !errors.Is(err, ErrSelfLoop) {
		t.Fatalf("self loop error = %v, want ErrSelfLoop", err)
	}
	if _, err := g.AddLink("A", "Z", 1); !errors.Is(err, ErrNodeUnknown) {
		t.Fatalf("unknown node error = %v, want ErrNodeUnknown", err)
	}
	if _, err := g.AddLink("A", "B", 0); !errors.Is(err, ErrBadCapacity) {
		t.Fatalf("zero capacity error = %v, want ErrBadCapacity", err)
	}
	if _, err := g.AddLink("A", "B", 2); err != nil {
		t.Fatalf("AddLink: %v", err)
	}
	if _, err := g.AddLink("B", "A", 2); !errors.Is(err, ErrLinkExists) {
		t.Fatalf("duplicate link error = %v, want ErrLinkExists", err)
	}
}

func TestGraphAccessors(t *testing.T) {
	g := buildTriangle(t)
	if g.NumNodes() != 3 || g.NumLinks() != 3 {
		t.Fatalf("NumNodes/NumLinks = %d/%d, want 3/3", g.NumNodes(), g.NumLinks())
	}
	if !g.HasNode("A") || g.HasNode("Z") {
		t.Fatal("HasNode wrong")
	}
	nodes := g.Nodes()
	if len(nodes) != 3 || nodes[0] != "A" || nodes[2] != "C" {
		t.Fatalf("Nodes = %v, want sorted [A B C]", nodes)
	}
	l, err := g.Link("C", "B")
	if err != nil {
		t.Fatalf("Link: %v", err)
	}
	if l.CapacityMbps != 18 {
		t.Fatalf("Link capacity = %g, want 18", l.CapacityMbps)
	}
	if _, err := g.Link("A", "Z"); !errors.Is(err, ErrLinkUnknown) {
		t.Fatalf("missing Link error = %v, want ErrLinkUnknown", err)
	}
	nbrs := g.Neighbors("A")
	if len(nbrs) != 2 || nbrs[0] != "B" || nbrs[1] != "C" {
		t.Fatalf("Neighbors(A) = %v, want [B C]", nbrs)
	}
	if got := len(g.Adjacent("B")); got != 2 {
		t.Fatalf("Adjacent(B) has %d links, want 2", got)
	}
}

func TestLinkOther(t *testing.T) {
	l := Link{A: "A", B: "B"}
	if l.Other("A") != "B" || l.Other("B") != "A" || l.Other("Z") != "" {
		t.Fatal("Other wrong")
	}
	if !l.HasEndpoint("A") || l.HasEndpoint("Z") {
		t.Fatal("HasEndpoint wrong")
	}
}

func TestValidateConnectivity(t *testing.T) {
	g := buildTriangle(t)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate connected graph: %v", err)
	}
	if err := g.AddNode("Island"); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); !errors.Is(err, ErrDisconnected) {
		t.Fatalf("Validate disconnected = %v, want ErrDisconnected", err)
	}
	if err := NewGraph().Validate(); err == nil {
		t.Fatal("Validate accepted empty graph")
	}
}

func TestClone(t *testing.T) {
	g := buildTriangle(t)
	c := g.Clone()
	if err := c.AddNode("D"); err != nil {
		t.Fatal(err)
	}
	if g.HasNode("D") {
		t.Fatal("mutating clone affected original")
	}
	if c.NumLinks() != g.NumLinks() {
		t.Fatal("clone lost links")
	}
}

func TestSnapshotRejectsUnknownLinkAndNonFinite(t *testing.T) {
	g := buildTriangle(t)
	if _, err := NewSnapshot(g, map[LinkID]float64{"X--Y": 0.5}); !errors.Is(err, ErrLinkUnknown) {
		t.Fatalf("NewSnapshot unknown link error = %v", err)
	}
	id := MakeLinkID("A", "B")
	if _, err := NewSnapshot(g, map[LinkID]float64{id: math.NaN()}); err == nil {
		t.Fatal("NewSnapshot accepted NaN utilization")
	}
	if _, err := NewSnapshot(g, map[LinkID]float64{id: math.Inf(1)}); err == nil {
		t.Fatal("NewSnapshot accepted Inf utilization")
	}
}

func TestSnapshotClampsNegativeUtilization(t *testing.T) {
	g := buildTriangle(t)
	id := MakeLinkID("A", "B")
	s, err := NewSnapshot(g, map[LinkID]float64{id: -0.3})
	if err != nil {
		t.Fatalf("NewSnapshot: %v", err)
	}
	if got := s.Utilization(id); got != 0 {
		t.Fatalf("Utilization = %g, want clamped 0", got)
	}
}

func TestUsedBandwidth(t *testing.T) {
	g := buildTriangle(t)
	id := MakeLinkID("B", "C") // 18 Mbps
	s, err := NewSnapshot(g, map[LinkID]float64{id: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.UsedBandwidthMbps(id); got != 9 {
		t.Fatalf("UsedBandwidthMbps = %g, want 9", got)
	}
	if got := s.UsedBandwidthMbps("no--link"); got != 0 {
		t.Fatalf("UsedBandwidthMbps unknown link = %g, want 0", got)
	}
}

// TestNodeValidationPaperExample reproduces the NV computation spelled out in
// the paper for node b: NV_b = (UBW_i+UBW_j+UBW_k)/(LBW_i+LBW_j+LBW_k).
func TestNodeValidationPaperExample(t *testing.T) {
	g := NewGraph()
	for _, n := range []NodeID{"b", "x", "y", "z"} {
		if err := g.AddNode(n); err != nil {
			t.Fatal(err)
		}
	}
	li, _ := g.AddLink("b", "x", 2)
	lj, _ := g.AddLink("b", "y", 18)
	lk, _ := g.AddLink("b", "z", 2)
	s, err := NewSnapshot(g, map[LinkID]float64{li: 0.10, lj: 0.094, lk: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	// UBW: 0.2, 1.692, 0.3 → sum 2.192; LBW sum 22.
	want := (0.10*2 + 0.094*18 + 0.15*2) / 22
	if got := s.NodeValidation("b"); math.Abs(got-want) > 1e-12 {
		t.Fatalf("NodeValidation = %g, want %g", got, want)
	}
	if got := s.NodeValidation("x"); math.Abs(got-0.10) > 1e-12 {
		t.Fatalf("NodeValidation leaf = %g, want 0.10", got)
	}
}

func TestNodeValidationIsolatedNodeIsZero(t *testing.T) {
	g := NewGraph()
	if err := g.AddNode("lonely"); err != nil {
		t.Fatal(err)
	}
	s, err := NewSnapshot(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.NodeValidation("lonely"); got != 0 {
		t.Fatalf("NodeValidation isolated = %g, want 0", got)
	}
}

func TestLinkValueEquation4(t *testing.T) {
	g := buildTriangle(t)
	id := MakeLinkID("B", "C") // 18 Mbps
	s, err := NewSnapshot(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	lv, err := s.LinkValue(id, DefaultNormalizationK)
	if err != nil {
		t.Fatal(err)
	}
	if lv != 1.8 {
		t.Fatalf("LinkValue = %g, want 1.8", lv)
	}
	if _, err := s.LinkValue(id, 0); err == nil {
		t.Fatal("LinkValue accepted K=0")
	}
	if _, err := s.LinkValue("no--link", 10); !errors.Is(err, ErrLinkUnknown) {
		t.Fatalf("LinkValue unknown link error = %v", err)
	}
}

func TestLVNEquation1(t *testing.T) {
	// Two-node graph: NV of each endpoint equals the single link's
	// utilization, so LVN = util + util*cap/K.
	g := NewGraph()
	if err := g.AddNode("a"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddNode("b"); err != nil {
		t.Fatal(err)
	}
	id, err := g.AddLink("a", "b", 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSnapshot(g, map[LinkID]float64{id: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	lvn, err := s.LVN(id, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.10 + 0.10*0.2
	if math.Abs(lvn-want) > 1e-12 {
		t.Fatalf("LVN = %g, want %g", lvn, want)
	}
	if _, err := s.LVN("no--link", 10); !errors.Is(err, ErrLinkUnknown) {
		t.Fatalf("LVN unknown link error = %v", err)
	}
}

func TestWeightsCoversAllLinks(t *testing.T) {
	g := buildTriangle(t)
	s, err := NewSnapshot(g, map[LinkID]float64{MakeLinkID("A", "B"): 0.5})
	if err != nil {
		t.Fatal(err)
	}
	w, err := s.Weights(DefaultNormalizationK)
	if err != nil {
		t.Fatal(err)
	}
	if len(w) != 3 {
		t.Fatalf("Weights has %d entries, want 3", len(w))
	}
	for id, v := range w {
		if v < 0 {
			t.Fatalf("negative weight %g for %s", v, id)
		}
	}
}

func TestWithUtilization(t *testing.T) {
	g := buildTriangle(t)
	id := MakeLinkID("A", "B")
	s, err := NewSnapshot(g, map[LinkID]float64{id: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := s.WithUtilization(id, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if s.Utilization(id) != 0.1 {
		t.Fatal("WithUtilization mutated original snapshot")
	}
	if s2.Utilization(id) != 0.9 {
		t.Fatalf("WithUtilization = %g, want 0.9", s2.Utilization(id))
	}
}

func TestReportSortedAndConsistent(t *testing.T) {
	g := buildTriangle(t)
	s, err := NewSnapshot(g, map[LinkID]float64{
		MakeLinkID("A", "B"): 0.2,
		MakeLinkID("B", "C"): 0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Report(DefaultNormalizationK)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep) != 3 {
		t.Fatalf("Report rows = %d, want 3", len(rep))
	}
	for i := 1; i < len(rep); i++ {
		if rep[i-1].Link.ID >= rep[i].Link.ID {
			t.Fatal("Report not sorted by link id")
		}
	}
	for _, r := range rep {
		wantLVN := math.Max(r.NVA, r.NVB) + r.LU
		if math.Abs(r.LVN-wantLVN) > 1e-12 {
			t.Fatalf("row %s LVN %g != max(NV)+LU %g", r.Link.ID, r.LVN, wantLVN)
		}
	}
}

// Property: LVN is monotonically non-decreasing in any link's utilization.
// Raising traffic anywhere can only make links look the same or worse.
func TestLVNMonotoneInUtilizationProperty(t *testing.T) {
	g := buildTriangle(t)
	ids := []LinkID{MakeLinkID("A", "B"), MakeLinkID("B", "C"), MakeLinkID("A", "C")}
	rng := rand.New(rand.NewSource(7))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		util := map[LinkID]float64{}
		for _, id := range ids {
			util[id] = r.Float64()
		}
		s, err := NewSnapshot(g, util)
		if err != nil {
			return false
		}
		bump := ids[rng.Intn(len(ids))]
		s2, err := s.WithUtilization(bump, util[bump]+r.Float64())
		if err != nil {
			return false
		}
		for _, id := range ids {
			before, err1 := s.LVN(id, DefaultNormalizationK)
			after, err2 := s2.LVN(id, DefaultNormalizationK)
			if err1 != nil || err2 != nil {
				return false
			}
			if after < before-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: all LVN weights are non-negative for utilizations in [0, 2].
func TestLVNNonNegativeProperty(t *testing.T) {
	g := buildTriangle(t)
	ids := []LinkID{MakeLinkID("A", "B"), MakeLinkID("B", "C"), MakeLinkID("A", "C")}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		util := map[LinkID]float64{}
		for _, id := range ids {
			util[id] = r.Float64() * 2
		}
		s, err := NewSnapshot(g, util)
		if err != nil {
			return false
		}
		w, err := s.Weights(DefaultNormalizationK)
		if err != nil {
			return false
		}
		for _, v := range w {
			if v < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGraphJSONRoundTrip(t *testing.T) {
	g := buildTriangle(t)
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var back Graph
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if back.NumNodes() != 3 || back.NumLinks() != 3 {
		t.Fatalf("round trip lost structure: %d nodes %d links", back.NumNodes(), back.NumLinks())
	}
	l, err := back.Link("B", "C")
	if err != nil {
		t.Fatal(err)
	}
	if l.CapacityMbps != 18 {
		t.Fatalf("round trip capacity = %g, want 18", l.CapacityMbps)
	}
}

func TestGraphJSONRejectsBadInput(t *testing.T) {
	var g Graph
	cases := []string{
		`{"nodes":["A"],"links":[{"a":"A","b":"B","capacityMbps":2}]}`, // unknown node
		`{"nodes":["A","B"],"links":[{"a":"A","b":"B","capacityMbps":0}]}`,
		`{"nodes":["A","A"],"links":[]}`,
		`{bad json`,
	}
	for _, c := range cases {
		if err := json.Unmarshal([]byte(c), &g); err == nil {
			t.Fatalf("Unmarshal accepted %s", c)
		}
	}
}
