package topology

import (
	"fmt"
	"math"
	"sort"
)

// Snapshot is a point-in-time view of the network: the static graph plus the
// utilization fraction (used bandwidth / capacity, in [0, 1+]) of every link,
// as sampled by the SNMP statistics module. Snapshots are immutable once
// built and safe for concurrent use.
type Snapshot struct {
	graph *Graph
	util  map[LinkID]float64
}

// NewSnapshot pairs a graph with per-link utilization fractions. Links absent
// from util default to 0 (idle). Utilizations below 0 are clamped to 0;
// values above 1 are preserved (an overloaded link is worse than a full one,
// and the weighting should reflect that). Unknown link IDs in util are
// rejected.
func NewSnapshot(g *Graph, util map[LinkID]float64) (*Snapshot, error) {
	clean := make(map[LinkID]float64, len(util))
	for id, u := range util {
		if _, ok := g.links[id]; !ok {
			return nil, fmt.Errorf("utilization for unknown link: %w: %s", ErrLinkUnknown, id)
		}
		if math.IsNaN(u) || math.IsInf(u, 0) {
			return nil, fmt.Errorf("utilization for %s is not finite: %g", id, u)
		}
		if u < 0 {
			u = 0
		}
		clean[id] = u
	}
	return &Snapshot{graph: g, util: clean}, nil
}

// Graph returns the underlying static topology.
func (s *Snapshot) Graph() *Graph { return s.graph }

// Utilization returns the utilization fraction of a link (0 when unreported).
func (s *Snapshot) Utilization(id LinkID) float64 { return s.util[id] }

// UsedBandwidthMbps returns UBW for a link: utilization × capacity.
func (s *Snapshot) UsedBandwidthMbps(id LinkID) float64 {
	l, ok := s.graph.links[id]
	if !ok {
		return 0
	}
	return s.util[id] * l.CapacityMbps
}

// NodeValidation computes NV(n), equation (2): the ratio of summed used
// bandwidth to summed capacity over all links adjacent to n. A node with no
// links has NV 0.
func (s *Snapshot) NodeValidation(n NodeID) float64 {
	var used, total float64
	for _, id := range s.graph.adjacent[n] {
		used += s.UsedBandwidthMbps(id)
		total += s.graph.links[id].CapacityMbps
	}
	if total == 0 {
		return 0
	}
	return used / total
}

// LinkValue computes LV_i, equation (4): capacity normalized by K.
func (s *Snapshot) LinkValue(id LinkID, k float64) (float64, error) {
	l, ok := s.graph.links[id]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrLinkUnknown, id)
	}
	if k <= 0 {
		return 0, fmt.Errorf("normalization constant must be positive, got %g", k)
	}
	return l.CapacityMbps / k, nil
}

// LinkUtilizationTerm computes LU_i, equation (3): LT_i × LV_i.
func (s *Snapshot) LinkUtilizationTerm(id LinkID, k float64) (float64, error) {
	lv, err := s.LinkValue(id, k)
	if err != nil {
		return 0, err
	}
	return s.util[id] * lv, nil
}

// LVN computes the Link Validation Number of a link, equation (1):
// max(NV_a, NV_b) + LU_i. Larger means worse. The paper phrases the weights
// as "of negative value" but uses them as positive costs throughout its case
// study; we follow the case study (Dijkstra requires non-negative weights).
func (s *Snapshot) LVN(id LinkID, k float64) (float64, error) {
	l, ok := s.graph.links[id]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrLinkUnknown, id)
	}
	lu, err := s.LinkUtilizationTerm(id, k)
	if err != nil {
		return 0, err
	}
	return math.Max(s.NodeValidation(l.A), s.NodeValidation(l.B)) + lu, nil
}

// Weights computes the LVN of every link with normalization constant k,
// producing the cost table the VRA hands to Dijkstra.
func (s *Snapshot) Weights(k float64) (map[LinkID]float64, error) {
	out := make(map[LinkID]float64, len(s.graph.links))
	for id := range s.graph.links {
		w, err := s.LVN(id, k)
		if err != nil {
			return nil, err
		}
		out[id] = w
	}
	return out, nil
}

// WithUtilization returns a new snapshot sharing the graph but with one
// link's utilization replaced. It is used by what-if evaluation (e.g. the
// VRA's continuous re-evaluation tests).
func (s *Snapshot) WithUtilization(id LinkID, u float64) (*Snapshot, error) {
	util := make(map[LinkID]float64, len(s.util)+1)
	for k, v := range s.util {
		util[k] = v
	}
	util[id] = u
	return NewSnapshot(s.graph, util)
}

// WithExtraUtilization returns a new snapshot sharing the graph with each
// link's utilization raised by extra[id] (a fraction of that link's
// capacity). The admission-aware planner uses it to fold broker-committed
// bandwidth into the SNMP view before weighting and QoS-checking routes.
func (s *Snapshot) WithExtraUtilization(extra map[LinkID]float64) (*Snapshot, error) {
	if len(extra) == 0 {
		return s, nil
	}
	util := make(map[LinkID]float64, len(s.util)+len(extra))
	for k, v := range s.util {
		util[k] = v
	}
	for k, v := range extra {
		util[k] += v
	}
	return NewSnapshot(s.graph, util)
}

// LinkReport is one row of a human-readable utilization table.
type LinkReport struct {
	Link         Link
	Utilization  float64
	UsedMbps     float64
	LVN          float64
	NVA, NVB, LU float64
}

// Report computes a per-link summary, sorted by link ID. It powers the CLI
// table printers.
func (s *Snapshot) Report(k float64) ([]LinkReport, error) {
	links := s.graph.Links()
	out := make([]LinkReport, 0, len(links))
	for _, l := range links {
		lu, err := s.LinkUtilizationTerm(l.ID, k)
		if err != nil {
			return nil, err
		}
		lvn, err := s.LVN(l.ID, k)
		if err != nil {
			return nil, err
		}
		out = append(out, LinkReport{
			Link:        l,
			Utilization: s.util[l.ID],
			UsedMbps:    s.UsedBandwidthMbps(l.ID),
			LVN:         lvn,
			NVA:         s.NodeValidation(l.A),
			NVB:         s.NodeValidation(l.B),
			LU:          lu,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Link.ID < out[j].Link.ID })
	return out, nil
}
