// Package topology models the VoD overlay network: named nodes (video
// servers / routers) joined by bidirectional links with fixed capacity, plus
// point-in-time utilization snapshots. It implements the paper's link
// validation equations (1)-(4), which turn a snapshot into the per-link
// weights consumed by the Virtual Routing Algorithm:
//
//	NV(a)  = Σ UBW_m / Σ LBW_m   over links m adjacent to node a      (2)
//	LV_i   = capacity_Mbps(i)/K   with normalization constant K ≈ 10  (4)
//	LU_i   = LT_i · LV_i          LT = utilization fraction           (3)
//	LVN_i  = max(NV_a, NV_b) + LU_i                                   (1)
package topology

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// DefaultNormalizationK is the paper's suggested normalization constant for
// equation (4): "an integer with a value approaching 10".
const DefaultNormalizationK = 10.0

// NodeID names a network node (a video server site such as "Athens").
type NodeID string

// LinkID is the canonical identifier of a bidirectional link: the two
// endpoint IDs sorted lexicographically and joined by "--".
type LinkID string

// MakeLinkID builds the canonical LinkID for the unordered pair {a, b}.
func MakeLinkID(a, b NodeID) LinkID {
	if b < a {
		a, b = b, a
	}
	return LinkID(string(a) + "--" + string(b))
}

// Endpoints splits a LinkID back into its two endpoints.
func (id LinkID) Endpoints() (NodeID, NodeID, error) {
	a, b, ok := strings.Cut(string(id), "--")
	if !ok || a == "" || b == "" {
		return "", "", fmt.Errorf("malformed link id %q", id)
	}
	return NodeID(a), NodeID(b), nil
}

// Link is a bidirectional network connection with a fixed total capacity.
type Link struct {
	ID           LinkID  `json:"id"`
	A            NodeID  `json:"a"`
	B            NodeID  `json:"b"`
	CapacityMbps float64 `json:"capacityMbps"`
}

// Other returns the endpoint of l that is not n. It returns "" when n is not
// an endpoint of l.
func (l Link) Other(n NodeID) NodeID {
	switch n {
	case l.A:
		return l.B
	case l.B:
		return l.A
	default:
		return ""
	}
}

// HasEndpoint reports whether n is one of the link's endpoints.
func (l Link) HasEndpoint(n NodeID) bool { return n == l.A || n == l.B }

// Errors reported by graph construction and lookup.
var (
	ErrNodeExists   = errors.New("node already exists")
	ErrNodeUnknown  = errors.New("node unknown")
	ErrLinkExists   = errors.New("link already exists")
	ErrLinkUnknown  = errors.New("link unknown")
	ErrSelfLoop     = errors.New("self loop not allowed")
	ErrBadCapacity  = errors.New("link capacity must be positive")
	ErrDisconnected = errors.New("graph is not connected")
)

// Graph is the static overlay topology: the node set and capacitated links.
// Build it once with AddNode/AddLink; afterwards it is safe for concurrent
// readers. Mutating methods are not safe to call concurrently with readers.
type Graph struct {
	nodes    map[NodeID]struct{}
	links    map[LinkID]Link
	adjacent map[NodeID][]LinkID // sorted for determinism
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{
		nodes:    make(map[NodeID]struct{}),
		links:    make(map[LinkID]Link),
		adjacent: make(map[NodeID][]LinkID),
	}
}

// AddNode adds a node to the graph.
func (g *Graph) AddNode(n NodeID) error {
	if n == "" {
		return errors.New("empty node id")
	}
	if _, ok := g.nodes[n]; ok {
		return fmt.Errorf("%w: %s", ErrNodeExists, n)
	}
	g.nodes[n] = struct{}{}
	return nil
}

// AddLink adds a bidirectional link between two existing nodes and returns
// its canonical ID.
func (g *Graph) AddLink(a, b NodeID, capacityMbps float64) (LinkID, error) {
	if a == b {
		return "", fmt.Errorf("%w: %s", ErrSelfLoop, a)
	}
	if _, ok := g.nodes[a]; !ok {
		return "", fmt.Errorf("%w: %s", ErrNodeUnknown, a)
	}
	if _, ok := g.nodes[b]; !ok {
		return "", fmt.Errorf("%w: %s", ErrNodeUnknown, b)
	}
	if capacityMbps <= 0 {
		return "", fmt.Errorf("%w: %s-%s capacity %g", ErrBadCapacity, a, b, capacityMbps)
	}
	id := MakeLinkID(a, b)
	if _, ok := g.links[id]; ok {
		return "", fmt.Errorf("%w: %s", ErrLinkExists, id)
	}
	la, lb := a, b
	if lb < la {
		la, lb = lb, la
	}
	g.links[id] = Link{ID: id, A: la, B: lb, CapacityMbps: capacityMbps}
	g.insertAdjacent(a, id)
	g.insertAdjacent(b, id)
	return id, nil
}

func (g *Graph) insertAdjacent(n NodeID, id LinkID) {
	adj := g.adjacent[n]
	i := sort.Search(len(adj), func(i int) bool { return adj[i] >= id })
	adj = append(adj, "")
	copy(adj[i+1:], adj[i:])
	adj[i] = id
	g.adjacent[n] = adj
}

// HasNode reports whether n is in the graph.
func (g *Graph) HasNode(n NodeID) bool {
	_, ok := g.nodes[n]
	return ok
}

// Nodes returns the node set in sorted order.
func (g *Graph) Nodes() []NodeID {
	out := make([]NodeID, 0, len(g.nodes))
	for n := range g.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumLinks returns the number of links.
func (g *Graph) NumLinks() int { return len(g.links) }

// Link returns the link between a and b.
func (g *Graph) Link(a, b NodeID) (Link, error) {
	return g.LinkByID(MakeLinkID(a, b))
}

// LinkByID returns the link with the given canonical ID.
func (g *Graph) LinkByID(id LinkID) (Link, error) {
	l, ok := g.links[id]
	if !ok {
		return Link{}, fmt.Errorf("%w: %s", ErrLinkUnknown, id)
	}
	return l, nil
}

// Links returns every link, sorted by ID.
func (g *Graph) Links() []Link {
	out := make([]Link, 0, len(g.links))
	for _, l := range g.links {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Adjacent returns the IDs of links incident to n, sorted.
func (g *Graph) Adjacent(n NodeID) []LinkID {
	return append([]LinkID(nil), g.adjacent[n]...)
}

// Neighbors returns the nodes directly connected to n, sorted.
func (g *Graph) Neighbors(n NodeID) []NodeID {
	adj := g.adjacent[n]
	out := make([]NodeID, 0, len(adj))
	for _, id := range adj {
		out = append(out, g.links[id].Other(n))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Validate checks structural invariants: at least one node, and full
// connectivity (the paper's service assumes every server can reach every
// other).
func (g *Graph) Validate() error {
	if len(g.nodes) == 0 {
		return errors.New("graph has no nodes")
	}
	// BFS from an arbitrary node.
	var start NodeID
	for n := range g.nodes {
		start = n
		break
	}
	seen := map[NodeID]bool{start: true}
	queue := []NodeID{start}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, id := range g.adjacent[n] {
			m := g.links[id].Other(n)
			if !seen[m] {
				seen[m] = true
				queue = append(queue, m)
			}
		}
	}
	if len(seen) != len(g.nodes) {
		return fmt.Errorf("%w: reached %d of %d nodes", ErrDisconnected, len(seen), len(g.nodes))
	}
	return nil
}

// WithoutNode returns a copy of the graph with node n and every link
// incident to it removed — the copy-on-write shrink step a graceful drain
// installs via db.SetGraph. Removing an unknown node errors; the caller is
// responsible for re-validating connectivity of the result before use.
func (g *Graph) WithoutNode(n NodeID) (*Graph, error) {
	if _, ok := g.nodes[n]; !ok {
		return nil, fmt.Errorf("%w: %s", ErrNodeUnknown, n)
	}
	c := NewGraph()
	for m := range g.nodes {
		if m != n {
			c.nodes[m] = struct{}{}
		}
	}
	for id, l := range g.links {
		if l.A == n || l.B == n {
			continue
		}
		c.links[id] = l
	}
	// Filter the original adjacency slices rather than rebuilding from the
	// links map so adjacency order — which planners iterate — is preserved.
	for m, adj := range g.adjacent {
		if m == n {
			continue
		}
		keep := make([]LinkID, 0, len(adj))
		for _, id := range adj {
			if _, ok := c.links[id]; ok {
				keep = append(keep, id)
			}
		}
		c.adjacent[m] = keep
	}
	return c, nil
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := NewGraph()
	for n := range g.nodes {
		c.nodes[n] = struct{}{}
	}
	for id, l := range g.links {
		c.links[id] = l
	}
	for n, adj := range g.adjacent {
		c.adjacent[n] = append([]LinkID(nil), adj...)
	}
	return c
}
