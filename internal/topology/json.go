package topology

import (
	"encoding/json"
	"fmt"
)

// graphJSON is the wire form of a Graph for configuration files.
type graphJSON struct {
	Nodes []NodeID   `json:"nodes"`
	Links []linkJSON `json:"links"`
}

type linkJSON struct {
	A            NodeID  `json:"a"`
	B            NodeID  `json:"b"`
	CapacityMbps float64 `json:"capacityMbps"`
}

// MarshalJSON encodes the graph as {"nodes": [...], "links": [...]}, with
// both lists sorted for stable output.
func (g *Graph) MarshalJSON() ([]byte, error) {
	wire := graphJSON{Nodes: g.Nodes()}
	for _, l := range g.Links() {
		wire.Links = append(wire.Links, linkJSON{A: l.A, B: l.B, CapacityMbps: l.CapacityMbps})
	}
	return json.Marshal(wire)
}

// UnmarshalJSON decodes a graph, validating node references and capacities.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var wire graphJSON
	if err := json.Unmarshal(data, &wire); err != nil {
		return err
	}
	fresh := NewGraph()
	for _, n := range wire.Nodes {
		if err := fresh.AddNode(n); err != nil {
			return fmt.Errorf("decode graph: %w", err)
		}
	}
	for _, l := range wire.Links {
		if _, err := fresh.AddLink(l.A, l.B, l.CapacityMbps); err != nil {
			return fmt.Errorf("decode graph: %w", err)
		}
	}
	*g = *fresh
	return nil
}
