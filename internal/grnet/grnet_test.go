package grnet

import (
	"math"
	"testing"

	"dvod/internal/routing"
	"dvod/internal/topology"
)

func TestBackboneStructure(t *testing.T) {
	g, err := Backbone()
	if err != nil {
		t.Fatalf("Backbone: %v", err)
	}
	if g.NumNodes() != 6 || g.NumLinks() != 7 {
		t.Fatalf("backbone has %d nodes %d links, want 6/7", g.NumNodes(), g.NumLinks())
	}
	// Spot-check capacities from Table 2.
	for _, tc := range []struct {
		a, b topology.NodeID
		cap  float64
	}{
		{Patra, Athens, 2},
		{Thessaloniki, Athens, 18},
		{Athens, Heraklio, 18},
		{Xanthi, Heraklio, 2},
	} {
		l, err := g.Link(tc.a, tc.b)
		if err != nil {
			t.Fatalf("Link(%s,%s): %v", tc.a, tc.b, err)
		}
		if l.CapacityMbps != tc.cap {
			t.Fatalf("capacity %s-%s = %g, want %g", tc.a, tc.b, l.CapacityMbps, tc.cap)
		}
	}
	// Athens is the hub: degree 3.
	if d := len(g.Neighbors(Athens)); d != 3 {
		t.Fatalf("Athens degree = %d, want 3", d)
	}
}

func TestCityNames(t *testing.T) {
	if CityName(Athens) != "Athens" || CityName(Xanthi) != "Xanthi" {
		t.Fatal("CityName wrong for known nodes")
	}
	if CityName("U99") != "U99" {
		t.Fatal("CityName should pass through unknown ids")
	}
}

func TestSampleTimeStrings(t *testing.T) {
	want := map[SampleTime]string{At8am: "8am", At10am: "10am", At4pm: "4pm", At6pm: "6pm"}
	for st, s := range want {
		if st.String() != s {
			t.Fatalf("String(%d) = %s, want %s", int(st), st, s)
		}
	}
	if SampleTime(99).String() == "" {
		t.Fatal("unknown sample time produced empty string")
	}
	if At8am.HourOfDay() != 8 || At6pm.HourOfDay() != 18 || SampleTime(99).HourOfDay() != 0 {
		t.Fatal("HourOfDay wrong")
	}
}

func TestTable2Utilizations(t *testing.T) {
	// The printed percentages of Table 2, as fractions.
	want := map[topology.LinkID][4]float64{
		topology.MakeLinkID(Patra, Athens):          {0.10, 0.91, 0.91, 0.91},
		topology.MakeLinkID(Patra, Ioannina):        {0.00005, 0.000085, 0.10, 0.12},
		topology.MakeLinkID(Thessaloniki, Athens):   {0.094, 0.388, 0.544, 0.533},
		topology.MakeLinkID(Thessaloniki, Xanthi):   {0.24, 0.26, 0.375, 0.30},
		topology.MakeLinkID(Thessaloniki, Ioannina): {0.15, 0.74, 0.93, 0.65},
		topology.MakeLinkID(Athens, Heraklio):       {0.027, 0.138, 0.305, 0.333},
		topology.MakeLinkID(Xanthi, Heraklio):       {0.00005, 0.00005, 0.0001, 0.000075},
	}
	for _, row := range Table2() {
		id := topology.MakeLinkID(row.A, row.B)
		exp, ok := want[id]
		if !ok {
			t.Fatalf("unexpected link %s in Table2", id)
		}
		for i, st := range SampleTimes() {
			got := row.Utilization(st)
			// 1% relative tolerance: the paper's percentage column is
			// itself rounded (e.g. 7/18 prints as 38.8%).
			if math.Abs(got-exp[i]) > 0.002+0.01*exp[i] {
				t.Errorf("utilization %s @%s = %.6f, paper %.6f", id, st, got, exp[i])
			}
		}
	}
}

func TestSnapshotInvalidTime(t *testing.T) {
	if _, err := Snapshot(SampleTime(0)); err == nil {
		t.Fatal("Snapshot accepted invalid time")
	}
	if _, err := Snapshot(SampleTime(9)); err == nil {
		t.Fatal("Snapshot accepted invalid time")
	}
}

// TestTable3LVNReproduction recomputes every Table 3 cell from the Table 2
// traffic matrix via equations (1)-(4) and compares to the published values.
// The paper's own arithmetic mixes rounded percentages with raw traffic, so
// the tolerance is 0.01 absolute; most cells agree to 4 decimals.
func TestTable3LVNReproduction(t *testing.T) {
	const tol = 0.01
	for _, st := range SampleTimes() {
		snap, err := Snapshot(st)
		if err != nil {
			t.Fatalf("Snapshot(%s): %v", st, err)
		}
		for _, row := range Table2() {
			id := topology.MakeLinkID(row.A, row.B)
			got, err := snap.LVN(id, topology.DefaultNormalizationK)
			if err != nil {
				t.Fatalf("LVN(%s): %v", id, err)
			}
			want, ok := PaperLVN(row.A, row.B, st)
			if !ok {
				t.Fatalf("no paper LVN for %s @%s", id, st)
			}
			if math.Abs(got-want) > tol {
				t.Errorf("LVN %s @%s = %.6f, paper %.6f (Δ %.6f)",
					id, st, got, want, got-want)
			}
		}
	}
}

// TestTable3ExactCells4pm pins the cells where our arithmetic matches the
// paper to 4 decimal places, guarding the equations against regression.
func TestTable3ExactCells4pm(t *testing.T) {
	snap, err := Snapshot(At4pm)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		a, b topology.NodeID
		want float64
	}{
		{Patra, Athens, 0.687},
		{Patra, Ioannina, 0.535},
		{Thessaloniki, Ioannina, 0.7501},
	}
	for _, tc := range cases {
		got, err := snap.LVN(topology.MakeLinkID(tc.a, tc.b), topology.DefaultNormalizationK)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tc.want) > 5e-4 {
			t.Errorf("LVN %s-%s @4pm = %.6f, want %.4f", tc.a, tc.b, got, tc.want)
		}
	}
}

func weightsAt(t *testing.T, st SampleTime) (*topology.Graph, routing.CostTable) {
	t.Helper()
	snap, err := Snapshot(st)
	if err != nil {
		t.Fatal(err)
	}
	w, err := snap.Weights(topology.DefaultNormalizationK)
	if err != nil {
		t.Fatal(err)
	}
	return snap.Graph(), routing.CostTable(w)
}

// TestExperimentB reproduces the paper's Experiment B: at 10am a Patra client
// wants a title held by Thessaloniki and Xanthi; the VRA must pick
// Thessaloniki via U2,U3,U4 at cost ≈1.007.
func TestExperimentB(t *testing.T) {
	g, w := weightsAt(t, At10am)
	tree, err := routing.ShortestPaths(g, w, Patra)
	if err != nil {
		t.Fatal(err)
	}
	best, err := routing.CheapestTo(tree, []topology.NodeID{Thessaloniki, Xanthi})
	if err != nil {
		t.Fatal(err)
	}
	if best.Dest() != Thessaloniki {
		t.Fatalf("experiment B chose %s, paper chooses Thessaloniki", best.Dest())
	}
	if got, want := best.String(), "U2,U3,U4"; got != want {
		t.Fatalf("experiment B path = %s, paper %s", got, want)
	}
	if math.Abs(best.Cost-1.007) > 0.01 {
		t.Fatalf("experiment B cost = %.4f, paper 1.007", best.Cost)
	}
	// The rejected alternative: Xanthi at ≈1.308 via U2,U1,U6,U5.
	alt, err := tree.PathTo(Xanthi)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := alt.String(), "U2,U1,U6,U5"; got != want {
		t.Fatalf("experiment B alt path = %s, paper %s", got, want)
	}
	if math.Abs(alt.Cost-1.308) > 0.01 {
		t.Fatalf("experiment B alt cost = %.4f, paper 1.308", alt.Cost)
	}
}

// TestExperimentC reproduces Experiment C: at 4pm an Athens client, title on
// {Ioannina, Thessaloniki, Xanthi}; VRA picks Ioannina via U1,U2,U3 ≈1.222.
func TestExperimentC(t *testing.T) {
	g, w := weightsAt(t, At4pm)
	tree, err := routing.ShortestPaths(g, w, Athens)
	if err != nil {
		t.Fatal(err)
	}
	best, err := routing.CheapestTo(tree, []topology.NodeID{Ioannina, Thessaloniki, Xanthi})
	if err != nil {
		t.Fatal(err)
	}
	if best.Dest() != Ioannina {
		t.Fatalf("experiment C chose %s, paper chooses Ioannina", best.Dest())
	}
	if got, want := best.String(), "U1,U2,U3"; got != want {
		t.Fatalf("experiment C path = %s, paper %s", got, want)
	}
	if math.Abs(best.Cost-1.222) > 0.01 {
		t.Fatalf("experiment C cost = %.4f, paper 1.222", best.Cost)
	}
	// Paper's alternatives: U4 direct at 1.5433, U5 via U1,U6,U5 at 1.274.
	p4, err := tree.PathTo(Thessaloniki)
	if err != nil {
		t.Fatal(err)
	}
	if p4.String() != "U1,U4" || math.Abs(p4.Cost-1.5433) > 0.01 {
		t.Fatalf("experiment C U4 = %s cost %.4f, paper U1,U4 cost 1.5433", p4, p4.Cost)
	}
	p5, err := tree.PathTo(Xanthi)
	if err != nil {
		t.Fatal(err)
	}
	if p5.String() != "U1,U6,U5" || math.Abs(p5.Cost-1.274) > 0.01 {
		t.Fatalf("experiment C U5 = %s cost %.4f, paper U1,U6,U5 cost 1.274", p5, p5.Cost)
	}
}

// TestExperimentD reproduces Experiment D: 6pm, same setup as C; VRA picks
// Ioannina via U1,U2,U3 at ≈1.236.
func TestExperimentD(t *testing.T) {
	g, w := weightsAt(t, At6pm)
	tree, err := routing.ShortestPaths(g, w, Athens)
	if err != nil {
		t.Fatal(err)
	}
	best, err := routing.CheapestTo(tree, []topology.NodeID{Ioannina, Thessaloniki, Xanthi})
	if err != nil {
		t.Fatal(err)
	}
	if best.Dest() != Ioannina || best.String() != "U1,U2,U3" {
		t.Fatalf("experiment D chose %s via %s, paper: Ioannina via U1,U2,U3", best.Dest(), best)
	}
	if math.Abs(best.Cost-1.236) > 0.01 {
		t.Fatalf("experiment D cost = %.4f, paper 1.236", best.Cost)
	}
	p5, err := tree.PathTo(Xanthi)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p5.Cost-1.3574) > 0.01 {
		t.Fatalf("experiment D U5 cost = %.4f, paper 1.3574", p5.Cost)
	}
	p4, err := tree.PathTo(Thessaloniki)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p4.Cost-1.4824) > 0.01 {
		t.Fatalf("experiment D U4 cost = %.4f, paper 1.4824", p4.Cost)
	}
}

// TestExperimentAPaperDiscrepancy documents the hand-computation error in the
// paper's Experiment A (see DESIGN.md and EXPERIMENTS.md): the published
// Table 4 never relaxes U4 through U3, reporting D4 = 0.365 via U2,U1,U4 and
// choosing Xanthi. A correct Dijkstra run over the paper's own 8am weights
// finds U4 at ≈0.218 via U2,U3,U4, which beats Xanthi's 0.315, so the VRA
// picks Thessaloniki. Both facts are pinned here.
func TestExperimentAPaperDiscrepancy(t *testing.T) {
	g, w := weightsAt(t, At8am)
	tree, err := routing.ShortestPaths(g, w, Patra)
	if err != nil {
		t.Fatal(err)
	}
	// Correct result: Thessaloniki via Ioannina.
	best, err := routing.CheapestTo(tree, []topology.NodeID{Thessaloniki, Xanthi})
	if err != nil {
		t.Fatal(err)
	}
	if best.Dest() != Thessaloniki || best.String() != "U2,U3,U4" {
		t.Fatalf("correct VRA chose %s via %s, want Thessaloniki via U2,U3,U4", best.Dest(), best)
	}
	if math.Abs(best.Cost-0.218) > 0.01 {
		t.Fatalf("U2,U3,U4 cost = %.4f, want ≈0.218", best.Cost)
	}
	// Paper-matching sub-results: Xanthi's path and cost agree with Table 4.
	p5, err := tree.PathTo(Xanthi)
	if err != nil {
		t.Fatal(err)
	}
	if p5.String() != "U2,U1,U6,U5" || math.Abs(p5.Cost-0.315) > 0.01 {
		t.Fatalf("U5 = %s cost %.4f, paper U2,U1,U6,U5 cost 0.315", p5, p5.Cost)
	}
	// The paper's claimed D4 route exists and costs ≈0.365 — it is simply
	// not the cheapest.
	var viaAthens float64
	for _, id := range []topology.LinkID{
		topology.MakeLinkID(Patra, Athens),
		topology.MakeLinkID(Thessaloniki, Athens),
	} {
		viaAthens += w[id]
	}
	if math.Abs(viaAthens-0.365) > 0.01 {
		t.Fatalf("paper's U2,U1,U4 route costs %.4f, paper claims 0.365", viaAthens)
	}
	if viaAthens <= best.Cost {
		t.Fatal("paper's route should be strictly worse than U2,U3,U4")
	}
}

// TestTable4TraceMatchingCells verifies the Dijkstra trace at 8am against the
// cells of the paper's Table 4 that are consistent with its own weights
// (D3, D1, D6, D5 at every step; D4 deviates per the documented erratum).
func TestTable4TraceMatchingCells(t *testing.T) {
	g, w := weightsAt(t, At8am)
	steps, _, err := routing.DijkstraTrace(g, w, Patra)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 6 {
		t.Fatalf("trace has %d steps, want 6", len(steps))
	}
	s1 := steps[0]
	check := func(step routing.TraceStep, n topology.NodeID, dist float64, path string) {
		t.Helper()
		l := step.Labels[n]
		if !l.Reachable {
			t.Fatalf("step %d: %s unreachable, want %.3f", step.Step, n, dist)
		}
		if math.Abs(l.Dist-dist) > 0.01 {
			t.Fatalf("step %d: D(%s) = %.4f, paper %.3f", step.Step, n, l.Dist, dist)
		}
		p := routing.Path{Nodes: l.Path}
		if p.String() != path {
			t.Fatalf("step %d: path(%s) = %s, paper %s", step.Step, n, p, path)
		}
	}
	// Step 1 (paper row 1): D3=0.075 via U2,U3; D1=0.083 via U2,U1; rest R.
	check(s1, Ioannina, 0.075, "U2,U3")
	check(s1, Athens, 0.083, "U2,U1")
	for _, n := range []topology.NodeID{Thessaloniki, Xanthi, Heraklio} {
		if s1.Labels[n].Reachable {
			t.Fatalf("step 1: %s should be unreachable (paper prints R)", n)
		}
	}
	if s1.Permanent[0] != Patra {
		t.Fatalf("step 1 permanent = %v", s1.Permanent)
	}
	// Step 2 adds U3 (paper row 2).
	if steps[1].Permanent[1] != Ioannina {
		t.Fatalf("step 2 added %s, paper adds U3", steps[1].Permanent[1])
	}
	// Step 3 adds U1; D6 = 0.195 via U2,U1,U6 appears (paper row 3 column D6).
	if steps[2].Permanent[2] != Athens {
		t.Fatalf("step 3 added %s, paper adds U1", steps[2].Permanent[2])
	}
	check(steps[2], Heraklio, 0.195, "U2,U1,U6")
	// Final step: D5 = 0.315 via U2,U1,U6,U5 (matches paper).
	check(steps[5], Xanthi, 0.315, "U2,U1,U6,U5")
}

// TestTable5TraceReproduction verifies the full Dijkstra trace at 10am
// against the paper's Table 5, which is internally consistent.
func TestTable5TraceReproduction(t *testing.T) {
	g, w := weightsAt(t, At10am)
	steps, _, err := routing.DijkstraTrace(g, w, Patra)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 6 {
		t.Fatalf("trace has %d steps, want 6", len(steps))
	}
	// Paper's permanent-set growth: U2, U3, U1, U4, U6, U5.
	wantOrder := []topology.NodeID{Patra, Ioannina, Athens, Thessaloniki, Heraklio, Xanthi}
	final := steps[5].Permanent
	for i, n := range wantOrder {
		if final[i] != n {
			t.Fatalf("extraction order[%d] = %s, paper %s (full: %v)", i, final[i], n, final)
		}
	}
	// Final labels (paper row 6): D3=0.45 U2,U3; D1=0.632 U2,U1;
	// D4=1.007 U2,U3,U4; D5=1.308 U2,U1,U6,U5; D6=1.178 U2,U1,U6.
	last := steps[5]
	cases := []struct {
		n    topology.NodeID
		dist float64
		path string
	}{
		{Ioannina, 0.450, "U2,U3"},
		{Athens, 0.632, "U2,U1"},
		{Thessaloniki, 1.007, "U2,U3,U4"},
		{Xanthi, 1.308, "U2,U1,U6,U5"},
		{Heraklio, 1.178, "U2,U1,U6"},
	}
	for _, tc := range cases {
		l := last.Labels[tc.n]
		if !l.Reachable {
			t.Fatalf("final: %s unreachable", tc.n)
		}
		if math.Abs(l.Dist-tc.dist) > 0.01 {
			t.Errorf("final D(%s) = %.4f, paper %.3f", tc.n, l.Dist, tc.dist)
		}
		p := routing.Path{Nodes: l.Path}
		if p.String() != tc.path {
			t.Errorf("final path(%s) = %s, paper %s", tc.n, p, tc.path)
		}
	}
	// Row 1 of Table 5: D4, D5, D6 print R.
	for _, n := range []topology.NodeID{Thessaloniki, Xanthi, Heraklio} {
		if steps[0].Labels[n].Reachable {
			t.Errorf("step 1: %s should be unreachable", n)
		}
	}
}
