// Package grnet holds the paper's case-study fixture: the Greek Research and
// Technology Network backbone of Figure 6 (six university sites, seven
// links) and the SNMP traffic matrix of Table 2, sampled at 8am, 10am, 4pm
// and 6pm on the measured day.
//
// The paper labels the sites U1..U6; the mapping (recovered from the case
// study's path listings) is:
//
//	U1 Athens    U2 Patra    U3 Ioannina
//	U4 Thessaloniki    U5 Xanthi    U6 Heraklio
//
// Ground truth for link load is the paper's measured traffic column
// (in+out Mbps); utilization percentages follow as traffic/capacity. The
// paper itself mixes rounded percentages and raw traffic when deriving its
// Table 3, so reproduced LVNs agree with the published ones to within ~0.006
// (see EXPERIMENTS.md for the per-cell comparison).
package grnet

import (
	"fmt"

	"dvod/internal/topology"
)

// Node IDs of the six GRNET sites, using the paper's U-labels as canonical
// IDs (display names carry the city).
const (
	Athens       topology.NodeID = "U1"
	Patra        topology.NodeID = "U2"
	Ioannina     topology.NodeID = "U3"
	Thessaloniki topology.NodeID = "U4"
	Xanthi       topology.NodeID = "U5"
	Heraklio     topology.NodeID = "U6"
)

// CityName maps a node ID to its city, for display.
func CityName(n topology.NodeID) string {
	switch n {
	case Athens:
		return "Athens"
	case Patra:
		return "Patra"
	case Ioannina:
		return "Ioannina"
	case Thessaloniki:
		return "Thessaloniki"
	case Xanthi:
		return "Xanthi"
	case Heraklio:
		return "Heraklio"
	default:
		return string(n)
	}
}

// Nodes lists the six sites in U-label order.
func Nodes() []topology.NodeID {
	return []topology.NodeID{Athens, Patra, Ioannina, Thessaloniki, Xanthi, Heraklio}
}

// SampleTime identifies one of the four measurement instants of Table 2.
type SampleTime int

// The four sampling instants.
const (
	At8am SampleTime = iota + 1
	At10am
	At4pm
	At6pm
)

// SampleTimes lists the instants in chronological order.
func SampleTimes() []SampleTime { return []SampleTime{At8am, At10am, At4pm, At6pm} }

// String renders the instant as the paper writes it.
func (t SampleTime) String() string {
	switch t {
	case At8am:
		return "8am"
	case At10am:
		return "10am"
	case At4pm:
		return "4pm"
	case At6pm:
		return "6pm"
	default:
		return fmt.Sprintf("SampleTime(%d)", int(t))
	}
}

// HourOfDay returns the 24h clock hour of the sample.
func (t SampleTime) HourOfDay() int {
	switch t {
	case At8am:
		return 8
	case At10am:
		return 10
	case At4pm:
		return 16
	case At6pm:
		return 18
	default:
		return 0
	}
}

// LinkLoad is one cell of Table 2: the measured in+out traffic of a link at
// one instant.
type LinkLoad struct {
	A, B         topology.NodeID
	CapacityMbps float64
	// TrafficMbps indexes by SampleTime-1 (8am, 10am, 4pm, 6pm).
	TrafficMbps [4]float64
}

// Utilization returns the load fraction at the given instant.
func (l LinkLoad) Utilization(t SampleTime) float64 {
	return l.TrafficMbps[int(t)-1] / l.CapacityMbps
}

// Table2 returns the paper's measured traffic matrix. Traffic values follow
// Table 2's in+out column; where that column's unit is internally
// inconsistent with the printed percentage (the "100 bits" rows), the
// percentage column governs, matching the values the paper actually fed into
// its Table 3 computation.
func Table2() []LinkLoad {
	return []LinkLoad{
		{A: Patra, B: Athens, CapacityMbps: 2,
			TrafficMbps: [4]float64{0.200, 1.820, 1.820, 1.820}},
		{A: Patra, B: Ioannina, CapacityMbps: 2,
			TrafficMbps: [4]float64{0.0001, 0.00017, 0.200, 0.240}},
		{A: Thessaloniki, B: Athens, CapacityMbps: 18,
			TrafficMbps: [4]float64{1.700, 7.000, 9.800, 9.600}},
		{A: Thessaloniki, B: Xanthi, CapacityMbps: 2,
			TrafficMbps: [4]float64{0.480, 0.520, 0.750, 0.600}},
		{A: Thessaloniki, B: Ioannina, CapacityMbps: 2,
			TrafficMbps: [4]float64{0.300, 1.480, 1.860, 1.300}},
		{A: Athens, B: Heraklio, CapacityMbps: 18,
			TrafficMbps: [4]float64{0.500, 2.500, 5.500, 6.000}},
		{A: Xanthi, B: Heraklio, CapacityMbps: 2,
			TrafficMbps: [4]float64{0.0001, 0.0001, 0.0002, 0.00015}},
	}
}

// Backbone builds the Figure 6 topology: the six sites and seven capacitated
// links.
func Backbone() (*topology.Graph, error) {
	g := topology.NewGraph()
	for _, n := range Nodes() {
		if err := g.AddNode(n); err != nil {
			return nil, fmt.Errorf("grnet backbone: %w", err)
		}
	}
	for _, l := range Table2() {
		if _, err := g.AddLink(l.A, l.B, l.CapacityMbps); err != nil {
			return nil, fmt.Errorf("grnet backbone: %w", err)
		}
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("grnet backbone: %w", err)
	}
	return g, nil
}

// Snapshot builds the utilization snapshot of the backbone at the given
// sampling instant, ready for LVN weighting.
func Snapshot(t SampleTime) (*topology.Snapshot, error) {
	g, err := Backbone()
	if err != nil {
		return nil, err
	}
	return SnapshotOn(g, t)
}

// SnapshotOn builds the Table 2 snapshot at instant t over an existing
// backbone graph (which must contain the seven GRNET links).
func SnapshotOn(g *topology.Graph, t SampleTime) (*topology.Snapshot, error) {
	if t < At8am || t > At6pm {
		return nil, fmt.Errorf("unknown sample time %d", int(t))
	}
	util := make(map[topology.LinkID]float64, 7)
	for _, l := range Table2() {
		util[topology.MakeLinkID(l.A, l.B)] = l.Utilization(t)
	}
	return topology.NewSnapshot(g, util)
}

// PaperLVN returns the published Table 3 LVN value for the link {a,b} at
// instant t. These are the paper's numbers verbatim, kept for comparison in
// tests and EXPERIMENTS.md; reproduced values agree to within ~0.006 (the
// paper mixes rounded percentages with raw traffic in its own arithmetic).
func PaperLVN(a, b topology.NodeID, t SampleTime) (float64, bool) {
	id := topology.MakeLinkID(a, b)
	row, ok := paperTable3[id]
	if !ok || t < At8am || t > At6pm {
		return 0, false
	}
	return row[int(t)-1], true
}

var paperTable3 = map[topology.LinkID][4]float64{
	topology.MakeLinkID(Patra, Athens):          {0.083, 0.632, 0.687, 0.697},
	topology.MakeLinkID(Patra, Ioannina):        {0.07501, 0.450017, 0.535, 0.539},
	topology.MakeLinkID(Thessaloniki, Athens):   {0.2819, 1.1075, 1.5433, 1.4824},
	topology.MakeLinkID(Thessaloniki, Xanthi):   {0.168, 0.4611, 0.6391, 0.583},
	topology.MakeLinkID(Thessaloniki, Ioannina): {0.1427, 0.5571, 0.7501, 0.653},
	topology.MakeLinkID(Athens, Heraklio):       {0.1116, 0.5462, 0.999, 1.0574},
	topology.MakeLinkID(Xanthi, Heraklio):       {0.1201, 0.13001, 0.275015, 0.3},
}
