package web

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"dvod/internal/core"
	"dvod/internal/db"
	"dvod/internal/grnet"
	"dvod/internal/metrics"
	"dvod/internal/topology"
)

func TestAdminMetrics(t *testing.T) {
	g, err := grnet.Backbone()
	if err != nil {
		t.Fatal(err)
	}
	d := db.New(g)
	planner, err := core.NewPlanner(d, core.VRA{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	reg.Counter("server.requests").Add(7)
	m, err := New(Config{
		DB: d, Planner: planner, AdminToken: token,
		Metrics: func() map[topology.NodeID]metrics.Snapshot {
			return map[topology.NodeID]metrics.Snapshot{grnet.Patra: reg.Snapshot()}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(m)
	defer srv.Close()

	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/admin/metrics", nil)
	req.Header.Set("Authorization", "Bearer "+token)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out map[topology.NodeID]metrics.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out[grnet.Patra].Counters["server.requests"] != 7 {
		t.Fatalf("metrics = %+v", out)
	}
	// Unauthenticated access stays blocked.
	resp2, err := http.Get(srv.URL + "/admin/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated = %d", resp2.StatusCode)
	}
}

func TestAdminMetricsNilSupplier(t *testing.T) {
	g, err := grnet.Backbone()
	if err != nil {
		t.Fatal(err)
	}
	d := db.New(g)
	planner, err := core.NewPlanner(d, core.VRA{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Config{DB: d, Planner: planner, AdminToken: token})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(m)
	defer srv.Close()
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/admin/metrics", nil)
	req.Header.Set("Authorization", "Bearer "+token)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("out = %v", out)
	}
}
