package web

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dvod/internal/core"
	"dvod/internal/db"
	"dvod/internal/grnet"
	"dvod/internal/metrics"
	"dvod/internal/topology"
)

func TestAdminMetrics(t *testing.T) {
	g, err := grnet.Backbone()
	if err != nil {
		t.Fatal(err)
	}
	d := db.New(g)
	planner, err := core.NewPlanner(d, core.VRA{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	reg.Counter("server.requests").Add(7)
	m, err := New(Config{
		DB: d, Planner: planner, AdminToken: token,
		Metrics: func() map[topology.NodeID]metrics.Snapshot {
			return map[topology.NodeID]metrics.Snapshot{grnet.Patra: reg.Snapshot()}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(m)
	defer srv.Close()

	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/admin/metrics", nil)
	req.Header.Set("Authorization", "Bearer "+token)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out map[topology.NodeID]metrics.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out[grnet.Patra].Counters["server.requests"] != 7 {
		t.Fatalf("metrics = %+v", out)
	}
	// Unauthenticated access stays blocked.
	resp2, err := http.Get(srv.URL + "/admin/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated = %d", resp2.StatusCode)
	}
}

func TestPrometheusEndpoint(t *testing.T) {
	g, err := grnet.Backbone()
	if err != nil {
		t.Fatal(err)
	}
	d := db.New(g)
	planner, err := core.NewPlanner(d, core.VRA{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	regA := metrics.NewRegistry()
	regA.Counter("admission.admitted.premium").Add(3)
	regA.Gauge("admission.committed_mbps").Set(4.5)
	regB := metrics.NewRegistry()
	regB.Counter("admission.admitted.premium").Add(1)
	m, err := New(Config{
		DB: d, Planner: planner,
		Metrics: func() map[topology.NodeID]metrics.Snapshot {
			return map[topology.NodeID]metrics.Snapshot{
				grnet.Patra:  regA.Snapshot(),
				grnet.Athens: regB.Snapshot(),
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(m)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE dvod_admission_admitted_premium_total counter",
		`dvod_admission_admitted_premium_total{node="U2"} 3`,
		`dvod_admission_admitted_premium_total{node="U1"} 1`,
		`dvod_admission_committed_mbps{node="U2"} 4.5`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
	// The TYPE header appears once even with two labeled instances.
	if strings.Count(text, "# TYPE dvod_admission_admitted_premium_total counter") != 1 {
		t.Fatalf("duplicated TYPE header:\n%s", text)
	}
}

func TestPrometheusEndpointNilSupplier(t *testing.T) {
	g, err := grnet.Backbone()
	if err != nil {
		t.Fatal(err)
	}
	d := db.New(g)
	planner, err := core.NewPlanner(d, core.VRA{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Config{DB: d, Planner: planner})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(m)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestAdminMetricsNilSupplier(t *testing.T) {
	g, err := grnet.Backbone()
	if err != nil {
		t.Fatal(err)
	}
	d := db.New(g)
	planner, err := core.NewPlanner(d, core.VRA{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Config{DB: d, Planner: planner, AdminToken: token})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(m)
	defer srv.Close()
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/admin/metrics", nil)
	req.Header.Set("Authorization", "Bearer "+token)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("out = %v", out)
	}
}
