package web

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dvod/internal/core"
	"dvod/internal/db"
	"dvod/internal/grnet"
	"dvod/internal/media"
	"dvod/internal/topology"
)

var t0 = time.Date(2000, time.April, 10, 10, 0, 0, 0, time.UTC)

const token = "secret-token"

// fixture builds a web module over the GRNET DB at the 10am snapshot with
// one title on U4 and U5.
func fixture(t *testing.T) (*db.DB, *httptest.Server) {
	t.Helper()
	g, err := grnet.Backbone()
	if err != nil {
		t.Fatal(err)
	}
	d := db.New(g)
	for _, row := range grnet.Table2() {
		id := topology.MakeLinkID(row.A, row.B)
		if err := d.UpsertLinkStats(id, row.TrafficMbps[1], t0); err != nil {
			t.Fatal(err)
		}
	}
	for _, node := range grnet.Nodes() {
		if err := d.RegisterServer(node, "server "+string(node), t0); err != nil {
			t.Fatal(err)
		}
	}
	title := media.Title{Name: "Zorba the Greek", SizeBytes: 1 << 20, BitrateMbps: 1.5}
	if err := d.Catalog().AddTitle(title); err != nil {
		t.Fatal(err)
	}
	for _, h := range []topology.NodeID{grnet.Thessaloniki, grnet.Xanthi} {
		if err := d.SetHolding(h, title.Name, true, t0); err != nil {
			t.Fatal(err)
		}
	}
	planner, err := core.NewPlanner(d, core.VRA{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Config{DB: d, Planner: planner, AdminToken: token})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(m)
	t.Cleanup(srv.Close)
	return d, srv
}

func get(t *testing.T, url string, auth string, out any) int {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if auth != "" {
		req.Header.Set("Authorization", auth)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil db accepted")
	}
	g, err := grnet.Backbone()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{DB: db.New(g)}); err == nil {
		t.Fatal("nil planner accepted")
	}
}

func TestTitlesAndSearch(t *testing.T) {
	_, srv := fixture(t)
	var titles []TitleJSON
	if code := get(t, srv.URL+"/titles", "", &titles); code != http.StatusOK {
		t.Fatalf("GET /titles = %d", code)
	}
	if len(titles) != 1 || titles[0].Name != "Zorba the Greek" {
		t.Fatalf("titles = %v", titles)
	}
	var hits []TitleJSON
	if code := get(t, srv.URL+"/titles/search?q=zorba", "", &hits); code != http.StatusOK {
		t.Fatalf("search = %d", code)
	}
	if len(hits) != 1 {
		t.Fatalf("hits = %v", hits)
	}
	if code := get(t, srv.URL+"/titles/search?q=nothing", "", &hits); code != http.StatusOK {
		t.Fatalf("empty search = %d", code)
	}
}

func TestHolders(t *testing.T) {
	_, srv := fixture(t)
	var holders []topology.NodeID
	if code := get(t, srv.URL+"/titles/Zorba the Greek/holders", "", &holders); code != http.StatusOK {
		t.Fatalf("holders = %d", code)
	}
	if len(holders) != 2 || holders[0] != grnet.Thessaloniki {
		t.Fatalf("holders = %v", holders)
	}
	if code := get(t, srv.URL+"/titles/ghost/holders", "", nil); code != http.StatusNotFound {
		t.Fatalf("missing title = %d", code)
	}
}

func postRequest(t *testing.T, url string, body RequestJSON) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/request", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

// TestRequestRunsVRA reproduces Experiment B through the web module: a
// Patra user requests the title and the response carries the published
// decision.
func TestRequestRunsVRA(t *testing.T) {
	_, srv := fixture(t)
	resp, body := postRequest(t, srv.URL, RequestJSON{Home: grnet.Patra, Title: "Zorba the Greek"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /request = %d: %s", resp.StatusCode, body)
	}
	var dec DecisionJSON
	if err := json.Unmarshal(body, &dec); err != nil {
		t.Fatal(err)
	}
	if dec.Server != grnet.Thessaloniki || dec.Local {
		t.Fatalf("decision = %+v", dec)
	}
	wantPath := []topology.NodeID{grnet.Patra, grnet.Ioannina, grnet.Thessaloniki}
	if len(dec.Path) != 3 {
		t.Fatalf("path = %v", dec.Path)
	}
	for i, n := range wantPath {
		if dec.Path[i] != n {
			t.Fatalf("path = %v, want %v", dec.Path, wantPath)
		}
	}
	if !strings.Contains(RouteDescription(dec), "U2,U3,U4") {
		t.Fatalf("RouteDescription = %s", RouteDescription(dec))
	}
}

func TestRequestLocal(t *testing.T) {
	d, srv := fixture(t)
	if err := d.SetHolding(grnet.Patra, "Zorba the Greek", true, t0); err != nil {
		t.Fatal(err)
	}
	resp, body := postRequest(t, srv.URL, RequestJSON{Home: grnet.Patra, Title: "Zorba the Greek"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST = %d: %s", resp.StatusCode, body)
	}
	var dec DecisionJSON
	if err := json.Unmarshal(body, &dec); err != nil {
		t.Fatal(err)
	}
	if !dec.Local || dec.Server != grnet.Patra {
		t.Fatalf("decision = %+v", dec)
	}
	if !strings.Contains(RouteDescription(dec), "locally") {
		t.Fatalf("RouteDescription = %s", RouteDescription(dec))
	}
}

func TestRequestErrors(t *testing.T) {
	_, srv := fixture(t)
	// Malformed body.
	resp, err := http.Post(srv.URL+"/request", "application/json", strings.NewReader("{{{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed = %d", resp.StatusCode)
	}
	// Missing fields.
	r2, _ := postRequest(t, srv.URL, RequestJSON{})
	if r2.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty fields = %d", r2.StatusCode)
	}
	// Unknown title.
	r3, _ := postRequest(t, srv.URL, RequestJSON{Home: grnet.Patra, Title: "ghost"})
	if r3.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown title = %d", r3.StatusCode)
	}
	// Unknown home node.
	r4, _ := postRequest(t, srv.URL, RequestJSON{Home: "U99", Title: "Zorba the Greek"})
	if r4.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown home = %d", r4.StatusCode)
	}
}

func TestRequestNoHolders(t *testing.T) {
	d, srv := fixture(t)
	for _, h := range []topology.NodeID{grnet.Thessaloniki, grnet.Xanthi} {
		if err := d.SetHolding(h, "Zorba the Greek", false, t0); err != nil {
			t.Fatal(err)
		}
	}
	resp, _ := postRequest(t, srv.URL, RequestJSON{Home: grnet.Patra, Title: "Zorba the Greek"})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("no holders = %d", resp.StatusCode)
	}
}

func TestAdminAuth(t *testing.T) {
	_, srv := fixture(t)
	if code := get(t, srv.URL+"/admin/servers", "", nil); code != http.StatusUnauthorized {
		t.Fatalf("no token = %d", code)
	}
	if code := get(t, srv.URL+"/admin/servers", "Bearer wrong", nil); code != http.StatusUnauthorized {
		t.Fatalf("wrong token = %d", code)
	}
	var servers []ServerJSON
	if code := get(t, srv.URL+"/admin/servers", "Bearer "+token, &servers); code != http.StatusOK {
		t.Fatalf("good token = %d", code)
	}
	if len(servers) != 6 {
		t.Fatalf("servers = %v", servers)
	}
}

func TestAdminDisabled(t *testing.T) {
	g, err := grnet.Backbone()
	if err != nil {
		t.Fatal(err)
	}
	d := db.New(g)
	planner, err := core.NewPlanner(d, core.VRA{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Config{DB: d, Planner: planner}) // no token
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(m)
	defer srv.Close()
	if code := get(t, srv.URL+"/admin/servers", "Bearer anything", nil); code != http.StatusForbidden {
		t.Fatalf("disabled admin = %d", code)
	}
}

func TestAdminLinks(t *testing.T) {
	_, srv := fixture(t)
	var links []LinkJSON
	if code := get(t, srv.URL+"/admin/links", "Bearer "+token, &links); code != http.StatusOK {
		t.Fatalf("links = %d", code)
	}
	if len(links) != 7 {
		t.Fatalf("links = %d rows", len(links))
	}
	for _, l := range links {
		if l.UpdatedAt == nil {
			t.Fatalf("link %s missing stats", l.ID)
		}
	}
}

func TestAdminUpdateLink(t *testing.T) {
	d, srv := fixture(t)
	id := topology.MakeLinkID(grnet.Patra, grnet.Athens)
	req, err := http.NewRequest(http.MethodPut,
		srv.URL+"/admin/links/"+string(id)+"?usedMbps=1.5", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer "+token)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT = %d", resp.StatusCode)
	}
	s, err := d.LinkStats(id)
	if err != nil {
		t.Fatal(err)
	}
	if s.UsedMbps != 1.5 {
		t.Fatalf("stats = %+v", s)
	}
	// Bad value.
	req2, _ := http.NewRequest(http.MethodPut,
		srv.URL+"/admin/links/"+string(id)+"?usedMbps=abc", nil)
	req2.Header.Set("Authorization", "Bearer "+token)
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad value = %d", resp2.StatusCode)
	}
	// Unknown link.
	req3, _ := http.NewRequest(http.MethodPut,
		srv.URL+"/admin/links/X--Y?usedMbps=1", nil)
	req3.Header.Set("Authorization", "Bearer "+token)
	resp3, err := http.DefaultClient.Do(req3)
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown link = %d", resp3.StatusCode)
	}
}

func TestAdminTopology(t *testing.T) {
	_, srv := fixture(t)
	var topo TopologyJSON
	if code := get(t, srv.URL+"/admin/topology", "Bearer "+token, &topo); code != http.StatusOK {
		t.Fatalf("topology = %d", code)
	}
	if len(topo.Nodes) != 6 || len(topo.Links) != 7 {
		t.Fatalf("topology = %d nodes %d links", len(topo.Nodes), len(topo.Links))
	}
}

// TestAdminUpdateChangesRouting closes the loop the paper describes: an
// administrator inserts fresh link statistics and the next user request is
// routed differently.
func TestAdminUpdateChangesRouting(t *testing.T) {
	_, srv := fixture(t)
	// Initially (10am) the decision is U4 via Ioannina.
	resp, body := postRequest(t, srv.URL, RequestJSON{Home: grnet.Patra, Title: "Zorba the Greek"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request = %d", resp.StatusCode)
	}
	var before DecisionJSON
	if err := json.Unmarshal(body, &before); err != nil {
		t.Fatal(err)
	}
	if before.Server != grnet.Thessaloniki {
		t.Fatalf("before = %+v", before)
	}
	// The administrator reports the Ioannina links saturated.
	for _, pair := range [][2]topology.NodeID{
		{grnet.Patra, grnet.Ioannina},
		{grnet.Thessaloniki, grnet.Ioannina},
		{grnet.Thessaloniki, grnet.Athens},
	} {
		id := topology.MakeLinkID(pair[0], pair[1])
		req, _ := http.NewRequest(http.MethodPut,
			srv.URL+"/admin/links/"+string(id)+"?usedMbps=18", nil)
		req.Header.Set("Authorization", "Bearer "+token)
		r, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("PUT %s = %d", id, r.StatusCode)
		}
	}
	resp2, body2 := postRequest(t, srv.URL, RequestJSON{Home: grnet.Patra, Title: "Zorba the Greek"})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("request 2 = %d", resp2.StatusCode)
	}
	var after DecisionJSON
	if err := json.Unmarshal(body2, &after); err != nil {
		t.Fatal(err)
	}
	if after.Server != grnet.Xanthi {
		t.Fatalf("after congestion = %+v, want Xanthi", after)
	}
}
