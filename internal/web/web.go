// Package web implements the paper's interface modules (Figure 1) over
// HTTP: a full-access module through which users browse and search the
// catalog and place video requests (each request runs the VRA and returns
// the chosen server and route), and a limited-access module through which
// administrators inspect and update the network/configuration records in the
// database — exactly the split the paper draws between the two sub-modules.
//
// The limited-access module requires a bearer token; the full-access module
// is open, mirroring the paper's access model.
package web

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"dvod/internal/clock"
	"dvod/internal/core"
	"dvod/internal/db"
	"dvod/internal/metrics"
	"dvod/internal/routing"
	"dvod/internal/topology"
)

// Config assembles the web module.
type Config struct {
	// DB is the shared database module.
	DB *db.DB
	// Planner runs the routing policy for /request.
	Planner *core.Planner
	// AdminToken guards the limited-access module. Empty disables it
	// entirely (requests return 403).
	AdminToken string
	// Clock stamps administrative updates; nil defaults to wall time.
	Clock clock.Clock
	// Metrics optionally supplies per-server metric snapshots for
	// GET /admin/metrics; nil returns an empty object.
	Metrics func() map[topology.NodeID]metrics.Snapshot
}

// Module is an http.Handler exposing both interface modules.
type Module struct {
	cfg Config
	mux *http.ServeMux
}

var _ http.Handler = (*Module)(nil)

// New validates the configuration and builds the handler.
func New(cfg Config) (*Module, error) {
	if cfg.DB == nil {
		return nil, errors.New("web: nil db")
	}
	if cfg.Planner == nil {
		return nil, errors.New("web: nil planner")
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Wall{}
	}
	m := &Module{cfg: cfg, mux: http.NewServeMux()}
	// Full-access module.
	m.mux.HandleFunc("GET /titles", m.handleTitles)
	m.mux.HandleFunc("GET /titles/search", m.handleSearch)
	m.mux.HandleFunc("GET /titles/{name}/holders", m.handleHolders)
	m.mux.HandleFunc("POST /request", m.handleRequest)
	// Prometheus exposition of every server's registry (scrape target).
	m.mux.HandleFunc("GET /metrics", m.handlePrometheus)
	// Limited-access module.
	m.mux.HandleFunc("GET /admin/servers", m.admin(m.handleServers))
	m.mux.HandleFunc("GET /admin/links", m.admin(m.handleLinks))
	m.mux.HandleFunc("PUT /admin/links/{id}", m.admin(m.handleUpdateLink))
	m.mux.HandleFunc("GET /admin/topology", m.admin(m.handleTopology))
	m.mux.HandleFunc("GET /admin/metrics", m.admin(m.handleMetrics))
	return m, nil
}

// ServeHTTP implements http.Handler.
func (m *Module) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	m.mux.ServeHTTP(w, r)
}

// admin wraps a handler with bearer-token authentication.
func (m *Module) admin(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if m.cfg.AdminToken == "" {
			writeError(w, http.StatusForbidden, "limited-access module disabled")
			return
		}
		auth := r.Header.Get("Authorization")
		want := "Bearer " + m.cfg.AdminToken
		if auth != want {
			writeError(w, http.StatusUnauthorized, "missing or wrong admin token")
			return
		}
		h(w, r)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

// TitleJSON is one catalog row.
type TitleJSON struct {
	Name        string  `json:"name"`
	SizeBytes   int64   `json:"sizeBytes"`
	BitrateMbps float64 `json:"bitrateMbps"`
}

// handleTitles lists the catalog (full access).
func (m *Module) handleTitles(w http.ResponseWriter, r *http.Request) {
	all := m.cfg.DB.Catalog().Titles()
	out := make([]TitleJSON, 0, len(all))
	for _, t := range all {
		out = append(out, TitleJSON{Name: t.Name, SizeBytes: t.SizeBytes, BitrateMbps: t.BitrateMbps})
	}
	writeJSON(w, http.StatusOK, out)
}

// handleSearch searches the catalog by substring (full access).
func (m *Module) handleSearch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	hits := m.cfg.DB.Catalog().Search(q)
	out := make([]TitleJSON, 0, len(hits))
	for _, t := range hits {
		out = append(out, TitleJSON{Name: t.Name, SizeBytes: t.SizeBytes, BitrateMbps: t.BitrateMbps})
	}
	writeJSON(w, http.StatusOK, out)
}

// handleHolders lists the servers holding a title (full access).
func (m *Module) handleHolders(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	holders, err := m.cfg.DB.Catalog().Holders(name)
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, holders)
}

// RequestJSON is the body of POST /request: the user (identified by home
// server, the paper's by-IP resolution done upstream) asks for a title.
type RequestJSON struct {
	Home  topology.NodeID `json:"home"`
	Title string          `json:"title"`
}

// DecisionJSON is the VRA's answer.
type DecisionJSON struct {
	Server topology.NodeID   `json:"server"`
	Path   []topology.NodeID `json:"path"`
	Cost   float64           `json:"cost"`
	Local  bool              `json:"local"`
}

func decisionJSON(d core.Decision) DecisionJSON {
	return DecisionJSON{
		Server: d.Server,
		Path:   append([]topology.NodeID(nil), d.Path.Nodes...),
		Cost:   d.Cost,
		Local:  d.Local,
	}
}

// handleRequest runs the VRA for one request (full access) — the
// application the paper describes running "each time the user places a
// request".
func (m *Module) handleRequest(w http.ResponseWriter, r *http.Request) {
	var req RequestJSON
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if req.Home == "" || req.Title == "" {
		writeError(w, http.StatusBadRequest, "need home and title")
		return
	}
	dec, err := m.cfg.Planner.Plan(req.Home, req.Title)
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, decisionJSON(dec))
	case errors.Is(err, core.ErrNoCandidates), errors.Is(err, core.ErrNoReachable):
		writeError(w, http.StatusConflict, err.Error())
	case errors.Is(err, routing.ErrUnknownNode), errors.Is(err, topology.ErrNodeUnknown):
		writeError(w, http.StatusBadRequest, err.Error())
	default:
		writeError(w, http.StatusNotFound, err.Error())
	}
}

// ServerJSON is one registered server (limited access).
type ServerJSON struct {
	Node         topology.NodeID `json:"node"`
	Description  string          `json:"description"`
	RegisteredAt time.Time       `json:"registeredAt"`
}

func (m *Module) handleServers(w http.ResponseWriter, r *http.Request) {
	entries := m.cfg.DB.Servers()
	out := make([]ServerJSON, 0, len(entries))
	for _, e := range entries {
		out = append(out, ServerJSON{Node: e.Node, Description: e.Description, RegisteredAt: e.RegisteredAt})
	}
	writeJSON(w, http.StatusOK, out)
}

// LinkJSON is one link's configuration and latest statistics (limited
// access).
type LinkJSON struct {
	ID           topology.LinkID `json:"id"`
	A            topology.NodeID `json:"a"`
	B            topology.NodeID `json:"b"`
	CapacityMbps float64         `json:"capacityMbps"`
	UsedMbps     float64         `json:"usedMbps"`
	Utilization  float64         `json:"utilization"`
	UpdatedAt    *time.Time      `json:"updatedAt,omitempty"`
}

func (m *Module) handleLinks(w http.ResponseWriter, r *http.Request) {
	g := m.cfg.DB.Graph()
	out := make([]LinkJSON, 0, g.NumLinks())
	for _, l := range g.Links() {
		row := LinkJSON{ID: l.ID, A: l.A, B: l.B, CapacityMbps: l.CapacityMbps}
		if s, err := m.cfg.DB.LinkStats(l.ID); err == nil {
			row.UsedMbps = s.UsedMbps
			row.Utilization = s.Utilization
			at := s.UpdatedAt
			row.UpdatedAt = &at
		}
		out = append(out, row)
	}
	writeJSON(w, http.StatusOK, out)
}

// handleUpdateLink lets an administrator insert a link measurement manually
// (the paper: "Network information can be inserted by the administrators and
// local scripts").
func (m *Module) handleUpdateLink(w http.ResponseWriter, r *http.Request) {
	id := topology.LinkID(r.PathValue("id"))
	usedStr := r.URL.Query().Get("usedMbps")
	used, err := strconv.ParseFloat(usedStr, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad usedMbps: "+usedStr)
		return
	}
	if err := m.cfg.DB.UpsertLinkStats(id, used, m.cfg.Clock.Now()); err != nil {
		if errors.Is(err, topology.ErrLinkUnknown) {
			writeError(w, http.StatusNotFound, err.Error())
			return
		}
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// TopologyJSON describes the overlay (limited access).
type TopologyJSON struct {
	Nodes []topology.NodeID `json:"nodes"`
	Links []LinkJSON        `json:"links"`
}

func (m *Module) handleTopology(w http.ResponseWriter, r *http.Request) {
	g := m.cfg.DB.Graph()
	out := TopologyJSON{Nodes: g.Nodes()}
	for _, l := range g.Links() {
		out.Links = append(out.Links, LinkJSON{ID: l.ID, A: l.A, B: l.B, CapacityMbps: l.CapacityMbps})
	}
	writeJSON(w, http.StatusOK, out)
}

// handleMetrics dumps every video server's metric snapshot (limited
// access).
func (m *Module) handleMetrics(w http.ResponseWriter, r *http.Request) {
	out := map[topology.NodeID]metrics.Snapshot{}
	if m.cfg.Metrics != nil {
		out = m.cfg.Metrics()
	}
	writeJSON(w, http.StatusOK, out)
}

// handlePrometheus exposes the same per-server registries in the Prometheus
// text format, one labeled sample set per node — including the admission
// admitted/queued/degraded/rejected counters when brokers share the server
// registries. Scrape endpoints are conventionally unauthenticated, matching
// the full-access module.
func (m *Module) handlePrometheus(w http.ResponseWriter, r *http.Request) {
	snaps := map[string]metrics.Snapshot{}
	if m.cfg.Metrics != nil {
		for node, snap := range m.cfg.Metrics() {
			snaps[string(node)] = snap
		}
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_ = metrics.WritePrometheus(w, snaps)
}

// RouteDescription renders a decision path the way the paper writes routes.
func RouteDescription(d DecisionJSON) string {
	if d.Local {
		return fmt.Sprintf("serve locally at %s", d.Server)
	}
	parts := make([]string, len(d.Path))
	for i, n := range d.Path {
		parts[i] = string(n)
	}
	return fmt.Sprintf("download from %s via %s (cost %.4f)",
		d.Server, strings.Join(parts, ","), d.Cost)
}
