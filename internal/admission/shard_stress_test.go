package admission

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"dvod/internal/topology"
)

// stressGraph builds a hub-and-spoke topology with n spoke links, returning
// the graph and its link IDs — enough distinct links that shard locks
// actually spread.
func stressGraph(t *testing.T, n int) (*topology.Graph, []topology.LinkID) {
	t.Helper()
	g := topology.NewGraph()
	if err := g.AddNode("hub"); err != nil {
		t.Fatal(err)
	}
	links := make([]topology.LinkID, 0, n)
	for i := 0; i < n; i++ {
		node := topology.NodeID(fmt.Sprintf("s%02d", i))
		if err := g.AddNode(node); err != nil {
			t.Fatal(err)
		}
		id, err := g.AddLink("hub", node, 10_000)
		if err != nil {
			t.Fatal(err)
		}
		links = append(links, id)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g, links
}

// TestShardedAdmitReleaseStress drives concurrent watch setup/teardown
// through every shard count and checks the cross-shard invariants the
// sharding must preserve: the committed total never exceeds capacity, the
// session count never exceeds the cap, and after every grant is released the
// broker drains back to exactly zero (no leaked bandwidth, sessions, or
// link reservations).
func TestShardedAdmitReleaseStress(t *testing.T) {
	g, links := stressGraph(t, 32)
	snap, err := topology.NewSnapshot(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, 8} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			const (
				workers  = 8
				rounds   = 300
				capacity = 1 << 20 // wide open: exercise churn, not rejection
			)
			b, err := New(Config{
				Node:         "hub",
				CapacityMbps: capacity,
				MaxSessions:  workers * 4,
				Shards:       shards,
				Snapshot:     func() (*topology.Snapshot, error) { return snap, nil },
			})
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			var violations atomic.Int64
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(w)))
					var held []*Grant
					for i := 0; i < rounds; i++ {
						route := []topology.LinkID{
							links[rng.Intn(len(links))],
							links[rng.Intn(len(links))],
						}
						if route[0] == route[1] {
							route = route[:1]
						}
						g, err := b.Admit(Request{
							Class:       Premium,
							BitrateMbps: 1 + rng.Float64()*4,
							Links:       route,
						})
						if err != nil {
							var rej *RejectedError
							if !errors.As(err, &rej) {
								t.Errorf("unexpected error: %v", err)
								return
							}
							continue
						}
						if c := b.CommittedMbps(); c > capacity {
							violations.Add(1)
						}
						if s := b.Sessions(); s > b.MaxSessions() {
							violations.Add(1)
						}
						held = append(held, g)
						// Occasionally migrate, occasionally release an old
						// grant, so setup/teardown/migration interleave.
						switch rng.Intn(4) {
						case 0:
							b.Migrate(g, []topology.LinkID{links[rng.Intn(len(links))]})
						case 1, 2:
							if len(held) > 0 {
								idx := rng.Intn(len(held))
								b.Release(held[idx])
								held = append(held[:idx], held[idx+1:]...)
							}
						}
					}
					for _, g := range held {
						b.Release(g)
					}
				}(w)
			}
			wg.Wait()
			if v := violations.Load(); v > 0 {
				t.Fatalf("%d cap violations observed mid-flight", v)
			}
			if c := b.CommittedMbps(); c != 0 {
				t.Fatalf("leaked committed bandwidth: %g Mbps", c)
			}
			if s := b.Sessions(); s != 0 {
				t.Fatalf("leaked sessions: %d", s)
			}
			if res := b.LinkReservations(); len(res) != 0 {
				t.Fatalf("leaked link reservations: %v", res)
			}
		})
	}
}

// TestShardedSharedGroupStress races shared-group attach, first-admit, and
// release across goroutines on a handful of keys, then checks the group
// reservations fully drain — the ordering invariant between broker grants
// and group teardown that AdmitWaitShared must keep under concurrency.
func TestShardedSharedGroupStress(t *testing.T) {
	const (
		workers = 8
		rounds  = 200
	)
	b, err := New(Config{
		Node:         "hub",
		CapacityMbps: 1 << 20,
		MaxSessions:  workers * rounds,
		Shards:       4,
	})
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{"cohort:a", "cohort:b", "cohort:c"}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < rounds; i++ {
				g, err := b.AdmitWaitShared(Request{
					Class:       Standard,
					BitrateMbps: 2,
				}, keys[rng.Intn(len(keys))])
				if err != nil {
					t.Errorf("shared admit: %v", err)
					return
				}
				b.Release(g)
			}
		}(w)
	}
	wg.Wait()
	if c := b.CommittedMbps(); c != 0 {
		t.Fatalf("leaked shared bandwidth: %g Mbps", c)
	}
	if s := b.Sessions(); s != 0 {
		t.Fatalf("leaked sessions: %d", s)
	}
}

// TestSessionCapUnderConcurrency hammers a tiny session cap from many
// goroutines: the CAS-bounded slot counter must never let the concurrent
// session count exceed the cap, even transiently.
func TestSessionCapUnderConcurrency(t *testing.T) {
	const cap = 4
	b, err := New(Config{Node: "hub", CapacityMbps: 1000, MaxSessions: cap, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var peak atomic.Int64
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				g, err := b.Admit(Request{Class: Premium, BitrateMbps: 1})
				if err != nil {
					continue
				}
				if s := int64(b.Sessions()); s > peak.Load() {
					peak.Store(s)
				}
				b.Release(g)
			}
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > cap {
		t.Fatalf("session count peaked at %d, cap %d", p, cap)
	}
	if s := b.Sessions(); s != 0 {
		t.Fatalf("leaked sessions: %d", s)
	}
}
