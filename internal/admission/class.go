// Package admission implements per-server admission control and class-aware
// bandwidth management — the control-plane layer the paper leaves to "best
// effort". Each video server runs a bandwidth Broker that tracks committed
// megabits per node and per emulated link, limits the session setup rate with
// a token bucket, and applies a per-user-class policy: premium sessions may
// commit the whole node capacity, while lower classes are capped below it
// (trunk reservation), queue briefly for freed capacity, and fall back to a
// reduced bitrate before being rejected outright. The design follows the
// class-based bandwidth management literature on distributed VoD (see
// PAPERS.md): admission plus reservation is what keeps a saturated plant
// degrading gracefully instead of uniformly.
package admission

import (
	"fmt"
	"sort"
	"time"
)

// Class is a user service class.
type Class string

// The built-in service classes, best first.
const (
	// Premium sessions are never degraded and may use the full node
	// capacity.
	Premium Class = "premium"
	// Standard sessions accept one degradation step and are capped just
	// below full capacity, keeping headroom for premium arrivals.
	Standard Class = "standard"
	// Background sessions (prefetch, bulk replication, free tier) degrade
	// aggressively and may only use a fraction of the node.
	Background Class = "background"
)

// Classes lists the built-in classes, best first.
func Classes() []Class { return []Class{Premium, Standard, Background} }

// ParseClass maps a wire/flag string to a Class. The empty string means
// Standard, so class-unaware clients keep working.
func ParseClass(s string) (Class, error) {
	switch Class(s) {
	case "":
		return Standard, nil
	case Premium, Standard, Background:
		return Class(s), nil
	default:
		return "", fmt.Errorf("admission: unknown class %q", s)
	}
}

// Policy is one class's admission rules.
type Policy struct {
	// Priority orders classes; lower is better. Used for reporting only —
	// capacity protection comes from MaxShare.
	Priority int
	// MaxShare caps the node's total committed bandwidth (across all
	// classes) that an admission of this class may push it to, as a
	// fraction of capacity. Trunk reservation: a class with MaxShare 0.5
	// cannot commit the node past 50%, leaving the rest to better classes.
	MaxShare float64
	// DegradeSteps are bitrate multipliers tried in order when the full
	// rate does not fit (e.g. {0.75, 0.5}). Empty means never degrade.
	DegradeSteps []float64
	// QueueWindow is how long AdmitWait may hold a request waiting for
	// capacity or a rate token before rejecting it. Zero means reject
	// immediately.
	QueueWindow time.Duration
}

// DefaultPolicies returns the built-in three-class policy set.
func DefaultPolicies() map[Class]Policy {
	return map[Class]Policy{
		Premium: {
			Priority:    0,
			MaxShare:    1.0,
			QueueWindow: 2 * time.Second,
		},
		Standard: {
			Priority:     1,
			MaxShare:     0.85,
			DegradeSteps: []float64{0.75},
			QueueWindow:  time.Second,
		},
		Background: {
			Priority:     2,
			MaxShare:     0.5,
			DegradeSteps: []float64{0.75, 0.5},
			QueueWindow:  0,
		},
	}
}

// CalibratedLinkShare scales a class's MaxShare to one link's capacity: on a
// trunk where a single session is a large fraction of the pipe, a flat share
// under-protects better classes — a standard admission on a 2 Mbps link with
// share 0.85 can commit 1.7 Mbps and leave no room for a premium session at
// all. The calibrated share keeps at least one full-rate session of headroom:
//
//	calibrated = min(share, 1 − bitrate/capacity), clamped to ≥ 0
//
// A share of 1 (premium) is never reduced — the class entitled to the whole
// pipe must still fit on it. Wide backbone links are unaffected because
// bitrate/capacity is tiny there.
func CalibratedLinkShare(share, capacityMbps, bitrateMbps float64) float64 {
	if share >= 1 || capacityMbps <= 0 || bitrateMbps <= 0 {
		return share
	}
	cal := 1 - bitrateMbps/capacityMbps
	if cal < 0 {
		cal = 0
	}
	if cal < share {
		return cal
	}
	return share
}

func validatePolicies(ps map[Class]Policy) error {
	if len(ps) == 0 {
		return fmt.Errorf("admission: no class policies")
	}
	for c, p := range ps {
		if p.MaxShare <= 0 || p.MaxShare > 1 {
			return fmt.Errorf("admission: class %s MaxShare %g outside (0, 1]", c, p.MaxShare)
		}
		for _, f := range p.DegradeSteps {
			if f <= 0 || f >= 1 {
				return fmt.Errorf("admission: class %s degrade step %g outside (0, 1)", c, f)
			}
		}
		if p.QueueWindow < 0 {
			return fmt.Errorf("admission: class %s negative queue window", c)
		}
	}
	return nil
}

// sortedClasses returns the configured classes by priority then name, for
// deterministic reports.
func sortedClasses(ps map[Class]Policy) []Class {
	out := make([]Class, 0, len(ps))
	for c := range ps {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if ps[out[i]].Priority != ps[out[j]].Priority {
			return ps[out[i]].Priority < ps[out[j]].Priority
		}
		return out[i] < out[j]
	})
	return out
}
