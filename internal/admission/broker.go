package admission

import (
	"errors"
	"fmt"
	"sync"

	"dvod/internal/clock"
	"dvod/internal/ledger"
	"dvod/internal/metrics"
	"dvod/internal/topology"
)

// Reason labels why a request was refused.
type Reason string

// Rejection reasons.
const (
	// ReasonSessions: the concurrent-session cap is reached.
	ReasonSessions Reason = "sessions"
	// ReasonRate: the session-setup token bucket is empty.
	ReasonRate Reason = "rate"
	// ReasonCapacity: the node cannot commit the bitrate within the
	// class's share, even after every allowed degradation step.
	ReasonCapacity Reason = "capacity"
	// ReasonLink: a link on the session's route lacks residual headroom.
	ReasonLink Reason = "link"
	// ReasonClass: the request names an unconfigured class.
	ReasonClass Reason = "class"
)

// ErrRejected is the sentinel all admission rejections wrap.
var ErrRejected = errors.New("admission rejected")

// RejectedError reports one refused request with enough detail for a typed
// wire response.
type RejectedError struct {
	Class      Class
	Reason     Reason
	NeededMbps float64
	// FreeMbps is the bandwidth that was available to the class when the
	// request was refused (meaningful for capacity/link rejections).
	FreeMbps float64
}

// Error implements error.
func (e *RejectedError) Error() string {
	switch e.Reason {
	case ReasonCapacity, ReasonLink:
		return fmt.Sprintf("admission rejected (%s, class %s): need %.3f Mbps, %.3f free",
			e.Reason, e.Class, e.NeededMbps, e.FreeMbps)
	default:
		return fmt.Sprintf("admission rejected (%s, class %s)", e.Reason, e.Class)
	}
}

// Unwrap lets errors.Is match ErrRejected.
func (e *RejectedError) Unwrap() error { return ErrRejected }

// Request asks the broker to admit one session.
type Request struct {
	// Class is the user class; zero value means Standard.
	Class Class
	// Title names the requested video (reporting only).
	Title string
	// BitrateMbps is the title's full playback rate.
	BitrateMbps float64
	// Links are the emulated links the session's route will traverse
	// (empty for local service). The broker reserves the granted bitrate
	// on each.
	Links []topology.LinkID
}

// Grant is one admitted session's reservation. Callers must Release it when
// the session ends.
type Grant struct {
	id    int64
	Class Class
	Title string
	// BitrateMbps is the admitted rate — below the requested rate when
	// Degraded.
	BitrateMbps float64
	Degraded    bool
	links       []topology.LinkID
	// shareKey is non-empty for sessions admitted through AdmitWaitShared:
	// the node/link bandwidth is owned by the shared group, not this grant.
	shareKey string
	released bool
}

// Shared reports whether the grant rides a shared admission group (its
// bandwidth is committed once for the whole group, not per session).
func (g *Grant) Shared() bool { return g.shareKey != "" }

// Links returns a copy of the emulated links this grant holds reservations
// on (empty for shared grants — the group owns those).
func (g *Grant) Links() []topology.LinkID {
	return append([]topology.LinkID(nil), g.links...)
}

// sharedGroup is one stream-merging cohort's single bandwidth reservation.
// The first session through AdmitWaitShared commits rate and links; later
// sessions with the same key attach for free and the reservation is returned
// when the last member releases.
type sharedGroup struct {
	rate     float64
	degraded bool
	links    []topology.LinkID
	count    int
	// class is the first admitter's class — the class the group's ledger
	// reservation was written under, which may differ from the class of the
	// member that happens to leave last.
	class Class
}

// Config assembles a Broker.
type Config struct {
	// Node names the server this broker protects (reporting only).
	Node topology.NodeID
	// CapacityMbps is the node's deliverable bandwidth; committed session
	// bitrates may never exceed it.
	CapacityMbps float64
	// MaxSessions caps concurrent admitted sessions; zero defaults to 64.
	MaxSessions int
	// SessionsPerSec rate-limits session setup through a token bucket;
	// zero disables the bucket. SessionBurst defaults to max(1, rate).
	SessionsPerSec float64
	SessionBurst   int
	// Classes maps each served class to its policy; nil uses
	// DefaultPolicies().
	Classes map[Class]Policy
	// Snapshot optionally supplies the live network view used to check
	// residual headroom on the request's links (the SNMP-fed view the VRA
	// also reads). Nil skips link checks.
	Snapshot func() (*topology.Snapshot, error)
	// Ledger optionally shares this broker's link reservations with every
	// other server (and folds theirs in): when set, link headroom checks
	// subtract the other origins' gossip-replicated reservations, and every
	// grant/release/migration is mirrored into the ledger. Nil keeps the
	// broker purely per-server.
	Ledger *ledger.Ledger
	// Clock drives the token bucket and queue deadlines; nil is wall time.
	Clock clock.Clock
	// Metrics receives per-class admitted/degraded/queued/rejected
	// counters and committed-bandwidth gauges; nil allocates a private
	// registry.
	Metrics *metrics.Registry
}

// ClassCounts is one class's admission tally.
type ClassCounts struct {
	Admitted int64 `json:"admitted"`
	Degraded int64 `json:"degraded"`
	Queued   int64 `json:"queued"`
	Rejected int64 `json:"rejected"`
}

// Broker is a per-server bandwidth broker. All methods are safe for
// concurrent use.
type Broker struct {
	cfg Config

	mu        sync.Mutex
	committed float64 // Mbps committed across all sessions
	sessions  int
	perLink   map[topology.LinkID]float64
	bucket    *tokenBucket
	counts    map[Class]*ClassCounts
	shared    map[string]*sharedGroup
	nextID    int64
	// changed is closed and replaced whenever capacity may have freed, so
	// queued AdmitWait calls re-check.
	changed chan struct{}
}

// New validates the configuration and builds a broker.
func New(cfg Config) (*Broker, error) {
	if cfg.CapacityMbps <= 0 {
		return nil, fmt.Errorf("admission: non-positive capacity %g", cfg.CapacityMbps)
	}
	if cfg.MaxSessions < 0 {
		return nil, fmt.Errorf("admission: negative session cap %d", cfg.MaxSessions)
	}
	if cfg.MaxSessions == 0 {
		cfg.MaxSessions = 64
	}
	if cfg.Classes == nil {
		cfg.Classes = DefaultPolicies()
	}
	if err := validatePolicies(cfg.Classes); err != nil {
		return nil, err
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Wall{}
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	b := &Broker{
		cfg:     cfg,
		perLink: make(map[topology.LinkID]float64),
		bucket:  newTokenBucket(cfg.SessionsPerSec, cfg.SessionBurst, cfg.Clock.Now()),
		counts:  make(map[Class]*ClassCounts, len(cfg.Classes)),
		shared:  make(map[string]*sharedGroup),
		changed: make(chan struct{}),
	}
	for c := range cfg.Classes {
		b.counts[c] = &ClassCounts{}
	}
	return b, nil
}

// Node returns the protected node.
func (b *Broker) Node() topology.NodeID { return b.cfg.Node }

// CapacityMbps returns the configured node capacity.
func (b *Broker) CapacityMbps() float64 { return b.cfg.CapacityMbps }

// MaxSessions returns the concurrent-session cap.
func (b *Broker) MaxSessions() int { return b.cfg.MaxSessions }

// CommittedMbps returns the bandwidth currently committed to sessions.
func (b *Broker) CommittedMbps() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.committed
}

// Sessions returns the number of admitted, unreleased sessions.
func (b *Broker) Sessions() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sessions
}

// LinkCommittedMbps returns the bandwidth committed on one emulated link.
// It has the signature core.Planner's committed-bandwidth hook expects.
func (b *Broker) LinkCommittedMbps(id topology.LinkID) float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.perLink[id]
}

// LinkReservations returns a copy of the broker's committed bandwidth per
// emulated link (the local half of what the ledger replicates).
func (b *Broker) LinkReservations() map[topology.LinkID]float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[topology.LinkID]float64, len(b.perLink))
	for id, v := range b.perLink {
		out[id] = v
	}
	return out
}

// Counts returns a copy of the per-class admission tallies.
func (b *Broker) Counts() map[Class]ClassCounts {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[Class]ClassCounts, len(b.counts))
	for c, v := range b.counts {
		out[c] = *v
	}
	return out
}

// Admit decides one request immediately: a Grant (possibly degraded) or a
// *RejectedError wrapping ErrRejected. It never queues.
func (b *Broker) Admit(req Request) (*Grant, error) {
	g, err := b.tryAdmit(req, true)
	if err != nil {
		b.account(req.Class, err, false)
		return nil, err
	}
	b.account(g.Class, nil, false)
	if g.Degraded {
		b.recordDegraded(g.Class)
	}
	return g, nil
}

// AdmitWait decides one request, waiting up to the class's QueueWindow for
// freed capacity or a rate token when the first attempt fails for a
// recoverable reason (sessions, rate, capacity). Link rejections do not
// queue: the route itself lacks headroom and a different replica should be
// tried instead.
func (b *Broker) AdmitWait(req Request) (*Grant, error) {
	class, _, err := b.policyFor(req.Class)
	if err != nil {
		b.account(class, err, false)
		return nil, err
	}
	req.Class = class
	pol := b.cfg.Classes[class]
	g, err := b.tryAdmit(req, true)
	if err == nil {
		b.account(class, nil, false)
		if g.Degraded {
			b.recordDegraded(class)
		}
		return g, nil
	}
	var rej *RejectedError
	if !errors.As(err, &rej) || rej.Reason == ReasonLink || rej.Reason == ReasonClass || pol.QueueWindow <= 0 {
		b.account(class, err, false)
		return nil, err
	}
	// Rate and sessions rejections happen before (or at) the bucket, so no
	// token was consumed and retries must still take one; capacity
	// rejections already spent this request's token.
	needToken := rej.Reason == ReasonRate || rej.Reason == ReasonSessions
	deadline := b.cfg.Clock.Now().Add(pol.QueueWindow)
	for {
		b.mu.Lock()
		wait := b.changed
		tokenIn := b.bucket.nextToken(b.cfg.Clock.Now())
		b.mu.Unlock()
		remaining := deadline.Sub(b.cfg.Clock.Now())
		if remaining <= 0 {
			b.account(class, err, true)
			return nil, err
		}
		pause := remaining
		if needToken && tokenIn > 0 && tokenIn < pause {
			pause = tokenIn
		}
		select {
		case <-wait:
		case <-b.cfg.Clock.After(pause):
		}
		g, err = b.tryAdmit(req, needToken)
		if err == nil {
			b.account(class, nil, true)
			if g.Degraded {
				b.recordDegraded(class)
			}
			return g, nil
		}
		if !errors.As(err, &rej) || rej.Reason == ReasonLink {
			b.account(class, err, true)
			return nil, err
		}
		if needToken && rej.Reason != ReasonRate && rej.Reason != ReasonSessions {
			needToken = false
		}
	}
}

// AdmitWaitShared admits one session into a shared admission group: the
// first session with a given key is admitted like AdmitWait and its rate and
// link reservations become the group's, later sessions with the same key
// attach to the live reservation committing no additional bandwidth (the
// delivery they share is already paid for — this is how stream-merging
// cohorts are accounted). Attaching still occupies a session slot but takes
// no setup token: joining a running stream does no new disk or route setup
// work, which is what the bucket protects. The reservation is returned when
// the last group member releases its grant. An empty key degenerates to
// AdmitWait.
func (b *Broker) AdmitWaitShared(req Request, key string) (*Grant, error) {
	if key == "" {
		return b.AdmitWait(req)
	}
	if g, done, err := b.tryAttach(req, key); done {
		return g, err
	}
	g, err := b.AdmitWait(req)
	if err != nil {
		return nil, err
	}
	b.mu.Lock()
	if grp, ok := b.shared[key]; ok {
		// Another first admitter won the race while we were queued: fold
		// this grant's separate reservation back and attach to the group.
		b.committed -= g.BitrateMbps
		if b.committed < 1e-9 {
			b.committed = 0
		}
		for _, id := range g.links {
			b.perLink[id] -= g.BitrateMbps
			if b.perLink[id] < 1e-9 {
				delete(b.perLink, id)
			}
		}
		if b.cfg.Ledger != nil && len(g.links) > 0 {
			b.cfg.Ledger.Release(g.links, string(g.Class), g.BitrateMbps)
		}
		grp.count++
		g.links = nil
		g.BitrateMbps = grp.rate
		g.Degraded = grp.degraded
		close(b.changed)
		b.changed = make(chan struct{})
	} else {
		b.shared[key] = &sharedGroup{
			rate:     g.BitrateMbps,
			degraded: g.Degraded,
			links:    g.links,
			count:    1,
			class:    g.Class,
		}
		g.links = nil // the group owns the link reservations now
	}
	g.shareKey = key
	b.publishGauges()
	b.mu.Unlock()
	return g, nil
}

// tryAttach joins a live shared group when one exists for key. done is false
// when there is no group and the caller must run full admission.
func (b *Broker) tryAttach(req Request, key string) (g *Grant, done bool, err error) {
	class, _, err := b.policyFor(req.Class)
	if err != nil {
		b.account(class, err, false)
		return nil, true, err
	}
	b.mu.Lock()
	grp, ok := b.shared[key]
	if !ok {
		b.mu.Unlock()
		return nil, false, nil
	}
	if b.sessions >= b.cfg.MaxSessions {
		b.mu.Unlock()
		err := &RejectedError{Class: class, Reason: ReasonSessions, NeededMbps: req.BitrateMbps}
		b.account(class, err, false)
		return nil, true, err
	}
	grp.count++
	b.sessions++
	g = &Grant{
		id:          b.nextID,
		Class:       class,
		Title:       req.Title,
		BitrateMbps: grp.rate,
		Degraded:    grp.degraded,
		shareKey:    key,
	}
	b.nextID++
	b.publishGauges()
	b.mu.Unlock()
	b.account(class, nil, false)
	if g.Degraded {
		b.recordDegraded(class)
	}
	return g, true, nil
}

// Release returns a grant's bandwidth and session slot. For shared grants
// the group's bandwidth and link reservations are returned only when the
// last member leaves. It is idempotent.
func (b *Broker) Release(g *Grant) {
	if g == nil {
		return
	}
	b.mu.Lock()
	if g.released {
		b.mu.Unlock()
		return
	}
	g.released = true
	b.sessions--
	rate, links, class := g.BitrateMbps, g.links, g.Class
	if g.shareKey != "" {
		rate, links = 0, nil
		if grp, ok := b.shared[g.shareKey]; ok {
			grp.count--
			if grp.count <= 0 {
				delete(b.shared, g.shareKey)
				rate, links, class = grp.rate, grp.links, grp.class
			}
		}
	}
	b.committed -= rate
	if b.committed < 1e-9 {
		b.committed = 0
	}
	for _, id := range links {
		b.perLink[id] -= rate
		if b.perLink[id] < 1e-9 {
			delete(b.perLink, id)
		}
	}
	if b.cfg.Ledger != nil && rate > 0 && len(links) > 0 {
		b.cfg.Ledger.Release(links, string(class), rate)
	}
	close(b.changed)
	b.changed = make(chan struct{})
	b.publishGauges()
	b.mu.Unlock()
}

// Migrate moves a live grant's link reservations to a new route — the
// mid-stream case where the VRA re-plans a session across a cluster boundary
// and the bandwidth must follow the stream. Shared grants are skipped (the
// group, not the member, owns the reservations), as are released grants and
// no-op moves. Returns whether a migration happened.
func (b *Broker) Migrate(g *Grant, newLinks []topology.LinkID) bool {
	if g == nil {
		return false
	}
	b.mu.Lock()
	if g.released || g.shareKey != "" || sameLinkSet(g.links, newLinks) {
		b.mu.Unlock()
		return false
	}
	rate, old := g.BitrateMbps, g.links
	for _, id := range old {
		b.perLink[id] -= rate
		if b.perLink[id] < 1e-9 {
			delete(b.perLink, id)
		}
	}
	g.links = append([]topology.LinkID(nil), newLinks...)
	for _, id := range g.links {
		b.perLink[id] += rate
	}
	if b.cfg.Ledger != nil {
		if len(old) > 0 {
			b.cfg.Ledger.Release(old, string(g.Class), rate)
		}
		if len(g.links) > 0 {
			b.cfg.Ledger.Reserve(g.links, string(g.Class), rate)
		}
	}
	b.cfg.Metrics.Counter("admission.migrations").Inc()
	// Old links freed headroom: wake queued admits.
	close(b.changed)
	b.changed = make(chan struct{})
	b.publishGauges()
	b.mu.Unlock()
	return true
}

// sameLinkSet reports whether two routes reserve the same link multiset.
func sameLinkSet(a, b []topology.LinkID) bool {
	if len(a) != len(b) {
		return false
	}
	counts := make(map[topology.LinkID]int, len(a))
	for _, id := range a {
		counts[id]++
	}
	for _, id := range b {
		counts[id]--
		if counts[id] < 0 {
			return false
		}
	}
	return true
}

// policyFor resolves the (possibly empty) wire class to a configured policy.
func (b *Broker) policyFor(c Class) (Class, Policy, error) {
	if c == "" {
		c = Standard
	}
	pol, ok := b.cfg.Classes[c]
	if !ok {
		return c, Policy{}, &RejectedError{Class: c, Reason: ReasonClass}
	}
	return c, pol, nil
}

// tryAdmit is one non-blocking admission attempt. takeToken is false when a
// queued retry has already consumed its token.
func (b *Broker) tryAdmit(req Request, takeToken bool) (*Grant, error) {
	class, pol, err := b.policyFor(req.Class)
	if err != nil {
		return nil, err
	}
	if req.BitrateMbps <= 0 {
		return nil, fmt.Errorf("admission: non-positive bitrate %g", req.BitrateMbps)
	}
	// Read the SNMP view outside the lock; it is immutable once built.
	var snap *topology.Snapshot
	if b.cfg.Snapshot != nil && len(req.Links) > 0 {
		if snap, err = b.cfg.Snapshot(); err != nil {
			return nil, fmt.Errorf("admission snapshot: %w", err)
		}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.sessions >= b.cfg.MaxSessions {
		return nil, &RejectedError{Class: class, Reason: ReasonSessions, NeededMbps: req.BitrateMbps}
	}
	if takeToken && !b.bucket.take(b.cfg.Clock.Now()) {
		return nil, &RejectedError{Class: class, Reason: ReasonRate, NeededMbps: req.BitrateMbps}
	}
	classCap := pol.MaxShare * b.cfg.CapacityMbps
	factors := append([]float64{1}, pol.DegradeSteps...)
	reason := ReasonCapacity
	free := classCap - b.committed
	for _, f := range factors {
		rate := req.BitrateMbps * f
		if b.committed+rate > classCap {
			continue
		}
		if snap != nil {
			if ok, linkFree := b.linksCarry(snap, req.Links, rate, pol.MaxShare, class); !ok {
				reason = ReasonLink
				if linkFree < free {
					free = linkFree
				}
				continue
			}
		}
		g := &Grant{
			id:          b.nextID,
			Class:       class,
			Title:       req.Title,
			BitrateMbps: rate,
			Degraded:    f < 1,
			links:       append([]topology.LinkID(nil), req.Links...),
		}
		b.nextID++
		b.sessions++
		b.committed += rate
		for _, id := range g.links {
			b.perLink[id] += rate
		}
		if b.cfg.Ledger != nil && len(g.links) > 0 {
			b.cfg.Ledger.Reserve(g.links, string(class), rate)
		}
		b.publishGauges()
		return g, nil
	}
	if free < 0 {
		free = 0
	}
	return nil, &RejectedError{Class: class, Reason: reason, NeededMbps: req.BitrateMbps, FreeMbps: free}
}

// linksCarry reports whether every link on the route can take the rate: it
// needs residual physical headroom (capacity − SNMP-observed use −
// broker-committed bandwidth) and must stay inside the class's
// per-link trunk reservation, CalibratedLinkShare of the link's capacity —
// on thin links the flat MaxShare is tightened so at least one full-rate
// session of a better class still fits. Observed use may already include
// committed sessions' traffic, so the check is conservative under load — the
// safe direction for admission. When a ledger is configured, the other
// servers' gossip-replicated reservations are subtracted too, so two brokers
// sharing a trunk cannot jointly oversubscribe it.
func (b *Broker) linksCarry(snap *topology.Snapshot, links []topology.LinkID, rate, share float64, class Class) (bool, float64) {
	minFree := 0.0
	first := true
	for _, id := range links {
		l, err := snap.Graph().LinkByID(id)
		if err != nil {
			return false, 0
		}
		committed := b.perLink[id]
		classCommitted := committed
		if b.cfg.Ledger != nil {
			committed += b.cfg.Ledger.RemoteReservedMbps(id)
			classCommitted += b.cfg.Ledger.RemoteClassReservedMbps(id, string(class))
		}
		freeMbps := l.CapacityMbps*(1-snap.Utilization(id)) - committed
		classFree := CalibratedLinkShare(share, l.CapacityMbps, rate)*l.CapacityMbps - classCommitted
		if classFree < freeMbps {
			freeMbps = classFree
		}
		if freeMbps < 0 {
			freeMbps = 0
		}
		if first || freeMbps < minFree {
			minFree = freeMbps
			first = false
		}
	}
	return minFree >= rate, minFree
}

// account updates counters after a final admission outcome.
func (b *Broker) account(class Class, err error, waited bool) {
	if class == "" {
		class = Standard
	}
	b.mu.Lock()
	cc := b.counts[class]
	if cc == nil {
		cc = &ClassCounts{}
		b.counts[class] = cc
	}
	if waited {
		cc.Queued++
		b.cfg.Metrics.Counter("admission.queued." + string(class)).Inc()
	}
	switch {
	case err == nil:
		cc.Admitted++
		b.cfg.Metrics.Counter("admission.admitted." + string(class)).Inc()
	default:
		cc.Rejected++
		b.cfg.Metrics.Counter("admission.rejected." + string(class)).Inc()
	}
	b.mu.Unlock()
}

// recordDegraded bumps the degraded tally for grants handed out below the
// requested rate. tryAdmit cannot do it itself (account runs later), so the
// admit paths call this after a degraded grant.
func (b *Broker) recordDegraded(class Class) {
	b.mu.Lock()
	if cc := b.counts[class]; cc != nil {
		cc.Degraded++
	}
	b.mu.Unlock()
	b.cfg.Metrics.Counter("admission.degraded." + string(class)).Inc()
}

// publishGauges refreshes the committed/session gauges; callers hold b.mu.
func (b *Broker) publishGauges() {
	b.cfg.Metrics.Gauge("admission.committed_mbps").Set(b.committed)
	b.cfg.Metrics.Gauge("admission.sessions").Set(float64(b.sessions))
}
