package admission

import (
	"errors"
	"fmt"
	"hash/maphash"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"dvod/internal/clock"
	"dvod/internal/ledger"
	"dvod/internal/metrics"
	"dvod/internal/topology"
)

// Reason labels why a request was refused. Reason values are immutable.
type Reason string

// Rejection reasons.
const (
	// ReasonSessions: the concurrent-session cap is reached.
	ReasonSessions Reason = "sessions"
	// ReasonRate: the session-setup token bucket is empty.
	ReasonRate Reason = "rate"
	// ReasonCapacity: the node cannot commit the bitrate within the
	// class's share, even after every allowed degradation step.
	ReasonCapacity Reason = "capacity"
	// ReasonLink: a link on the session's route lacks residual headroom.
	ReasonLink Reason = "link"
	// ReasonClass: the request names an unconfigured class.
	ReasonClass Reason = "class"
)

// ErrRejected is the sentinel all admission rejections wrap.
var ErrRejected = errors.New("admission rejected")

// DefaultShards is the link/shared-group shard count New uses when
// Config.Shards is zero. Shards bound lock contention on the reservation
// maps; node-level aggregates are atomics at any count.
const DefaultShards = 8

// linkSeed keys the link- and share-key hash shard functions.
var linkSeed = maphash.MakeSeed()

// RejectedError reports one refused request with enough detail for a typed
// wire response. RejectedError values are immutable once returned.
type RejectedError struct {
	Class      Class
	Reason     Reason
	NeededMbps float64
	// FreeMbps is the bandwidth that was available to the class when the
	// request was refused (meaningful for capacity/link rejections).
	FreeMbps float64
}

// Error implements error.
func (e *RejectedError) Error() string {
	switch e.Reason {
	case ReasonCapacity, ReasonLink:
		return fmt.Sprintf("admission rejected (%s, class %s): need %.3f Mbps, %.3f free",
			e.Reason, e.Class, e.NeededMbps, e.FreeMbps)
	default:
		return fmt.Sprintf("admission rejected (%s, class %s)", e.Reason, e.Class)
	}
}

// Unwrap lets errors.Is match ErrRejected.
func (e *RejectedError) Unwrap() error { return ErrRejected }

// Request asks the broker to admit one session. Request values are read-only
// to the broker.
type Request struct {
	// Class is the user class; zero value means Standard.
	Class Class
	// Title names the requested video (reporting only).
	Title string
	// BitrateMbps is the title's full playback rate.
	BitrateMbps float64
	// Links are the emulated links the session's route will traverse
	// (empty for local service). The broker reserves the granted bitrate
	// on each.
	Links []topology.LinkID
}

// Grant is one admitted session's reservation. Callers must Release it when
// the session ends. Release and Migrate may be called concurrently (a
// per-grant lock serializes them); the exported fields are written only
// before the grant is returned and must be treated as read-only by callers.
type Grant struct {
	id    int64
	Class Class
	Title string
	// BitrateMbps is the admitted rate — below the requested rate when
	// Degraded.
	BitrateMbps float64
	Degraded    bool
	// mu guards released and links against a Release racing a Migrate.
	mu    sync.Mutex
	links []topology.LinkID
	// shareKey is non-empty for sessions admitted through AdmitWaitShared:
	// the node/link bandwidth is owned by the shared group, not this grant.
	shareKey string
	released bool
}

// Shared reports whether the grant rides a shared admission group (its
// bandwidth is committed once for the whole group, not per session). Safe
// for concurrent use (shareKey is immutable after the grant is returned).
func (g *Grant) Shared() bool { return g.shareKey != "" }

// Links returns a copy of the emulated links this grant holds reservations
// on (empty for shared grants — the group owns those). Safe for concurrent
// use with Release/Migrate.
func (g *Grant) Links() []topology.LinkID {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]topology.LinkID(nil), g.links...)
}

// sharedGroup is one stream-merging cohort's single bandwidth reservation.
// The first session through AdmitWaitShared commits rate and links; later
// sessions with the same key attach for free and the reservation is returned
// when the last member releases. Fields are guarded by the owning shared
// shard's lock.
type sharedGroup struct {
	rate     float64
	degraded bool
	links    []topology.LinkID
	count    int
	// class is the first admitter's class — the class the group's ledger
	// reservation was written under, which may differ from the class of the
	// member that happens to leave last.
	class Class
}

// Config assembles a Broker. Config is read-only after New.
type Config struct {
	// Node names the server this broker protects (reporting only).
	Node topology.NodeID
	// CapacityMbps is the node's deliverable bandwidth; committed session
	// bitrates may never exceed it.
	CapacityMbps float64
	// MaxSessions caps concurrent admitted sessions; zero defaults to 64.
	MaxSessions int
	// SessionsPerSec rate-limits session setup through a token bucket;
	// zero disables the bucket. SessionBurst defaults to max(1, rate).
	SessionsPerSec float64
	SessionBurst   int
	// Shards is the link-reservation and shared-group shard count; zero
	// defaults to DefaultShards. More shards reduce lock contention on the
	// per-link reservation maps under concurrent watch setup/teardown.
	Shards int
	// Classes maps each served class to its policy; nil uses
	// DefaultPolicies().
	Classes map[Class]Policy
	// Snapshot optionally supplies the live network view used to check
	// residual headroom on the request's links (the SNMP-fed view the VRA
	// also reads). Nil skips link checks. The hook must be safe for
	// concurrent use (db.DB.Snapshot is: it is a lock-free atomic load).
	Snapshot func() (*topology.Snapshot, error)
	// Ledger optionally shares this broker's link reservations with every
	// other server (and folds theirs in): when set, link headroom checks
	// subtract the other origins' gossip-replicated reservations, and every
	// grant/release/migration is mirrored into the ledger — always after
	// the local shard state has been updated, so a concurrent reader sees
	// the local reservation at least as early as the gossiped one (the
	// conservative direction). Nil keeps the broker purely per-server.
	Ledger *ledger.Ledger
	// Clock drives the token bucket and queue deadlines; nil is wall time.
	Clock clock.Clock
	// Metrics receives per-class admitted/degraded/queued/rejected
	// counters and committed-bandwidth gauges; nil allocates a private
	// registry.
	Metrics *metrics.Registry
}

// ClassCounts is one class's admission tally — an immutable snapshot
// returned by Counts.
type ClassCounts struct {
	Admitted int64 `json:"admitted"`
	Degraded int64 `json:"degraded"`
	Queued   int64 `json:"queued"`
	Rejected int64 `json:"rejected"`
}

// classTally is the live, atomically updated form of ClassCounts, with the
// per-class metric counters cached so the hot path never takes the metrics
// registry lock.
type classTally struct {
	admitted, degraded, queued, rejected     atomic.Int64
	mAdmitted, mDegraded, mQueued, mRejected *metrics.Counter
}

// linkShard is one link-hashed slice of the per-link reservation map. mu
// guards the map; at most one link shard lock is ever held at a time, so
// shard locks cannot deadlock among themselves.
type linkShard struct {
	mu       sync.Mutex
	reserved map[topology.LinkID]float64
}

// sharedShard is one key-hashed slice of the shared-group table. Lock order:
// a shared shard lock may be taken before link shard locks, never after.
type sharedShard struct {
	mu     sync.Mutex
	groups map[string]*sharedGroup
}

// atomicMbps is a float64 bandwidth aggregate updated with CAS loops, so the
// node-level committed total needs no lock.
type atomicMbps struct{ bits atomic.Uint64 }

func (a *atomicMbps) load() float64 { return math.Float64frombits(a.bits.Load()) }

// add applies delta; negative results within float slop clamp to zero, like
// the epsilon the pre-sharded broker used.
func (a *atomicMbps) add(delta float64) {
	for {
		old := a.bits.Load()
		next := math.Float64frombits(old) + delta
		if delta < 0 && next < 1e-9 {
			next = 0
		}
		if a.bits.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// tryAddBounded adds delta only if the result stays at or below bound,
// reporting success. This is the lock-free form of "check capacity, then
// commit" — the CAS makes the check and the commit one atomic step.
func (a *atomicMbps) tryAddBounded(delta, bound float64) bool {
	for {
		old := a.bits.Load()
		next := math.Float64frombits(old) + delta
		if next > bound {
			return false
		}
		if a.bits.CompareAndSwap(old, math.Float64bits(next)) {
			return true
		}
	}
}

// Broker is a per-server bandwidth broker. All methods are safe for
// concurrent use.
//
// # Concurrency model
//
// There is no broker-wide mutex. Node-level aggregates (committed Mbps,
// session count, grant IDs) are atomics with CAS-bounded updates; per-link
// reservations and shared groups live in hash shards with per-shard locks;
// the token bucket and the queue-wakeup channel each sit behind their own
// small mutex. Admission is optimistic: a request takes its session slot and
// committed bandwidth with bounded CAS steps, then reserves its links one
// shard at a time, rolling everything back if any step refuses. Transient
// holds from a request that later rolls back can only make a concurrent
// admission more conservative, never oversubscribe, and every rollback
// signals queued AdmitWait callers to re-check. See DESIGN.md "Concurrency
// model & sharding" for the invariants and lock order.
type Broker struct {
	cfg Config

	committed atomicMbps   // Mbps committed across all sessions
	sessions  atomic.Int64 // admitted, unreleased sessions
	nextID    atomic.Int64

	links  []*linkShard
	shared []*sharedShard

	bucketMu sync.Mutex
	bucket   *tokenBucket

	// counts maps Class → *classTally; configured classes are preloaded,
	// unknown rejected classes are added on first account.
	counts sync.Map

	// waitMu guards changed, which is closed and replaced whenever capacity
	// may have freed, so queued AdmitWait calls re-check.
	waitMu  sync.Mutex
	changed chan struct{}

	// Cached gauge handles so the grant/release paths never take the
	// metrics registry lock.
	gCommitted, gSessions *metrics.Gauge
	cMigrations           *metrics.Counter
}

// New validates the configuration and builds a broker.
func New(cfg Config) (*Broker, error) {
	if cfg.CapacityMbps <= 0 {
		return nil, fmt.Errorf("admission: non-positive capacity %g", cfg.CapacityMbps)
	}
	if cfg.MaxSessions < 0 {
		return nil, fmt.Errorf("admission: negative session cap %d", cfg.MaxSessions)
	}
	if cfg.MaxSessions == 0 {
		cfg.MaxSessions = 64
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("admission: negative shard count %d", cfg.Shards)
	}
	if cfg.Shards == 0 {
		cfg.Shards = DefaultShards
	}
	if cfg.Classes == nil {
		cfg.Classes = DefaultPolicies()
	}
	if err := validatePolicies(cfg.Classes); err != nil {
		return nil, err
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Wall{}
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	b := &Broker{
		cfg:         cfg,
		links:       make([]*linkShard, cfg.Shards),
		shared:      make([]*sharedShard, cfg.Shards),
		bucket:      newTokenBucket(cfg.SessionsPerSec, cfg.SessionBurst, cfg.Clock.Now()),
		changed:     make(chan struct{}),
		gCommitted:  cfg.Metrics.Gauge("admission.committed_mbps"),
		gSessions:   cfg.Metrics.Gauge("admission.sessions"),
		cMigrations: cfg.Metrics.Counter("admission.migrations"),
	}
	for i := range b.links {
		b.links[i] = &linkShard{reserved: make(map[topology.LinkID]float64)}
		b.shared[i] = &sharedShard{groups: make(map[string]*sharedGroup)}
	}
	for c := range cfg.Classes {
		b.tally(c)
	}
	return b, nil
}

// Node returns the protected node. Safe for concurrent use (immutable).
func (b *Broker) Node() topology.NodeID { return b.cfg.Node }

// CapacityMbps returns the configured node capacity. Safe for concurrent use
// (immutable).
func (b *Broker) CapacityMbps() float64 { return b.cfg.CapacityMbps }

// MaxSessions returns the concurrent-session cap. Safe for concurrent use
// (immutable).
func (b *Broker) MaxSessions() int { return b.cfg.MaxSessions }

// Shards returns the configured link/shared-group shard count. Safe for
// concurrent use (immutable).
func (b *Broker) Shards() int { return b.cfg.Shards }

// CommittedMbps returns the bandwidth currently committed to sessions.
// Safe for concurrent use (atomic load).
func (b *Broker) CommittedMbps() float64 { return b.committed.load() }

// Sessions returns the number of admitted, unreleased sessions. Safe for
// concurrent use (atomic load).
func (b *Broker) Sessions() int { return int(b.sessions.Load()) }

// linkShardFor hashes a link ID to its owning reservation shard.
func (b *Broker) linkShardFor(id topology.LinkID) *linkShard {
	return b.links[maphash.String(linkSeed, string(id))%uint64(len(b.links))]
}

// sharedShardFor hashes a share key to its owning shared-group shard.
func (b *Broker) sharedShardFor(key string) *sharedShard {
	return b.shared[maphash.String(linkSeed, key)%uint64(len(b.shared))]
}

// LinkCommittedMbps returns the bandwidth committed on one emulated link.
// It has the signature core.Planner's committed-bandwidth hook expects.
// Safe for concurrent use (brief shard lock).
func (b *Broker) LinkCommittedMbps(id topology.LinkID) float64 {
	sh := b.linkShardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.reserved[id]
}

// LinkReservations returns a copy of the broker's committed bandwidth per
// emulated link (the local half of what the ledger replicates). Safe for
// concurrent use (brief per-shard locks); the result is a fresh map.
func (b *Broker) LinkReservations() map[topology.LinkID]float64 {
	out := make(map[topology.LinkID]float64)
	for _, sh := range b.links {
		sh.mu.Lock()
		for id, v := range sh.reserved {
			out[id] = v
		}
		sh.mu.Unlock()
	}
	return out
}

// Counts returns a copy of the per-class admission tallies. Safe for
// concurrent use (atomic loads); the result is a fresh map.
func (b *Broker) Counts() map[Class]ClassCounts {
	out := make(map[Class]ClassCounts)
	b.counts.Range(func(k, v any) bool {
		t := v.(*classTally)
		out[k.(Class)] = ClassCounts{
			Admitted: t.admitted.Load(),
			Degraded: t.degraded.Load(),
			Queued:   t.queued.Load(),
			Rejected: t.rejected.Load(),
		}
		return true
	})
	return out
}

// tally returns the live tally for a class, creating it on first use.
func (b *Broker) tally(c Class) *classTally {
	if v, ok := b.counts.Load(c); ok {
		return v.(*classTally)
	}
	t := &classTally{
		mAdmitted: b.cfg.Metrics.Counter("admission.admitted." + string(c)),
		mDegraded: b.cfg.Metrics.Counter("admission.degraded." + string(c)),
		mQueued:   b.cfg.Metrics.Counter("admission.queued." + string(c)),
		mRejected: b.cfg.Metrics.Counter("admission.rejected." + string(c)),
	}
	v, _ := b.counts.LoadOrStore(c, t)
	return v.(*classTally)
}

// Admit decides one request immediately: a Grant (possibly degraded) or a
// *RejectedError wrapping ErrRejected. It never queues. Safe for concurrent
// use.
func (b *Broker) Admit(req Request) (*Grant, error) {
	g, err := b.tryAdmit(req, true)
	if err != nil {
		b.account(req.Class, err, false)
		return nil, err
	}
	b.account(g.Class, nil, false)
	if g.Degraded {
		b.recordDegraded(g.Class)
	}
	return g, nil
}

// AdmitWait decides one request, waiting up to the class's QueueWindow for
// freed capacity or a rate token when the first attempt fails for a
// recoverable reason (sessions, rate, capacity). Link rejections do not
// queue: the route itself lacks headroom and a different replica should be
// tried instead. Safe for concurrent use.
func (b *Broker) AdmitWait(req Request) (*Grant, error) {
	class, _, err := b.policyFor(req.Class)
	if err != nil {
		b.account(class, err, false)
		return nil, err
	}
	req.Class = class
	pol := b.cfg.Classes[class]
	g, err := b.tryAdmit(req, true)
	if err == nil {
		b.account(class, nil, false)
		if g.Degraded {
			b.recordDegraded(class)
		}
		return g, nil
	}
	var rej *RejectedError
	if !errors.As(err, &rej) || rej.Reason == ReasonLink || rej.Reason == ReasonClass || pol.QueueWindow <= 0 {
		b.account(class, err, false)
		return nil, err
	}
	// Rate and sessions rejections happen before (or at) the bucket, so no
	// token was consumed and retries must still take one; capacity
	// rejections already spent this request's token.
	needToken := rej.Reason == ReasonRate || rej.Reason == ReasonSessions
	deadline := b.cfg.Clock.Now().Add(pol.QueueWindow)
	for {
		wait := b.waitChan()
		tokenIn := b.nextTokenIn()
		remaining := deadline.Sub(b.cfg.Clock.Now())
		if remaining <= 0 {
			b.account(class, err, true)
			return nil, err
		}
		pause := remaining
		if needToken && tokenIn > 0 && tokenIn < pause {
			pause = tokenIn
		}
		select {
		case <-wait:
		case <-b.cfg.Clock.After(pause):
		}
		g, err = b.tryAdmit(req, needToken)
		if err == nil {
			b.account(class, nil, true)
			if g.Degraded {
				b.recordDegraded(class)
			}
			return g, nil
		}
		if !errors.As(err, &rej) || rej.Reason == ReasonLink {
			b.account(class, err, true)
			return nil, err
		}
		if needToken && rej.Reason != ReasonRate && rej.Reason != ReasonSessions {
			needToken = false
		}
	}
}

// AdmitWaitShared admits one session into a shared admission group: the
// first session with a given key is admitted like AdmitWait and its rate and
// link reservations become the group's, later sessions with the same key
// attach to the live reservation committing no additional bandwidth (the
// delivery they share is already paid for — this is how stream-merging
// cohorts are accounted). Attaching still occupies a session slot but takes
// no setup token: joining a running stream does no new disk or route setup
// work, which is what the bucket protects. The reservation is returned when
// the last group member releases its grant. An empty key degenerates to
// AdmitWait. Safe for concurrent use.
func (b *Broker) AdmitWaitShared(req Request, key string) (*Grant, error) {
	if key == "" {
		return b.AdmitWait(req)
	}
	if g, done, err := b.tryAttach(req, key); done {
		return g, err
	}
	g, err := b.AdmitWait(req)
	if err != nil {
		return nil, err
	}
	sh := b.sharedShardFor(key)
	sh.mu.Lock()
	if grp, ok := sh.groups[key]; ok {
		// Another first admitter won the race while we were queued: fold
		// this grant's separate reservation back and attach to the group.
		b.committed.add(-g.BitrateMbps)
		b.unreserveLinks(g.links, g.BitrateMbps)
		if b.cfg.Ledger != nil && len(g.links) > 0 {
			b.cfg.Ledger.Release(g.links, string(g.Class), g.BitrateMbps)
		}
		grp.count++
		g.links = nil
		g.BitrateMbps = grp.rate
		g.Degraded = grp.degraded
		sh.mu.Unlock()
		b.signalChanged()
	} else {
		sh.groups[key] = &sharedGroup{
			rate:     g.BitrateMbps,
			degraded: g.Degraded,
			links:    g.links,
			count:    1,
			class:    g.Class,
		}
		g.links = nil // the group owns the link reservations now
		sh.mu.Unlock()
	}
	g.shareKey = key
	b.publishGauges()
	return g, nil
}

// tryAttach joins a live shared group when one exists for key. done is false
// when there is no group and the caller must run full admission.
func (b *Broker) tryAttach(req Request, key string) (g *Grant, done bool, err error) {
	class, _, err := b.policyFor(req.Class)
	if err != nil {
		b.account(class, err, false)
		return nil, true, err
	}
	sh := b.sharedShardFor(key)
	sh.mu.Lock()
	grp, ok := sh.groups[key]
	if !ok {
		sh.mu.Unlock()
		return nil, false, nil
	}
	if !b.takeSessionSlot() {
		sh.mu.Unlock()
		err := &RejectedError{Class: class, Reason: ReasonSessions, NeededMbps: req.BitrateMbps}
		b.account(class, err, false)
		return nil, true, err
	}
	grp.count++
	g = &Grant{
		id:          b.nextID.Add(1),
		Class:       class,
		Title:       req.Title,
		BitrateMbps: grp.rate,
		Degraded:    grp.degraded,
		shareKey:    key,
	}
	sh.mu.Unlock()
	b.publishGauges()
	b.account(class, nil, false)
	if g.Degraded {
		b.recordDegraded(class)
	}
	return g, true, nil
}

// Release returns a grant's bandwidth and session slot. For shared grants
// the group's bandwidth and link reservations are returned only when the
// last member leaves. It is idempotent and safe for concurrent use,
// including concurrently with Migrate on the same grant.
func (b *Broker) Release(g *Grant) {
	if g == nil {
		return
	}
	g.mu.Lock()
	if g.released {
		g.mu.Unlock()
		return
	}
	g.released = true
	rate, links, class := g.BitrateMbps, g.links, g.Class
	key := g.shareKey
	g.mu.Unlock()
	b.sessions.Add(-1)
	if key != "" {
		rate, links = 0, nil
		if grpRate, grpLinks, grpClass, last := b.leaveShared(key); last {
			rate, links, class = grpRate, grpLinks, grpClass
		}
	}
	if rate > 0 {
		b.committed.add(-rate)
		b.unreserveLinks(links, rate)
		if b.cfg.Ledger != nil && len(links) > 0 {
			b.cfg.Ledger.Release(links, string(class), rate)
		}
	}
	b.signalChanged()
	b.publishGauges()
}

// leaveShared removes one member from the key's group, returning the group's
// reservation when the leaver was the last member.
func (b *Broker) leaveShared(key string) (rate float64, links []topology.LinkID, class Class, last bool) {
	sh := b.sharedShardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	grp, ok := sh.groups[key]
	if !ok {
		return 0, nil, "", false
	}
	grp.count--
	if grp.count > 0 {
		return 0, nil, "", false
	}
	delete(sh.groups, key)
	return grp.rate, grp.links, grp.class, true
}

// Migrate moves a live grant's link reservations to a new route — the
// mid-stream case where the VRA re-plans a session across a cluster boundary
// and the bandwidth must follow the stream. Shared grants are skipped (the
// group, not the member, owns the reservations), as are released grants and
// no-op moves. Returns whether a migration happened. Safe for concurrent
// use, including concurrently with Release on the same grant.
func (b *Broker) Migrate(g *Grant, newLinks []topology.LinkID) bool {
	if g == nil {
		return false
	}
	g.mu.Lock()
	if g.released || g.shareKey != "" || sameLinkSet(g.links, newLinks) {
		g.mu.Unlock()
		return false
	}
	rate, old := g.BitrateMbps, g.links
	g.links = append([]topology.LinkID(nil), newLinks...)
	moved := g.links
	g.mu.Unlock()
	b.unreserveLinks(old, rate)
	b.reserveLinksForced(moved, rate)
	if b.cfg.Ledger != nil {
		if len(old) > 0 {
			b.cfg.Ledger.Release(old, string(g.Class), rate)
		}
		if len(moved) > 0 {
			b.cfg.Ledger.Reserve(moved, string(g.Class), rate)
		}
	}
	b.cMigrations.Inc()
	// Old links freed headroom: wake queued admits.
	b.signalChanged()
	b.publishGauges()
	return true
}

// sameLinkSet reports whether two routes reserve the same link multiset.
func sameLinkSet(a, b []topology.LinkID) bool {
	if len(a) != len(b) {
		return false
	}
	counts := make(map[topology.LinkID]int, len(a))
	for _, id := range a {
		counts[id]++
	}
	for _, id := range b {
		counts[id]--
		if counts[id] < 0 {
			return false
		}
	}
	return true
}

// policyFor resolves the (possibly empty) wire class to a configured policy.
func (b *Broker) policyFor(c Class) (Class, Policy, error) {
	if c == "" {
		c = Standard
	}
	pol, ok := b.cfg.Classes[c]
	if !ok {
		return c, Policy{}, &RejectedError{Class: c, Reason: ReasonClass}
	}
	return c, pol, nil
}

// takeSessionSlot claims one session slot with a CAS loop bounded by the
// configured cap, reporting success.
func (b *Broker) takeSessionSlot() bool {
	cap := int64(b.cfg.MaxSessions)
	for {
		cur := b.sessions.Load()
		if cur >= cap {
			return false
		}
		if b.sessions.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

// takeBucketToken consumes one setup token. A disabled bucket (rate <= 0) is
// checked without the bucket lock — rate is immutable after New.
func (b *Broker) takeBucketToken() bool {
	if b.bucket.rate <= 0 {
		return true
	}
	b.bucketMu.Lock()
	defer b.bucketMu.Unlock()
	return b.bucket.take(b.cfg.Clock.Now())
}

// nextTokenIn reports how long until a setup token is available.
func (b *Broker) nextTokenIn() time.Duration {
	if b.bucket.rate <= 0 {
		return 0
	}
	b.bucketMu.Lock()
	defer b.bucketMu.Unlock()
	return b.bucket.nextToken(b.cfg.Clock.Now())
}

// waitChan returns the current wakeup channel queued admits select on.
func (b *Broker) waitChan() chan struct{} {
	b.waitMu.Lock()
	defer b.waitMu.Unlock()
	return b.changed
}

// signalChanged wakes every queued AdmitWait so it re-checks capacity.
func (b *Broker) signalChanged() {
	b.waitMu.Lock()
	close(b.changed)
	b.changed = make(chan struct{})
	b.waitMu.Unlock()
}

// tryAdmit is one non-blocking admission attempt. takeToken is false when a
// queued retry has already consumed its token.
//
// The attempt is optimistic: it claims the session slot, then a token, then
// CAS-adds the rate into the committed total bounded by the class cap, then
// reserves each route link under its shard lock — and rolls back everything
// claimed so far whenever a later step refuses. A transient hold can briefly
// make a concurrent request see less capacity (the conservative direction);
// rollbacks signal queued admits so nobody waits on capacity that a failed
// attempt gave back.
func (b *Broker) tryAdmit(req Request, takeToken bool) (*Grant, error) {
	class, pol, err := b.policyFor(req.Class)
	if err != nil {
		return nil, err
	}
	if req.BitrateMbps <= 0 {
		return nil, fmt.Errorf("admission: non-positive bitrate %g", req.BitrateMbps)
	}
	// Read the SNMP view before claiming anything; it is immutable once
	// built (and with the sharded db, fetching it is a lock-free load).
	var snap *topology.Snapshot
	if b.cfg.Snapshot != nil && len(req.Links) > 0 {
		if snap, err = b.cfg.Snapshot(); err != nil {
			return nil, fmt.Errorf("admission snapshot: %w", err)
		}
	}
	if !b.takeSessionSlot() {
		return nil, &RejectedError{Class: class, Reason: ReasonSessions, NeededMbps: req.BitrateMbps}
	}
	if takeToken && !b.takeBucketToken() {
		b.sessions.Add(-1)
		b.signalChanged()
		return nil, &RejectedError{Class: class, Reason: ReasonRate, NeededMbps: req.BitrateMbps}
	}
	classCap := pol.MaxShare * b.cfg.CapacityMbps
	factors := append([]float64{1}, pol.DegradeSteps...)
	reason := ReasonCapacity
	free := classCap - b.committed.load()
	for _, f := range factors {
		rate := req.BitrateMbps * f
		if !b.committed.tryAddBounded(rate, classCap) {
			continue
		}
		if snap != nil {
			if ok, linkFree := b.reserveLinks(snap, req.Links, rate, pol.MaxShare, class); !ok {
				b.committed.add(-rate)
				reason = ReasonLink
				if linkFree < free {
					free = linkFree
				}
				continue
			}
		} else if len(req.Links) > 0 {
			// No network view wired: reserve without headroom checks, as
			// the pre-sharded broker did.
			b.reserveLinksForced(req.Links, rate)
		}
		g := &Grant{
			id:          b.nextID.Add(1),
			Class:       class,
			Title:       req.Title,
			BitrateMbps: rate,
			Degraded:    f < 1,
			links:       append([]topology.LinkID(nil), req.Links...),
		}
		// Ledger publish ordering: the shard state above is already
		// visible, so remote brokers can only over-count, never under.
		if b.cfg.Ledger != nil && len(g.links) > 0 {
			b.cfg.Ledger.Reserve(g.links, string(class), rate)
		}
		b.publishGauges()
		return g, nil
	}
	b.sessions.Add(-1)
	b.signalChanged()
	if free < 0 {
		free = 0
	}
	return nil, &RejectedError{Class: class, Reason: reason, NeededMbps: req.BitrateMbps, FreeMbps: free}
}

// reserveLinks walks the route reserving rate on each link under that link's
// shard lock: a link carries the rate when it has residual physical headroom
// (capacity − SNMP-observed use − broker-committed bandwidth) and stays
// inside the class's per-link trunk reservation, CalibratedLinkShare of the
// link's capacity — on thin links the flat MaxShare is tightened so at least
// one full-rate session of a better class still fits. Observed use may
// already include committed sessions' traffic, so the check is conservative
// under load — the safe direction for admission. When a ledger is
// configured, the other servers' gossip-replicated reservations are
// subtracted too, so two brokers sharing a trunk cannot jointly oversubscribe
// it. On the first link that refuses, every link reserved so far is rolled
// back and the minimum free bandwidth seen is returned for the typed
// rejection. Only one shard lock is held at a time.
func (b *Broker) reserveLinks(snap *topology.Snapshot, links []topology.LinkID, rate, share float64, class Class) (bool, float64) {
	minFree := 0.0
	first := true
	for i, id := range links {
		l, err := snap.Graph().LinkByID(id)
		if err != nil {
			b.unreserveLinks(links[:i], rate)
			return false, 0
		}
		sh := b.linkShardFor(id)
		sh.mu.Lock()
		committed := sh.reserved[id]
		classCommitted := committed
		if b.cfg.Ledger != nil {
			committed += b.cfg.Ledger.RemoteReservedMbps(id)
			classCommitted += b.cfg.Ledger.RemoteClassReservedMbps(id, string(class))
		}
		freeMbps := l.CapacityMbps*(1-snap.Utilization(id)) - committed
		classFree := CalibratedLinkShare(share, l.CapacityMbps, rate)*l.CapacityMbps - classCommitted
		if classFree < freeMbps {
			freeMbps = classFree
		}
		if freeMbps < 0 {
			freeMbps = 0
		}
		if first || freeMbps < minFree {
			minFree = freeMbps
			first = false
		}
		if freeMbps < rate {
			sh.mu.Unlock()
			b.unreserveLinks(links[:i], rate)
			return false, minFree
		}
		sh.reserved[id] += rate
		sh.mu.Unlock()
	}
	return true, minFree
}

// reserveLinksForced adds rate to each link unconditionally — the migration
// path, where the stream already flows and the reservation must follow it.
func (b *Broker) reserveLinksForced(links []topology.LinkID, rate float64) {
	for _, id := range links {
		sh := b.linkShardFor(id)
		sh.mu.Lock()
		sh.reserved[id] += rate
		sh.mu.Unlock()
	}
}

// unreserveLinks subtracts rate from each link under its shard lock,
// dropping entries that reach zero (with the same epsilon the pre-sharded
// broker used against float drift).
func (b *Broker) unreserveLinks(links []topology.LinkID, rate float64) {
	for _, id := range links {
		sh := b.linkShardFor(id)
		sh.mu.Lock()
		sh.reserved[id] -= rate
		if sh.reserved[id] < 1e-9 {
			delete(sh.reserved, id)
		}
		sh.mu.Unlock()
	}
}

// account updates counters after a final admission outcome.
func (b *Broker) account(class Class, err error, waited bool) {
	if class == "" {
		class = Standard
	}
	t := b.tally(class)
	if waited {
		t.queued.Add(1)
		t.mQueued.Inc()
	}
	switch {
	case err == nil:
		t.admitted.Add(1)
		t.mAdmitted.Inc()
	default:
		t.rejected.Add(1)
		t.mRejected.Inc()
	}
}

// recordDegraded bumps the degraded tally for grants handed out below the
// requested rate. tryAdmit cannot do it itself (account runs later), so the
// admit paths call this after a degraded grant.
func (b *Broker) recordDegraded(class Class) {
	t := b.tally(class)
	t.degraded.Add(1)
	t.mDegraded.Inc()
}

// publishGauges refreshes the committed/session gauges from the atomic
// aggregates; safe to call from any goroutine without locks.
func (b *Broker) publishGauges() {
	b.gCommitted.Set(b.committed.load())
	b.gSessions.Set(float64(b.sessions.Load()))
}
