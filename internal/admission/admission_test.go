package admission

import (
	"errors"
	"sync"
	"testing"
	"time"

	"dvod/internal/clock"
	"dvod/internal/metrics"
	"dvod/internal/topology"
)

var t0 = time.Date(2000, time.April, 10, 8, 0, 0, 0, time.UTC)

func newBroker(t *testing.T, cfg Config) *Broker {
	t.Helper()
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestParseClass(t *testing.T) {
	cases := []struct {
		in   string
		want Class
		ok   bool
	}{
		{"", Standard, true},
		{"premium", Premium, true},
		{"standard", Standard, true},
		{"background", Background, true},
		{"gold", "", false},
	}
	for _, c := range cases {
		got, err := ParseClass(c.in)
		if (err == nil) != c.ok || got != c.want {
			t.Fatalf("ParseClass(%q) = %q, %v", c.in, got, err)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
	if _, err := New(Config{CapacityMbps: 10, MaxSessions: -1}); err == nil {
		t.Fatal("negative session cap accepted")
	}
	bad := map[Class]Policy{Premium: {MaxShare: 1.5}}
	if _, err := New(Config{CapacityMbps: 10, Classes: bad}); err == nil {
		t.Fatal("MaxShare > 1 accepted")
	}
	bad2 := map[Class]Policy{Premium: {MaxShare: 0.5, DegradeSteps: []float64{1.25}}}
	if _, err := New(Config{CapacityMbps: 10, Classes: bad2}); err == nil {
		t.Fatal("degrade step > 1 accepted")
	}
}

func TestAdmitReleaseAccounting(t *testing.T) {
	b := newBroker(t, Config{CapacityMbps: 10})
	la := topology.MakeLinkID("A", "B")
	g, err := b.Admit(Request{Class: Premium, Title: "t", BitrateMbps: 4, Links: []topology.LinkID{la}})
	if err != nil {
		t.Fatal(err)
	}
	if g.Degraded || g.BitrateMbps != 4 {
		t.Fatalf("grant = %+v", g)
	}
	if got := b.CommittedMbps(); got != 4 {
		t.Fatalf("committed = %g", got)
	}
	if got := b.LinkCommittedMbps(la); got != 4 {
		t.Fatalf("link committed = %g", got)
	}
	if b.Sessions() != 1 {
		t.Fatalf("sessions = %d", b.Sessions())
	}
	b.Release(g)
	b.Release(g) // idempotent
	if b.CommittedMbps() != 0 || b.Sessions() != 0 || b.LinkCommittedMbps(la) != 0 {
		t.Fatalf("release did not zero state: %g %d", b.CommittedMbps(), b.Sessions())
	}
	counts := b.Counts()
	if counts[Premium].Admitted != 1 {
		t.Fatalf("counts = %+v", counts)
	}
}

func TestTrunkReservationProtectsPremium(t *testing.T) {
	// Background may only push the node to 50%; premium may fill it.
	b := newBroker(t, Config{CapacityMbps: 10})
	g1, err := b.Admit(Request{Class: Background, BitrateMbps: 4})
	if err != nil {
		t.Fatal(err)
	}
	if g1.Degraded {
		t.Fatal("first background degraded with idle node")
	}
	// 4 + 4 > 5, and every degrade step still exceeds the 50% share.
	_, err = b.Admit(Request{Class: Background, BitrateMbps: 4})
	var rej *RejectedError
	if !errors.As(err, &rej) || rej.Reason != ReasonCapacity {
		t.Fatalf("second background: %v", err)
	}
	if !errors.Is(err, ErrRejected) {
		t.Fatal("rejection does not wrap ErrRejected")
	}
	// Premium still has the other half of the node.
	g2, err := b.Admit(Request{Class: Premium, BitrateMbps: 4})
	if err != nil {
		t.Fatalf("premium after background cap: %v", err)
	}
	if g2.Degraded {
		t.Fatal("premium degraded")
	}
	counts := b.Counts()
	if counts[Background].Rejected != 1 || counts[Background].Admitted != 1 || counts[Premium].Admitted != 1 {
		t.Fatalf("counts = %+v", counts)
	}
}

func TestDegradationLadder(t *testing.T) {
	// Background share = 5 Mbps. 3 committed; a 4 Mbps request fits only
	// at the 0.5 step (2 Mbps).
	b := newBroker(t, Config{CapacityMbps: 10})
	if _, err := b.Admit(Request{Class: Background, BitrateMbps: 3}); err != nil {
		t.Fatal(err)
	}
	g, err := b.Admit(Request{Class: Background, BitrateMbps: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !g.Degraded || g.BitrateMbps != 2 {
		t.Fatalf("grant = %+v", g)
	}
	counts := b.Counts()
	if counts[Background].Degraded != 1 || counts[Background].Admitted != 2 {
		t.Fatalf("counts = %+v", counts)
	}
}

func TestSessionCap(t *testing.T) {
	b := newBroker(t, Config{CapacityMbps: 100, MaxSessions: 2})
	g1, _ := b.Admit(Request{Class: Premium, BitrateMbps: 1})
	if _, err := b.Admit(Request{Class: Premium, BitrateMbps: 1}); err != nil {
		t.Fatal(err)
	}
	_, err := b.Admit(Request{Class: Premium, BitrateMbps: 1})
	var rej *RejectedError
	if !errors.As(err, &rej) || rej.Reason != ReasonSessions {
		t.Fatalf("over cap: %v", err)
	}
	b.Release(g1)
	if _, err := b.Admit(Request{Class: Premium, BitrateMbps: 1}); err != nil {
		t.Fatalf("after release: %v", err)
	}
}

func TestTokenBucketRateLimit(t *testing.T) {
	vc := clock.NewVirtual(t0)
	b := newBroker(t, Config{CapacityMbps: 100, SessionsPerSec: 1, SessionBurst: 2, Clock: vc})
	for i := 0; i < 2; i++ {
		if _, err := b.Admit(Request{Class: Premium, BitrateMbps: 1}); err != nil {
			t.Fatalf("burst admit %d: %v", i, err)
		}
	}
	_, err := b.Admit(Request{Class: Premium, BitrateMbps: 1})
	var rej *RejectedError
	if !errors.As(err, &rej) || rej.Reason != ReasonRate {
		t.Fatalf("bucket empty: %v", err)
	}
	vc.Advance(time.Second)
	if _, err := b.Admit(Request{Class: Premium, BitrateMbps: 1}); err != nil {
		t.Fatalf("after refill: %v", err)
	}
}

func TestAdmitWaitQueuesUntilRelease(t *testing.T) {
	b := newBroker(t, Config{CapacityMbps: 10, Classes: map[Class]Policy{
		Premium: {MaxShare: 1, QueueWindow: 5 * time.Second},
	}})
	g1, err := b.Admit(Request{Class: Premium, BitrateMbps: 8})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		g, err := b.AdmitWait(Request{Class: Premium, BitrateMbps: 8})
		if err == nil {
			b.Release(g)
		}
		done <- err
	}()
	// The waiter must be queued, not rejected, while g1 holds the node.
	select {
	case err := <-done:
		t.Fatalf("AdmitWait returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	b.Release(g1)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("queued admit failed after release: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("queued admit never woke up")
	}
	if got := b.Counts()[Premium].Queued; got != 1 {
		t.Fatalf("queued count = %d", got)
	}
}

func TestAdmitWaitDeadline(t *testing.T) {
	b := newBroker(t, Config{CapacityMbps: 10, Classes: map[Class]Policy{
		Premium: {MaxShare: 1, QueueWindow: 30 * time.Millisecond},
	}})
	g1, err := b.Admit(Request{Class: Premium, BitrateMbps: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Release(g1)
	start := time.Now()
	_, err = b.AdmitWait(Request{Class: Premium, BitrateMbps: 8})
	var rej *RejectedError
	if !errors.As(err, &rej) || rej.Reason != ReasonCapacity {
		t.Fatalf("deadline rejection: %v", err)
	}
	if time.Since(start) < 25*time.Millisecond {
		t.Fatal("deadline fired too early")
	}
	// Zero queue window rejects immediately.
	b2 := newBroker(t, Config{CapacityMbps: 10, Classes: map[Class]Policy{
		Premium: {MaxShare: 1},
	}})
	g, err := b2.Admit(Request{Class: Premium, BitrateMbps: 9})
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Release(g)
	if _, err := b2.AdmitWait(Request{Class: Premium, BitrateMbps: 9}); err == nil {
		t.Fatal("zero-window AdmitWait admitted over capacity")
	}
}

func TestLinkResidualCheck(t *testing.T) {
	g := topology.NewGraph()
	for _, n := range []topology.NodeID{"A", "B", "C"} {
		if err := g.AddNode(n); err != nil {
			t.Fatal(err)
		}
	}
	ab, err := g.AddLink("A", "B", 10)
	if err != nil {
		t.Fatal(err)
	}
	bc, err := g.AddLink("B", "C", 2)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := topology.NewSnapshot(g, map[topology.LinkID]float64{ab: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	b := newBroker(t, Config{
		CapacityMbps: 100,
		Snapshot:     func() (*topology.Snapshot, error) { return snap, nil },
	})
	// Route A-B-C bottlenecked by the 2 Mbps B-C link: a premium 3 Mbps
	// session cannot fit and premium never degrades.
	_, err = b.Admit(Request{Class: Premium, BitrateMbps: 3, Links: []topology.LinkID{ab, bc}})
	var rej *RejectedError
	if !errors.As(err, &rej) || rej.Reason != ReasonLink {
		t.Fatalf("bottlenecked premium: %v", err)
	}
	// Background at 3 Mbps degrades to 1.5, but the calibrated trunk share
	// still refuses it: 1.5 Mbps is three quarters of the thin link, which
	// would leave no room for a better class.
	_, err = b.Admit(Request{Class: Background, BitrateMbps: 3, Links: []topology.LinkID{ab, bc}})
	if !errors.As(err, &rej) || rej.Reason != ReasonLink {
		t.Fatalf("thin-link background: %v", err)
	}
	// Small background sessions may fill the class's half of the link — two
	// 0.5 Mbps sessions — and the reservation then blocks a third.
	for i := 0; i < 2; i++ {
		gr, err := b.Admit(Request{Class: Background, BitrateMbps: 0.5, Links: []topology.LinkID{ab, bc}})
		if err != nil {
			t.Fatalf("small background %d: %v", i, err)
		}
		if gr.Degraded {
			t.Fatalf("small background %d degraded: %+v", i, gr)
		}
	}
	if _, err := b.Admit(Request{Class: Background, BitrateMbps: 0.5, Links: []topology.LinkID{ab, bc}}); err == nil {
		t.Fatal("third background fit past the class's link share")
	}
}

func TestCalibratedLinkShare(t *testing.T) {
	cases := []struct {
		share, capacity, bitrate, want float64
	}{
		{1.0, 2, 1.5, 1.0},     // premium entitlement is never reduced
		{0.85, 2, 1.5, 0.25},   // thin link: keep one full-rate session free
		{0.85, 100, 1.5, 0.85}, // wide link: flat share unchanged
		{0.5, 2, 4, 0},         // session larger than the link: clamp to zero
		{0.85, 0, 1.5, 0.85},   // degenerate capacity: leave share alone
	}
	for _, c := range cases {
		if got := CalibratedLinkShare(c.share, c.capacity, c.bitrate); got != c.want {
			t.Errorf("CalibratedLinkShare(%g, %g, %g) = %g, want %g",
				c.share, c.capacity, c.bitrate, got, c.want)
		}
	}
}

// TestThinLinkProtectsPremium is the trunk-calibration regression: on a
// 2 Mbps access link a flat 0.85 share would let a standard session commit
// 1.5 Mbps and starve a later premium arrival; the calibrated share rejects
// the standard session so premium still fits.
func TestThinLinkProtectsPremium(t *testing.T) {
	g := topology.NewGraph()
	for _, n := range []topology.NodeID{"A", "B"} {
		if err := g.AddNode(n); err != nil {
			t.Fatal(err)
		}
	}
	thin, err := g.AddLink("A", "B", 2)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := topology.NewSnapshot(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	b := newBroker(t, Config{
		CapacityMbps: 100,
		Snapshot:     func() (*topology.Snapshot, error) { return snap, nil },
	})
	_, err = b.Admit(Request{Class: Standard, BitrateMbps: 1.5, Links: []topology.LinkID{thin}})
	var rej *RejectedError
	if !errors.As(err, &rej) || rej.Reason != ReasonLink {
		t.Fatalf("standard on thin link: %v, want link rejection", err)
	}
	gr, err := b.Admit(Request{Class: Premium, BitrateMbps: 1.5, Links: []topology.LinkID{thin}})
	if err != nil {
		t.Fatalf("premium after standard attempt: %v", err)
	}
	if gr.Degraded {
		t.Fatalf("premium degraded: %+v", gr)
	}
	b.Release(gr)
}

func TestUnknownClassRejected(t *testing.T) {
	b := newBroker(t, Config{CapacityMbps: 10})
	_, err := b.Admit(Request{Class: "gold", BitrateMbps: 1})
	var rej *RejectedError
	if !errors.As(err, &rej) || rej.Reason != ReasonClass {
		t.Fatalf("unknown class: %v", err)
	}
}

func TestMetricsPublished(t *testing.T) {
	reg := metrics.NewRegistry()
	b := newBroker(t, Config{CapacityMbps: 10, Metrics: reg})
	g, err := b.Admit(Request{Class: Premium, BitrateMbps: 4})
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if snap.Counters["admission.admitted.premium"] != 1 {
		t.Fatalf("counters = %v", snap.Counters)
	}
	if snap.Gauges["admission.committed_mbps"] != 4 {
		t.Fatalf("gauges = %v", snap.Gauges)
	}
	b.Release(g)
	if v := reg.Snapshot().Gauges["admission.committed_mbps"]; v != 0 {
		t.Fatalf("committed gauge after release = %g", v)
	}
}

func TestConcurrentAdmitRelease(t *testing.T) {
	b := newBroker(t, Config{CapacityMbps: 1000, MaxSessions: 1000})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				g, err := b.Admit(Request{Class: Standard, BitrateMbps: 1})
				if err == nil {
					b.Release(g)
				}
			}
		}()
	}
	wg.Wait()
	if b.CommittedMbps() != 0 || b.Sessions() != 0 {
		t.Fatalf("leaked state: %g Mbps, %d sessions", b.CommittedMbps(), b.Sessions())
	}
}

func TestSortedClassesDeterministic(t *testing.T) {
	ps := DefaultPolicies()
	got := sortedClasses(ps)
	want := []Class{Premium, Standard, Background}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sortedClasses = %v", got)
		}
	}
}

func TestAdmitWaitSharedCommitsOnce(t *testing.T) {
	g := topology.NewGraph()
	for _, n := range []topology.NodeID{"A", "B"} {
		if err := g.AddNode(n); err != nil {
			t.Fatal(err)
		}
	}
	link, err := g.AddLink("A", "B", 100)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := topology.NewSnapshot(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	b := newBroker(t, Config{
		CapacityMbps: 10,
		Snapshot:     func() (*topology.Snapshot, error) { return snap, nil },
	})
	req := Request{Class: Premium, Title: "hot", BitrateMbps: 4, Links: []topology.LinkID{link}}

	var grants []*Grant
	for i := 0; i < 4; i++ {
		gr, err := b.AdmitWaitShared(req, "watch:hot")
		if err != nil {
			t.Fatalf("shared admit %d: %v", i, err)
		}
		if !gr.Shared() {
			t.Fatalf("grant %d not marked shared", i)
		}
		grants = append(grants, gr)
	}
	// Four sessions, one reservation: a 4 Mbps cohort on a 10 Mbps node
	// would be impossible (16 Mbps) if each member committed its own rate.
	if got := b.CommittedMbps(); got != 4 {
		t.Fatalf("CommittedMbps = %g, want 4 (one shared reservation)", got)
	}
	if got := b.Sessions(); got != 4 {
		t.Fatalf("Sessions = %d, want 4", got)
	}
	if got := b.LinkCommittedMbps(link); got != 4 {
		t.Fatalf("LinkCommittedMbps = %g, want 4", got)
	}
	// Early leavers do not strand or free the group's bandwidth...
	b.Release(grants[0])
	b.Release(grants[1])
	if got := b.CommittedMbps(); got != 4 {
		t.Fatalf("CommittedMbps after partial release = %g, want 4", got)
	}
	// ...only the last one out returns it.
	b.Release(grants[2])
	b.Release(grants[3])
	b.Release(grants[3]) // idempotent
	if got := b.CommittedMbps(); got != 0 {
		t.Fatalf("CommittedMbps after full release = %g, want 0", got)
	}
	if got := b.LinkCommittedMbps(link); got != 0 {
		t.Fatalf("LinkCommittedMbps after full release = %g, want 0", got)
	}
	if got := b.Sessions(); got != 0 {
		t.Fatalf("Sessions after full release = %d, want 0", got)
	}
	// A fresh key after the group died starts a new reservation.
	gr, err := b.AdmitWaitShared(req, "watch:hot")
	if err != nil {
		t.Fatal(err)
	}
	if got := b.CommittedMbps(); got != 4 {
		t.Fatalf("CommittedMbps for revived group = %g, want 4", got)
	}
	b.Release(gr)
}

func TestAdmitWaitSharedEmptyKeyIsUnshared(t *testing.T) {
	b := newBroker(t, Config{CapacityMbps: 10})
	g1, err := b.AdmitWaitShared(Request{Class: Premium, BitrateMbps: 4}, "")
	if err != nil {
		t.Fatal(err)
	}
	if g1.Shared() {
		t.Fatal("empty-key grant marked shared")
	}
	g2, err := b.AdmitWaitShared(Request{Class: Premium, BitrateMbps: 4}, "")
	if err != nil {
		t.Fatal(err)
	}
	if got := b.CommittedMbps(); got != 8 {
		t.Fatalf("CommittedMbps = %g, want 8 (independent sessions)", got)
	}
	b.Release(g1)
	b.Release(g2)
}

func TestAdmitWaitSharedRespectsSessionCap(t *testing.T) {
	b := newBroker(t, Config{CapacityMbps: 10, MaxSessions: 2})
	req := Request{Class: Background, BitrateMbps: 1}
	g1, err := b.AdmitWaitShared(req, "k")
	if err != nil {
		t.Fatal(err)
	}
	g2, err := b.AdmitWaitShared(req, "k")
	if err != nil {
		t.Fatal(err)
	}
	_, err = b.AdmitWaitShared(req, "k")
	var rej *RejectedError
	if !errors.As(err, &rej) || rej.Reason != ReasonSessions {
		t.Fatalf("attach past session cap: %v, want sessions rejection", err)
	}
	b.Release(g1)
	b.Release(g2)
}

func TestAdmitWaitSharedConcurrentFirsts(t *testing.T) {
	b := newBroker(t, Config{CapacityMbps: 10, MaxSessions: 64})
	req := Request{Class: Premium, BitrateMbps: 4}
	const n = 16
	grants := make([]*Grant, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g, err := b.AdmitWaitShared(req, "k")
			if err != nil {
				t.Error(err)
				return
			}
			grants[i] = g
		}()
	}
	wg.Wait()
	// However the race between first admitters resolves, the group must end
	// up holding exactly one 4 Mbps reservation.
	if got := b.CommittedMbps(); got != 4 {
		t.Fatalf("CommittedMbps = %g, want 4 after %d concurrent shared admits", got, n)
	}
	for _, g := range grants {
		b.Release(g)
	}
	if got := b.CommittedMbps(); got != 0 {
		t.Fatalf("CommittedMbps after release = %g, want 0", got)
	}
	if got := b.Sessions(); got != 0 {
		t.Fatalf("Sessions after release = %d, want 0", got)
	}
}
