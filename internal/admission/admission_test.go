package admission

import (
	"errors"
	"sync"
	"testing"
	"time"

	"dvod/internal/clock"
	"dvod/internal/metrics"
	"dvod/internal/topology"
)

var t0 = time.Date(2000, time.April, 10, 8, 0, 0, 0, time.UTC)

func newBroker(t *testing.T, cfg Config) *Broker {
	t.Helper()
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestParseClass(t *testing.T) {
	cases := []struct {
		in   string
		want Class
		ok   bool
	}{
		{"", Standard, true},
		{"premium", Premium, true},
		{"standard", Standard, true},
		{"background", Background, true},
		{"gold", "", false},
	}
	for _, c := range cases {
		got, err := ParseClass(c.in)
		if (err == nil) != c.ok || got != c.want {
			t.Fatalf("ParseClass(%q) = %q, %v", c.in, got, err)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
	if _, err := New(Config{CapacityMbps: 10, MaxSessions: -1}); err == nil {
		t.Fatal("negative session cap accepted")
	}
	bad := map[Class]Policy{Premium: {MaxShare: 1.5}}
	if _, err := New(Config{CapacityMbps: 10, Classes: bad}); err == nil {
		t.Fatal("MaxShare > 1 accepted")
	}
	bad2 := map[Class]Policy{Premium: {MaxShare: 0.5, DegradeSteps: []float64{1.25}}}
	if _, err := New(Config{CapacityMbps: 10, Classes: bad2}); err == nil {
		t.Fatal("degrade step > 1 accepted")
	}
}

func TestAdmitReleaseAccounting(t *testing.T) {
	b := newBroker(t, Config{CapacityMbps: 10})
	la := topology.MakeLinkID("A", "B")
	g, err := b.Admit(Request{Class: Premium, Title: "t", BitrateMbps: 4, Links: []topology.LinkID{la}})
	if err != nil {
		t.Fatal(err)
	}
	if g.Degraded || g.BitrateMbps != 4 {
		t.Fatalf("grant = %+v", g)
	}
	if got := b.CommittedMbps(); got != 4 {
		t.Fatalf("committed = %g", got)
	}
	if got := b.LinkCommittedMbps(la); got != 4 {
		t.Fatalf("link committed = %g", got)
	}
	if b.Sessions() != 1 {
		t.Fatalf("sessions = %d", b.Sessions())
	}
	b.Release(g)
	b.Release(g) // idempotent
	if b.CommittedMbps() != 0 || b.Sessions() != 0 || b.LinkCommittedMbps(la) != 0 {
		t.Fatalf("release did not zero state: %g %d", b.CommittedMbps(), b.Sessions())
	}
	counts := b.Counts()
	if counts[Premium].Admitted != 1 {
		t.Fatalf("counts = %+v", counts)
	}
}

func TestTrunkReservationProtectsPremium(t *testing.T) {
	// Background may only push the node to 50%; premium may fill it.
	b := newBroker(t, Config{CapacityMbps: 10})
	g1, err := b.Admit(Request{Class: Background, BitrateMbps: 4})
	if err != nil {
		t.Fatal(err)
	}
	if g1.Degraded {
		t.Fatal("first background degraded with idle node")
	}
	// 4 + 4 > 5, and every degrade step still exceeds the 50% share.
	_, err = b.Admit(Request{Class: Background, BitrateMbps: 4})
	var rej *RejectedError
	if !errors.As(err, &rej) || rej.Reason != ReasonCapacity {
		t.Fatalf("second background: %v", err)
	}
	if !errors.Is(err, ErrRejected) {
		t.Fatal("rejection does not wrap ErrRejected")
	}
	// Premium still has the other half of the node.
	g2, err := b.Admit(Request{Class: Premium, BitrateMbps: 4})
	if err != nil {
		t.Fatalf("premium after background cap: %v", err)
	}
	if g2.Degraded {
		t.Fatal("premium degraded")
	}
	counts := b.Counts()
	if counts[Background].Rejected != 1 || counts[Background].Admitted != 1 || counts[Premium].Admitted != 1 {
		t.Fatalf("counts = %+v", counts)
	}
}

func TestDegradationLadder(t *testing.T) {
	// Background share = 5 Mbps. 3 committed; a 4 Mbps request fits only
	// at the 0.5 step (2 Mbps).
	b := newBroker(t, Config{CapacityMbps: 10})
	if _, err := b.Admit(Request{Class: Background, BitrateMbps: 3}); err != nil {
		t.Fatal(err)
	}
	g, err := b.Admit(Request{Class: Background, BitrateMbps: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !g.Degraded || g.BitrateMbps != 2 {
		t.Fatalf("grant = %+v", g)
	}
	counts := b.Counts()
	if counts[Background].Degraded != 1 || counts[Background].Admitted != 2 {
		t.Fatalf("counts = %+v", counts)
	}
}

func TestSessionCap(t *testing.T) {
	b := newBroker(t, Config{CapacityMbps: 100, MaxSessions: 2})
	g1, _ := b.Admit(Request{Class: Premium, BitrateMbps: 1})
	if _, err := b.Admit(Request{Class: Premium, BitrateMbps: 1}); err != nil {
		t.Fatal(err)
	}
	_, err := b.Admit(Request{Class: Premium, BitrateMbps: 1})
	var rej *RejectedError
	if !errors.As(err, &rej) || rej.Reason != ReasonSessions {
		t.Fatalf("over cap: %v", err)
	}
	b.Release(g1)
	if _, err := b.Admit(Request{Class: Premium, BitrateMbps: 1}); err != nil {
		t.Fatalf("after release: %v", err)
	}
}

func TestTokenBucketRateLimit(t *testing.T) {
	vc := clock.NewVirtual(t0)
	b := newBroker(t, Config{CapacityMbps: 100, SessionsPerSec: 1, SessionBurst: 2, Clock: vc})
	for i := 0; i < 2; i++ {
		if _, err := b.Admit(Request{Class: Premium, BitrateMbps: 1}); err != nil {
			t.Fatalf("burst admit %d: %v", i, err)
		}
	}
	_, err := b.Admit(Request{Class: Premium, BitrateMbps: 1})
	var rej *RejectedError
	if !errors.As(err, &rej) || rej.Reason != ReasonRate {
		t.Fatalf("bucket empty: %v", err)
	}
	vc.Advance(time.Second)
	if _, err := b.Admit(Request{Class: Premium, BitrateMbps: 1}); err != nil {
		t.Fatalf("after refill: %v", err)
	}
}

func TestAdmitWaitQueuesUntilRelease(t *testing.T) {
	b := newBroker(t, Config{CapacityMbps: 10, Classes: map[Class]Policy{
		Premium: {MaxShare: 1, QueueWindow: 5 * time.Second},
	}})
	g1, err := b.Admit(Request{Class: Premium, BitrateMbps: 8})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		g, err := b.AdmitWait(Request{Class: Premium, BitrateMbps: 8})
		if err == nil {
			b.Release(g)
		}
		done <- err
	}()
	// The waiter must be queued, not rejected, while g1 holds the node.
	select {
	case err := <-done:
		t.Fatalf("AdmitWait returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	b.Release(g1)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("queued admit failed after release: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("queued admit never woke up")
	}
	if got := b.Counts()[Premium].Queued; got != 1 {
		t.Fatalf("queued count = %d", got)
	}
}

func TestAdmitWaitDeadline(t *testing.T) {
	b := newBroker(t, Config{CapacityMbps: 10, Classes: map[Class]Policy{
		Premium: {MaxShare: 1, QueueWindow: 30 * time.Millisecond},
	}})
	g1, err := b.Admit(Request{Class: Premium, BitrateMbps: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Release(g1)
	start := time.Now()
	_, err = b.AdmitWait(Request{Class: Premium, BitrateMbps: 8})
	var rej *RejectedError
	if !errors.As(err, &rej) || rej.Reason != ReasonCapacity {
		t.Fatalf("deadline rejection: %v", err)
	}
	if time.Since(start) < 25*time.Millisecond {
		t.Fatal("deadline fired too early")
	}
	// Zero queue window rejects immediately.
	b2 := newBroker(t, Config{CapacityMbps: 10, Classes: map[Class]Policy{
		Premium: {MaxShare: 1},
	}})
	g, err := b2.Admit(Request{Class: Premium, BitrateMbps: 9})
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Release(g)
	if _, err := b2.AdmitWait(Request{Class: Premium, BitrateMbps: 9}); err == nil {
		t.Fatal("zero-window AdmitWait admitted over capacity")
	}
}

func TestLinkResidualCheck(t *testing.T) {
	g := topology.NewGraph()
	for _, n := range []topology.NodeID{"A", "B", "C"} {
		if err := g.AddNode(n); err != nil {
			t.Fatal(err)
		}
	}
	ab, err := g.AddLink("A", "B", 10)
	if err != nil {
		t.Fatal(err)
	}
	bc, err := g.AddLink("B", "C", 2)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := topology.NewSnapshot(g, map[topology.LinkID]float64{ab: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	b := newBroker(t, Config{
		CapacityMbps: 100,
		Snapshot:     func() (*topology.Snapshot, error) { return snap, nil },
	})
	// Route A-B-C bottlenecked by the 2 Mbps B-C link: a premium 3 Mbps
	// session cannot fit and premium never degrades.
	_, err = b.Admit(Request{Class: Premium, BitrateMbps: 3, Links: []topology.LinkID{ab, bc}})
	var rej *RejectedError
	if !errors.As(err, &rej) || rej.Reason != ReasonLink {
		t.Fatalf("bottlenecked premium: %v", err)
	}
	// Background degrades to 1.5 Mbps and fits under the bottleneck.
	gr, err := b.Admit(Request{Class: Background, BitrateMbps: 3, Links: []topology.LinkID{ab, bc}})
	if err != nil {
		t.Fatal(err)
	}
	if !gr.Degraded || gr.BitrateMbps != 1.5 {
		t.Fatalf("grant = %+v", gr)
	}
	// The reservation itself now blocks an equal follow-up.
	if _, err := b.Admit(Request{Class: Background, BitrateMbps: 3, Links: []topology.LinkID{ab, bc}}); err == nil {
		t.Fatal("second background fit into a full bottleneck")
	}
}

func TestUnknownClassRejected(t *testing.T) {
	b := newBroker(t, Config{CapacityMbps: 10})
	_, err := b.Admit(Request{Class: "gold", BitrateMbps: 1})
	var rej *RejectedError
	if !errors.As(err, &rej) || rej.Reason != ReasonClass {
		t.Fatalf("unknown class: %v", err)
	}
}

func TestMetricsPublished(t *testing.T) {
	reg := metrics.NewRegistry()
	b := newBroker(t, Config{CapacityMbps: 10, Metrics: reg})
	g, err := b.Admit(Request{Class: Premium, BitrateMbps: 4})
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if snap.Counters["admission.admitted.premium"] != 1 {
		t.Fatalf("counters = %v", snap.Counters)
	}
	if snap.Gauges["admission.committed_mbps"] != 4 {
		t.Fatalf("gauges = %v", snap.Gauges)
	}
	b.Release(g)
	if v := reg.Snapshot().Gauges["admission.committed_mbps"]; v != 0 {
		t.Fatalf("committed gauge after release = %g", v)
	}
}

func TestConcurrentAdmitRelease(t *testing.T) {
	b := newBroker(t, Config{CapacityMbps: 1000, MaxSessions: 1000})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				g, err := b.Admit(Request{Class: Standard, BitrateMbps: 1})
				if err == nil {
					b.Release(g)
				}
			}
		}()
	}
	wg.Wait()
	if b.CommittedMbps() != 0 || b.Sessions() != 0 {
		t.Fatalf("leaked state: %g Mbps, %d sessions", b.CommittedMbps(), b.Sessions())
	}
}

func TestSortedClassesDeterministic(t *testing.T) {
	ps := DefaultPolicies()
	got := sortedClasses(ps)
	want := []Class{Premium, Standard, Background}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sortedClasses = %v", got)
		}
	}
}
