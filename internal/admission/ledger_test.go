package admission

import (
	"errors"
	"testing"
	"time"

	"dvod/internal/clock"
	"dvod/internal/ledger"
	"dvod/internal/topology"
)

// TestLedgerPreventsJointOversubscription is the regression the ledger
// exists for: two home servers share a 2 Mbps trunk to the origin. With
// per-server brokers each sees an idle trunk and both admit a 1.5 Mbps
// premium session — 3 Mbps committed on a 2 Mbps link. With ledger-backed
// brokers the second server sees the first's replicated reservation and
// refuses.
func TestLedgerPreventsJointOversubscription(t *testing.T) {
	g := topology.NewGraph()
	for _, n := range []topology.NodeID{"A", "B", "M", "O"} {
		if err := g.AddNode(n); err != nil {
			t.Fatal(err)
		}
	}
	am, err := g.AddLink("A", "M", 10)
	if err != nil {
		t.Fatal(err)
	}
	bm, err := g.AddLink("B", "M", 10)
	if err != nil {
		t.Fatal(err)
	}
	mo, err := g.AddLink("M", "O", 2)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := topology.NewSnapshot(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	snapshot := func() (*topology.Snapshot, error) { return snap, nil }
	clk := clock.NewVirtual(time.Unix(0, 0))

	newLedger := func(origin topology.NodeID) *ledger.Ledger {
		l, err := ledger.New(ledger.Config{Origin: origin, Clock: clk})
		if err != nil {
			t.Fatal(err)
		}
		return l
	}

	run := func(la, lb *ledger.Ledger) (errA, errB error) {
		ba := newBroker(t, Config{Node: "A", CapacityMbps: 100, Snapshot: snapshot, Ledger: la})
		bb := newBroker(t, Config{Node: "B", CapacityMbps: 100, Snapshot: snapshot, Ledger: lb})
		_, errA = ba.Admit(Request{Class: Premium, BitrateMbps: 1.5, Links: []topology.LinkID{am, mo}})
		if la != nil && lb != nil {
			// One gossip exchange between the grant and B's attempt.
			lb.Merge(la.Sync(lb.Origin()))
		}
		_, errB = bb.Admit(Request{Class: Premium, BitrateMbps: 1.5, Links: []topology.LinkID{bm, mo}})
		return errA, errB
	}

	// Per-server brokers: both grants land, jointly oversubscribing the trunk.
	errA, errB := run(nil, nil)
	if errA != nil || errB != nil {
		t.Fatalf("per-server brokers refused: %v / %v", errA, errB)
	}

	// Ledger-backed brokers: the second grant is refused on the trunk.
	la, lb := newLedger("A"), newLedger("B")
	errA, errB = run(la, lb)
	if errA != nil {
		t.Fatalf("first ledger-backed grant refused: %v", errA)
	}
	var rej *RejectedError
	if !errors.As(errB, &rej) || rej.Reason != ReasonLink {
		t.Fatalf("second ledger-backed grant: got %v, want link rejection", errB)
	}
}

// TestLedgerReleaseFreesRemoteHeadroom pins the release path: once A's
// session ends and the release gossips over, B's identical request fits.
func TestLedgerReleaseFreesRemoteHeadroom(t *testing.T) {
	g := topology.NewGraph()
	for _, n := range []topology.NodeID{"A", "B", "M", "O"} {
		if err := g.AddNode(n); err != nil {
			t.Fatal(err)
		}
	}
	am, _ := g.AddLink("A", "M", 10)
	bm, _ := g.AddLink("B", "M", 10)
	mo, _ := g.AddLink("M", "O", 2)
	snap, err := topology.NewSnapshot(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	clk := clock.NewVirtual(time.Unix(0, 0))
	la, err := ledger.New(ledger.Config{Origin: "A", Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	lb, err := ledger.New(ledger.Config{Origin: "B", Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	snapshot := func() (*topology.Snapshot, error) { return snap, nil }
	ba := newBroker(t, Config{Node: "A", CapacityMbps: 100, Snapshot: snapshot, Ledger: la})
	bb := newBroker(t, Config{Node: "B", CapacityMbps: 100, Snapshot: snapshot, Ledger: lb})

	ga, err := ba.Admit(Request{Class: Premium, BitrateMbps: 1.5, Links: []topology.LinkID{am, mo}})
	if err != nil {
		t.Fatal(err)
	}
	lb.Merge(la.Sync("B"))
	if _, err := bb.Admit(Request{Class: Premium, BitrateMbps: 1.5, Links: []topology.LinkID{bm, mo}}); err == nil {
		t.Fatal("trunk double-booked while A's session lives")
	}
	ba.Release(ga)
	lb.Merge(la.Sync("B"))
	if _, err := bb.Admit(Request{Class: Premium, BitrateMbps: 1.5, Links: []topology.LinkID{bm, mo}}); err != nil {
		t.Fatalf("B refused after A released: %v", err)
	}
}

// TestMigrateMovesReservations pins the mid-stream re-plan path: migrating a
// grant frees the old route's links, reserves the new ones, mirrors both
// into the ledger, and bumps the migration counter.
func TestMigrateMovesReservations(t *testing.T) {
	g := topology.NewGraph()
	for _, n := range []topology.NodeID{"A", "M", "O"} {
		if err := g.AddNode(n); err != nil {
			t.Fatal(err)
		}
	}
	am, _ := g.AddLink("A", "M", 10)
	mo, _ := g.AddLink("M", "O", 10)
	snap, err := topology.NewSnapshot(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	clk := clock.NewVirtual(time.Unix(0, 0))
	la, err := ledger.New(ledger.Config{Origin: "A", Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	b := newBroker(t, Config{Node: "A", CapacityMbps: 100,
		Snapshot: func() (*topology.Snapshot, error) { return snap, nil }, Ledger: la})
	gr, err := b.Admit(Request{Class: Premium, BitrateMbps: 2, Links: []topology.LinkID{am, mo}})
	if err != nil {
		t.Fatal(err)
	}
	// The VRA re-planned onto the local replica: the trunk leg goes away.
	if !b.Migrate(gr, []topology.LinkID{am}) {
		t.Fatal("migration refused")
	}
	if got := b.LinkCommittedMbps(mo); got != 0 {
		t.Fatalf("old trunk still carries %v Mbps", got)
	}
	if got := b.LinkCommittedMbps(am); got != 2 {
		t.Fatalf("new route carries %v Mbps, want 2", got)
	}
	// The ledger rows moved too: a peer replica sees only the new route.
	lb, err := ledger.New(ledger.Config{Origin: "B", Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	lb.Merge(la.Sync("B"))
	if got := lb.RemoteReservedMbps(mo); got != 0 {
		t.Fatalf("peer still sees %v Mbps on old trunk", got)
	}
	if got := lb.RemoteReservedMbps(am); got != 2 {
		t.Fatalf("peer sees %v Mbps on new route, want 2", got)
	}
	// Same-route migration is a no-op.
	if b.Migrate(gr, []topology.LinkID{am}) {
		t.Fatal("no-op migration reported as a move")
	}
	// Released grants cannot migrate.
	b.Release(gr)
	if b.Migrate(gr, []topology.LinkID{am, mo}) {
		t.Fatal("released grant migrated")
	}
}
