package admission

import "time"

// tokenBucket is a clock-driven token bucket limiting session setup rate.
// Callers must hold the broker lock.
type tokenBucket struct {
	rate   float64 // tokens per second; <= 0 disables the bucket
	burst  float64
	tokens float64
	last   time.Time
}

func newTokenBucket(ratePerSec float64, burst int, now time.Time) *tokenBucket {
	b := float64(burst)
	if b < 1 {
		b = 1
	}
	return &tokenBucket{rate: ratePerSec, burst: b, tokens: b, last: now}
}

// refill credits tokens for the time elapsed since the last call.
func (t *tokenBucket) refill(now time.Time) {
	if t.rate <= 0 {
		return
	}
	if dt := now.Sub(t.last).Seconds(); dt > 0 {
		t.tokens += dt * t.rate
		if t.tokens > t.burst {
			t.tokens = t.burst
		}
	}
	t.last = now
}

// take consumes one token, reporting whether one was available.
func (t *tokenBucket) take(now time.Time) bool {
	if t.rate <= 0 {
		return true
	}
	t.refill(now)
	if t.tokens < 1 {
		return false
	}
	t.tokens--
	return true
}

// nextToken returns how long until a token will be available (0 when one is
// available now).
func (t *tokenBucket) nextToken(now time.Time) time.Duration {
	if t.rate <= 0 {
		return 0
	}
	t.refill(now)
	if t.tokens >= 1 {
		return 0
	}
	return time.Duration((1 - t.tokens) / t.rate * float64(time.Second))
}
