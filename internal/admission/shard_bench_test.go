package admission

import (
	"fmt"
	"sync/atomic"
	"testing"

	"dvod/internal/topology"
)

// benchGraph builds a hub-and-spoke topology for benchmarks without the
// *testing.T plumbing stressGraph needs.
func benchGraph(b *testing.B, n int) (*topology.Graph, []topology.LinkID) {
	b.Helper()
	g := topology.NewGraph()
	if err := g.AddNode("hub"); err != nil {
		b.Fatal(err)
	}
	links := make([]topology.LinkID, 0, n)
	for i := 0; i < n; i++ {
		node := topology.NodeID(fmt.Sprintf("s%02d", i))
		if err := g.AddNode(node); err != nil {
			b.Fatal(err)
		}
		id, err := g.AddLink("hub", node, 1e9)
		if err != nil {
			b.Fatal(err)
		}
		links = append(links, id)
	}
	if err := g.Validate(); err != nil {
		b.Fatal(err)
	}
	return g, links
}

// BenchmarkShardedAdmission measures the full admit-then-release cycle under
// parallel load, per shard count — the contention profile the Ext-18 study
// commits as BENCH_contention.json. Each worker admits over a distinct spoke
// link so shard locks actually spread; the token bucket is disabled
// (SessionsPerSec=0) so the benchmark measures the reservation path, not the
// pacing policy.
func BenchmarkShardedAdmission(b *testing.B) {
	g, links := benchGraph(b, 64)
	snap, err := topology.NewSnapshot(g, nil)
	if err != nil {
		b.Fatal(err)
	}
	for _, shards := range []int{1, 2, 4, 8} {
		shards := shards
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			br, err := New(Config{
				Node:         "hub",
				CapacityMbps: 1e12,
				MaxSessions:  1 << 30,
				Shards:       shards,
				Snapshot:     func() (*topology.Snapshot, error) { return snap, nil },
			})
			if err != nil {
				b.Fatal(err)
			}
			var worker atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				link := links[int(worker.Add(1))%len(links)]
				route := []topology.LinkID{link}
				for pb.Next() {
					g, err := br.Admit(Request{Class: Premium, BitrateMbps: 4, Links: route})
					if err != nil {
						b.Error(err)
						return
					}
					br.Release(g)
				}
			})
		})
	}
}
