package workload

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"dvod/internal/topology"
)

func TestTraceSaveLoadRoundTrip(t *testing.T) {
	trace, err := GenerateTrace(TraceConfig{
		Titles:     []string{"a", "b"},
		Clients:    []topology.NodeID{"U1", "U2"},
		Theta:      0.7,
		RatePerSec: 2,
		Start:      t0,
		Duration:   30 * time.Second,
		Seed:       5,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveTrace(&buf, trace); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(trace) {
		t.Fatalf("loaded %d of %d requests", len(got), len(trace))
	}
	for i := range trace {
		if !got[i].At.Equal(trace[i].At) || got[i].Client != trace[i].Client || got[i].Title != trace[i].Title {
			t.Fatalf("request %d: %+v vs %+v", i, got[i], trace[i])
		}
	}
}

func TestLoadTraceRejectsBadInput(t *testing.T) {
	cases := []string{
		`{bad`,
		`{"At":"2000-04-10T08:00:00Z","Client":"","Title":"x"}`,
		`{"At":"2000-04-10T08:00:00Z","Client":"U1","Title":""}`,
		`{"At":"0001-01-01T00:00:00Z","Client":"U1","Title":"x"}`,
	}
	for _, c := range cases {
		if _, err := LoadTrace(strings.NewReader(c)); err == nil {
			t.Fatalf("accepted %s", c)
		}
	}
	// Out-of-order.
	ooo := `{"At":"2000-04-10T09:00:00Z","Client":"U1","Title":"x"}
{"At":"2000-04-10T08:00:00Z","Client":"U1","Title":"x"}`
	if _, err := LoadTrace(strings.NewReader(ooo)); err == nil {
		t.Fatal("out-of-order trace accepted")
	}
	// Empty is fine.
	got, err := LoadTrace(strings.NewReader(""))
	if err != nil || len(got) != 0 {
		t.Fatalf("empty: %v %d", err, len(got))
	}
}
