package workload

import (
	"encoding/json"
	"fmt"
	"io"
)

// SaveTrace writes a request trace as NDJSON, one request per line, so
// generated workloads can be archived and replayed exactly.
func SaveTrace(w io.Writer, trace []Request) error {
	enc := json.NewEncoder(w)
	for i, r := range trace {
		if err := enc.Encode(r); err != nil {
			return fmt.Errorf("save trace: request %d: %w", i, err)
		}
	}
	return nil
}

// LoadTrace reads an NDJSON request trace, validating time ordering.
func LoadTrace(r io.Reader) ([]Request, error) {
	var out []Request
	dec := json.NewDecoder(r)
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return nil, fmt.Errorf("load trace: %w", err)
		}
		if req.Client == "" || req.Title == "" || req.At.IsZero() {
			return nil, fmt.Errorf("load trace: request %d incomplete: %+v", len(out), req)
		}
		if len(out) > 0 && req.At.Before(out[len(out)-1].At) {
			return nil, fmt.Errorf("load trace: request %d out of order", len(out))
		}
		out = append(out, req)
	}
}
