package workload

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"dvod/internal/grnet"
	"dvod/internal/topology"
)

var t0 = time.Date(2000, time.April, 10, 8, 0, 0, 0, time.UTC)

func TestNewZipfValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewZipfTitles(nil, 1, rng); err == nil {
		t.Fatal("empty titles accepted")
	}
	if _, err := NewZipfTitles([]string{"a"}, -1, rng); err == nil {
		t.Fatal("negative theta accepted")
	}
	if _, err := NewZipfTitles([]string{"a"}, math.NaN(), rng); err == nil {
		t.Fatal("NaN theta accepted")
	}
	if _, err := NewZipfTitles([]string{"a"}, 1, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
}

func TestZipfProbsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	z, err := NewZipfTitles([]string{"a", "b", "c", "d"}, 0.729, rng)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for i := range 4 {
		p := z.Prob(i)
		if p <= 0 {
			t.Fatalf("Prob(%d) = %g", i, p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("probabilities sum to %g", sum)
	}
	if z.Prob(-1) != 0 || z.Prob(4) != 0 {
		t.Fatal("out-of-range Prob should be 0")
	}
}

func TestZipfSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	titles := make([]string, 20)
	for i := range titles {
		titles[i] = string(rune('a' + i))
	}
	z, err := NewZipfTitles(titles, 1.0, rng)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const n = 20000
	for range n {
		counts[z.Sample()]++
	}
	// Rank 1 should be sampled far more than rank 20: expected ratio 20:1.
	if counts["a"] < 5*counts[titles[19]] {
		t.Fatalf("rank1=%d rank20=%d: insufficient skew", counts["a"], counts[titles[19]])
	}
	// Empirical top-rank frequency ≈ theoretical within 20%%.
	want := z.Prob(0)
	got := float64(counts["a"]) / n
	if math.Abs(got-want)/want > 0.2 {
		t.Fatalf("rank1 frequency %g, theoretical %g", got, want)
	}
}

func TestZipfUniformWhenThetaZero(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	z, err := NewZipfTitles([]string{"a", "b"}, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(z.Prob(0)-0.5) > 1e-12 || math.Abs(z.Prob(1)-0.5) > 1e-12 {
		t.Fatalf("theta=0 probs = %g/%g", z.Prob(0), z.Prob(1))
	}
}

func TestPoissonValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, rate := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := NewPoisson(rate, rng); err == nil {
			t.Fatalf("rate %g accepted", rate)
		}
	}
	if _, err := NewPoisson(1, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
}

func TestPoissonMeanRate(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p, err := NewPoisson(10, rng) // mean gap 100ms
	if err != nil {
		t.Fatal(err)
	}
	var total time.Duration
	const n = 10000
	for range n {
		g := p.Next()
		if g <= 0 {
			t.Fatal("non-positive gap")
		}
		total += g
	}
	mean := total / n
	if mean < 80*time.Millisecond || mean > 120*time.Millisecond {
		t.Fatalf("mean gap = %v, want ≈100ms", mean)
	}
}

func TestGenerateTrace(t *testing.T) {
	cfg := TraceConfig{
		Titles:     []string{"a", "b", "c"},
		Clients:    []topology.NodeID{"U1", "U2"},
		Theta:      0.7,
		RatePerSec: 5,
		Start:      t0,
		Duration:   time.Minute,
		Seed:       99,
	}
	trace, err := GenerateTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Expect ≈300 requests; allow wide tolerance.
	if len(trace) < 200 || len(trace) > 400 {
		t.Fatalf("trace length = %d, want ≈300", len(trace))
	}
	end := t0.Add(time.Minute)
	for i, r := range trace {
		if r.At.Before(t0) || !r.At.Before(end) {
			t.Fatalf("request %d at %v outside window", i, r.At)
		}
		if i > 0 && r.At.Before(trace[i-1].At) {
			t.Fatal("trace not time-ordered")
		}
		if r.Client != "U1" && r.Client != "U2" {
			t.Fatalf("unknown client %s", r.Client)
		}
		if r.Title == "" {
			t.Fatal("empty title")
		}
	}
	// Determinism.
	trace2, err := GenerateTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace2) != len(trace) {
		t.Fatal("trace not deterministic")
	}
	for i := range trace {
		if trace[i] != trace2[i] {
			t.Fatalf("trace diverges at %d", i)
		}
	}
}

func TestGenerateTraceValidation(t *testing.T) {
	base := TraceConfig{
		Titles: []string{"a"}, Clients: []topology.NodeID{"U1"},
		RatePerSec: 1, Start: t0, Duration: time.Second,
	}
	noClients := base
	noClients.Clients = nil
	if _, err := GenerateTrace(noClients); err == nil {
		t.Fatal("no clients accepted")
	}
	noDur := base
	noDur.Duration = 0
	if _, err := GenerateTrace(noDur); err == nil {
		t.Fatal("zero duration accepted")
	}
	noTitles := base
	noTitles.Titles = nil
	if _, err := GenerateTrace(noTitles); err == nil {
		t.Fatal("no titles accepted")
	}
	badRate := base
	badRate.RatePerSec = 0
	if _, err := GenerateTrace(badRate); err == nil {
		t.Fatal("zero rate accepted")
	}
}

func TestDiurnalModelEndpoints(t *testing.T) {
	m := NewDiurnalModel(grnet.Table2())
	pa := topology.MakeLinkID(grnet.Patra, grnet.Athens)
	// Exactly at sample hours the model returns the Table 2 values.
	cases := []struct {
		hour float64
		want float64
	}{
		{8, 0.200}, {10, 1.820}, {16, 1.820}, {18, 1.820},
	}
	for _, tc := range cases {
		got, err := m.TrafficMbps(pa, tc.hour)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tc.want) > 1e-9 {
			t.Fatalf("traffic @%gh = %g, want %g", tc.hour, got, tc.want)
		}
	}
	// Midpoint interpolation: 9am is halfway between 0.2 and 1.82.
	got, err := m.TrafficMbps(pa, 9)
	if err != nil {
		t.Fatal(err)
	}
	if want := 1.01; math.Abs(got-want) > 1e-9 {
		t.Fatalf("traffic @9h = %g, want %g", got, want)
	}
	// Clamping outside the measured window.
	before, err := m.TrafficMbps(pa, 3)
	if err != nil {
		t.Fatal(err)
	}
	after, err := m.TrafficMbps(pa, 23)
	if err != nil {
		t.Fatal(err)
	}
	if before != 0.200 || after != 1.820 {
		t.Fatalf("clamps = %g/%g", before, after)
	}
	if _, err := m.TrafficMbps("no--link", 10); err == nil {
		t.Fatal("unknown link accepted")
	}
}

func TestDiurnalTrafficAt(t *testing.T) {
	m := NewDiurnalModel(grnet.Table2())
	pa := topology.MakeLinkID(grnet.Patra, grnet.Athens)
	at := time.Date(2000, time.April, 10, 9, 0, 0, 0, time.UTC)
	got, err := m.TrafficAt(pa, at)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1.01) > 1e-9 {
		t.Fatalf("TrafficAt 9:00 = %g, want 1.01", got)
	}
}

func TestDiurnalLinks(t *testing.T) {
	m := NewDiurnalModel(grnet.Table2())
	links := m.Links()
	if len(links) != 7 {
		t.Fatalf("Links = %d, want 7", len(links))
	}
	for i := 1; i < len(links); i++ {
		if links[i-1] >= links[i] {
			t.Fatal("Links not sorted")
		}
	}
}
