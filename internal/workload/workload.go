// Package workload generates the synthetic demand the experiments run
// against: Zipf-distributed title popularity (the classical VoD demand
// model behind the paper's "most popular" caching concept), Poisson request
// arrivals, and a diurnal background-traffic model that interpolates the
// paper's Table 2 measurements across the day.
package workload

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"dvod/internal/grnet"
	"dvod/internal/topology"
)

// ZipfTitles samples title names with Zipf(theta) popularity: the i-th most
// popular title (1-based rank) has probability proportional to 1/i^theta.
// theta = 0 is uniform; the VoD literature commonly uses theta ≈ 0.729.
type ZipfTitles struct {
	titles []string
	cdf    []float64
	rng    *rand.Rand
}

// NewZipfTitles builds a sampler. Rank order follows the slice order: the
// first title is the most popular.
func NewZipfTitles(titles []string, theta float64, rng *rand.Rand) (*ZipfTitles, error) {
	if len(titles) == 0 {
		return nil, errors.New("zipf: no titles")
	}
	if theta < 0 || math.IsNaN(theta) || math.IsInf(theta, 0) {
		return nil, fmt.Errorf("zipf: bad theta %g", theta)
	}
	if rng == nil {
		return nil, errors.New("zipf: nil rng")
	}
	cdf := make([]float64, len(titles))
	var sum float64
	for i := range titles {
		sum += 1 / math.Pow(float64(i+1), theta)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &ZipfTitles{
		titles: append([]string(nil), titles...),
		cdf:    cdf,
		rng:    rng,
	}, nil
}

// Sample draws one title name.
func (z *ZipfTitles) Sample() string {
	u := z.rng.Float64()
	i := sort.SearchFloat64s(z.cdf, u)
	if i >= len(z.titles) {
		i = len(z.titles) - 1
	}
	return z.titles[i]
}

// Prob returns the sampling probability of the rank-i (0-based) title.
func (z *ZipfTitles) Prob(i int) float64 {
	if i < 0 || i >= len(z.cdf) {
		return 0
	}
	if i == 0 {
		return z.cdf[0]
	}
	return z.cdf[i] - z.cdf[i-1]
}

// Poisson generates exponential interarrival times for a Poisson process.
type Poisson struct {
	ratePerSec float64
	rng        *rand.Rand
}

// NewPoisson builds an arrival process with the given mean rate (requests
// per second).
func NewPoisson(ratePerSec float64, rng *rand.Rand) (*Poisson, error) {
	if ratePerSec <= 0 || math.IsNaN(ratePerSec) || math.IsInf(ratePerSec, 0) {
		return nil, fmt.Errorf("poisson: bad rate %g", ratePerSec)
	}
	if rng == nil {
		return nil, errors.New("poisson: nil rng")
	}
	return &Poisson{ratePerSec: ratePerSec, rng: rng}, nil
}

// Next draws the next interarrival gap.
func (p *Poisson) Next() time.Duration {
	sec := p.rng.ExpFloat64() / p.ratePerSec
	d := time.Duration(sec * float64(time.Second))
	if d <= 0 {
		d = time.Nanosecond
	}
	return d
}

// Request is one client demand event in a generated trace.
type Request struct {
	At     time.Time
	Client topology.NodeID
	Title  string
}

// TraceConfig parameterizes GenerateTrace.
type TraceConfig struct {
	// Titles in popularity-rank order.
	Titles []string
	// Clients are the nodes requests originate from (uniformly).
	Clients []topology.NodeID
	// Theta is the Zipf skew.
	Theta float64
	// RatePerSec is the aggregate Poisson arrival rate.
	RatePerSec float64
	// Start and Duration bound the trace.
	Start    time.Time
	Duration time.Duration
	// Seed makes the trace reproducible.
	Seed int64
}

// GenerateTrace produces a time-ordered request trace.
func GenerateTrace(cfg TraceConfig) ([]Request, error) {
	if len(cfg.Clients) == 0 {
		return nil, errors.New("trace: no clients")
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("trace: bad duration %v", cfg.Duration)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	zipf, err := NewZipfTitles(cfg.Titles, cfg.Theta, rng)
	if err != nil {
		return nil, err
	}
	poisson, err := NewPoisson(cfg.RatePerSec, rng)
	if err != nil {
		return nil, err
	}
	var out []Request
	end := cfg.Start.Add(cfg.Duration)
	for at := cfg.Start.Add(poisson.Next()); at.Before(end); at = at.Add(poisson.Next()) {
		out = append(out, Request{
			At:     at,
			Client: cfg.Clients[rng.Intn(len(cfg.Clients))],
			Title:  zipf.Sample(),
		})
	}
	return out, nil
}

// DiurnalModel interpolates per-link background traffic across the day from
// the paper's four Table 2 sample points (8am, 10am, 4pm, 6pm). Between
// samples traffic is linear; before 8am and after 6pm it is clamped to the
// nearest sample (the paper gives no overnight data).
type DiurnalModel struct {
	byLink map[topology.LinkID][4]float64
}

// NewDiurnalModel builds the model from the Table 2 rows.
func NewDiurnalModel(rows []grnet.LinkLoad) *DiurnalModel {
	m := &DiurnalModel{byLink: make(map[topology.LinkID][4]float64, len(rows))}
	for _, r := range rows {
		m.byLink[topology.MakeLinkID(r.A, r.B)] = r.TrafficMbps
	}
	return m
}

// sampleHours are the Table 2 measurement hours in day-fraction form.
var sampleHours = [4]float64{8, 10, 16, 18}

// TrafficMbps returns the interpolated background traffic of the link at
// the given hour-of-day (fractional hours allowed, e.g. 9.5 = 9:30am).
func (m *DiurnalModel) TrafficMbps(id topology.LinkID, hourOfDay float64) (float64, error) {
	samples, ok := m.byLink[id]
	if !ok {
		return 0, fmt.Errorf("%w: %s", topology.ErrLinkUnknown, id)
	}
	h := hourOfDay
	if h <= sampleHours[0] {
		return samples[0], nil
	}
	if h >= sampleHours[3] {
		return samples[3], nil
	}
	for i := 1; i < 4; i++ {
		if h <= sampleHours[i] {
			t := (h - sampleHours[i-1]) / (sampleHours[i] - sampleHours[i-1])
			return samples[i-1] + t*(samples[i]-samples[i-1]), nil
		}
	}
	return samples[3], nil
}

// TrafficAt returns the interpolated background traffic at a wall-clock
// instant, using the time's hour and minute.
func (m *DiurnalModel) TrafficAt(id topology.LinkID, at time.Time) (float64, error) {
	h := float64(at.Hour()) + float64(at.Minute())/60 + float64(at.Second())/3600
	return m.TrafficMbps(id, h)
}

// Links returns the link IDs covered by the model, sorted.
func (m *DiurnalModel) Links() []topology.LinkID {
	out := make([]topology.LinkID, 0, len(m.byLink))
	for id := range m.byLink {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
