package media

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestTitleValidate(t *testing.T) {
	good := Title{Name: "x", SizeBytes: 1, BitrateMbps: 1}
	if err := good.Validate(); err != nil {
		t.Fatalf("Validate(good): %v", err)
	}
	bad := []Title{
		{Name: "", SizeBytes: 1, BitrateMbps: 1},
		{Name: "x", SizeBytes: 0, BitrateMbps: 1},
		{Name: "x", SizeBytes: 1, BitrateMbps: 0},
		{Name: "x", SizeBytes: -4, BitrateMbps: 1},
	}
	for _, b := range bad {
		if err := b.Validate(); err == nil {
			t.Fatalf("Validate accepted %+v", b)
		}
	}
}

func TestTitleDuration(t *testing.T) {
	// 1.5 Mbps, 1.5e6 bits = 187500 bytes → exactly 1 second.
	tt := Title{Name: "x", SizeBytes: 187500, BitrateMbps: 1.5}
	if d := tt.Duration(); d != time.Second {
		t.Fatalf("Duration = %v, want 1s", d)
	}
}

func TestContentDeterministic(t *testing.T) {
	a := Content("movie", 0, 1024)
	b := Content("movie", 0, 1024)
	if !bytes.Equal(a, b) {
		t.Fatal("same title/offset produced different content")
	}
	c := Content("other", 0, 1024)
	if bytes.Equal(a, c) {
		t.Fatal("different titles produced identical content")
	}
}

func TestContentRandomAccessConsistency(t *testing.T) {
	whole := Content("movie", 0, 4096)
	for _, tc := range []struct{ off, n int64 }{
		{0, 1}, {1, 63}, {63, 2}, {64, 64}, {100, 1000}, {4000, 96}, {17, 4079},
	} {
		part := Content("movie", tc.off, tc.n)
		if !bytes.Equal(part, whole[tc.off:tc.off+tc.n]) {
			t.Fatalf("Content(%d,%d) disagrees with prefix read", tc.off, tc.n)
		}
	}
}

func TestContentAtEmptyAndNegative(t *testing.T) {
	ContentAt("x", 0, nil) // must not panic
	defer func() {
		if recover() == nil {
			t.Fatal("negative offset did not panic")
		}
	}()
	ContentAt("x", -1, make([]byte, 1))
}

func TestVerify(t *testing.T) {
	data := Content("movie", 100, 5000)
	if !Verify("movie", 100, data) {
		t.Fatal("Verify rejected correct content")
	}
	data[4321] ^= 0xff
	if Verify("movie", 100, data) {
		t.Fatal("Verify accepted corrupted content")
	}
	if !Verify("movie", 0, nil) {
		t.Fatal("Verify rejected empty slice")
	}
}

func TestChecksumMatchesBytes(t *testing.T) {
	data := Content("movie", 7, 9001)
	if Checksum("movie", 7, 9001) != ChecksumBytes(data) {
		t.Fatal("streaming checksum disagrees with materialized checksum")
	}
	if Checksum("movie", 0, 100) == Checksum("movie", 1, 100) {
		t.Fatal("checksums of different ranges collide suspiciously")
	}
}

// Property: concatenating two adjacent reads equals one combined read.
func TestContentConcatenationProperty(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		off := r.Int63n(10000)
		n1 := 1 + r.Int63n(500)
		n2 := 1 + r.Int63n(500)
		joined := Content("prop-title", off, n1+n2)
		a := Content("prop-title", off, n1)
		b := Content("prop-title", off+n1, n2)
		return bytes.Equal(joined, append(a, b...))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: content is incompressible-ish — byte value distribution is not
// degenerate (no single byte value dominates a large sample).
func TestContentDistribution(t *testing.T) {
	data := Content("distribution", 0, 1<<16)
	var counts [256]int
	for _, b := range data {
		counts[b]++
	}
	for v, c := range counts {
		if c > len(data)/32 {
			t.Fatalf("byte value %d appears %d times in %d bytes", v, c, len(data))
		}
	}
}

func TestGenerateLibrary(t *testing.T) {
	spec := DefaultLibrarySpec()
	rng := rand.New(rand.NewSource(42))
	lib, err := GenerateLibrary(spec, rng)
	if err != nil {
		t.Fatalf("GenerateLibrary: %v", err)
	}
	if len(lib) != spec.Count {
		t.Fatalf("library size = %d, want %d", len(lib), spec.Count)
	}
	seen := map[string]bool{}
	for _, title := range lib {
		if err := title.Validate(); err != nil {
			t.Fatalf("generated invalid title: %v", err)
		}
		if title.SizeBytes < spec.MinBytes || title.SizeBytes > spec.MaxBytes {
			t.Fatalf("size %d outside [%d,%d]", title.SizeBytes, spec.MinBytes, spec.MaxBytes)
		}
		if seen[title.Name] {
			t.Fatalf("duplicate title name %s", title.Name)
		}
		seen[title.Name] = true
	}
	// Deterministic for a fixed seed.
	lib2, err := GenerateLibrary(spec, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range lib {
		if lib[i] != lib2[i] {
			t.Fatalf("library not deterministic at %d: %+v vs %+v", i, lib[i], lib2[i])
		}
	}
}

func TestGenerateLibraryValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bad := []LibrarySpec{
		{Count: 0, MinBytes: 1, MaxBytes: 2},
		{Count: 1, MinBytes: 0, MaxBytes: 2},
		{Count: 1, MinBytes: 5, MaxBytes: 2},
	}
	for _, spec := range bad {
		if _, err := GenerateLibrary(spec, rng); err == nil {
			t.Fatalf("GenerateLibrary accepted %+v", spec)
		}
	}
	// Defaults applied.
	lib, err := GenerateLibrary(LibrarySpec{Count: 1, MinBytes: 10, MaxBytes: 10}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if lib[0].BitrateMbps != 1.5 {
		t.Fatalf("default bitrate = %g, want 1.5", lib[0].BitrateMbps)
	}
}
