package media

import (
	"bytes"
	"io"
	"testing"
)

func TestReaderSequential(t *testing.T) {
	title := Title{Name: "r", SizeBytes: 1000, BitrateMbps: 1.5}
	r, err := NewReader(title)
	if err != nil {
		t.Fatal(err)
	}
	if r.Size() != 1000 {
		t.Fatalf("Size = %d", r.Size())
	}
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1000 || !Verify("r", 0, got) {
		t.Fatalf("read %d bytes, verified=%v", len(got), Verify("r", 0, got))
	}
	// At EOF further reads return EOF.
	n, err := r.Read(make([]byte, 1))
	if n != 0 || err != io.EOF {
		t.Fatalf("post-EOF read = %d, %v", n, err)
	}
}

func TestReaderShortFinalRead(t *testing.T) {
	title := Title{Name: "r2", SizeBytes: 10, BitrateMbps: 1.5}
	r, err := NewReader(title)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 7)
	n1, err := r.Read(buf)
	if n1 != 7 || err != nil {
		t.Fatalf("read 1 = %d, %v", n1, err)
	}
	n2, err := r.Read(buf)
	if n2 != 3 || err != io.EOF {
		t.Fatalf("read 2 = %d, %v (want 3, EOF)", n2, err)
	}
}

func TestReaderSeek(t *testing.T) {
	title := Title{Name: "r3", SizeBytes: 100, BitrateMbps: 1.5}
	r, err := NewReader(title)
	if err != nil {
		t.Fatal(err)
	}
	if pos, err := r.Seek(40, io.SeekStart); err != nil || pos != 40 {
		t.Fatalf("SeekStart = %d, %v", pos, err)
	}
	chunk := make([]byte, 10)
	if _, err := io.ReadFull(r, chunk); err != nil {
		t.Fatal(err)
	}
	if !Verify("r3", 40, chunk) {
		t.Fatal("seeked content mismatch")
	}
	if pos, err := r.Seek(-5, io.SeekCurrent); err != nil || pos != 45 {
		t.Fatalf("SeekCurrent = %d, %v", pos, err)
	}
	if pos, err := r.Seek(-10, io.SeekEnd); err != nil || pos != 90 {
		t.Fatalf("SeekEnd = %d, %v", pos, err)
	}
	if _, err := r.Seek(-1, io.SeekStart); err == nil {
		t.Fatal("negative position accepted")
	}
	if _, err := r.Seek(0, 99); err == nil {
		t.Fatal("bad whence accepted")
	}
	// Seeking past EOF then reading yields EOF.
	if _, err := r.Seek(10, io.SeekEnd); err != nil {
		t.Fatal(err)
	}
	if n, err := r.Read(chunk); n != 0 || err != io.EOF {
		t.Fatalf("past-EOF read = %d, %v", n, err)
	}
}

func TestReaderMatchesContent(t *testing.T) {
	title := Title{Name: "r4", SizeBytes: 5000, BitrateMbps: 1.5}
	r, err := NewReader(title)
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if _, err := io.Copy(&got, r); err != nil {
		t.Fatal(err)
	}
	want := Content("r4", 0, 5000)
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatal("reader content diverges from Content")
	}
}

func TestNewReaderValidation(t *testing.T) {
	if _, err := NewReader(Title{}); err == nil {
		t.Fatal("invalid title accepted")
	}
}
