package media

import (
	"errors"
	"fmt"
	"io"
)

// Reader is an io.ReadSeeker over a title's canonical synthetic content —
// the stand-in for opening the encoded video file. It is cheap to create
// (content is generated on the fly) and safe for sequential use; it is not
// safe for concurrent use.
type Reader struct {
	name string
	size int64
	off  int64
}

var (
	_ io.Reader = (*Reader)(nil)
	_ io.Seeker = (*Reader)(nil)
)

// NewReader opens the title's content stream.
func NewReader(t Title) (*Reader, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &Reader{name: t.Name, size: t.SizeBytes}, nil
}

// Size returns the title's total size.
func (r *Reader) Size() int64 { return r.size }

// Read implements io.Reader.
func (r *Reader) Read(p []byte) (int, error) {
	if r.off >= r.size {
		return 0, io.EOF
	}
	n := int64(len(p))
	if r.off+n > r.size {
		n = r.size - r.off
	}
	ContentAt(r.name, r.off, p[:n])
	r.off += n
	var err error
	if r.off >= r.size && n < int64(len(p)) {
		err = io.EOF
	}
	return int(n), err
}

// Seek implements io.Seeker.
func (r *Reader) Seek(offset int64, whence int) (int64, error) {
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = r.off
	case io.SeekEnd:
		base = r.size
	default:
		return 0, fmt.Errorf("media reader: bad whence %d", whence)
	}
	next := base + offset
	if next < 0 {
		return 0, errors.New("media reader: negative position")
	}
	r.off = next
	return next, nil
}
