package media

import (
	"fmt"
	"math/rand"
	"sort"
)

// LibrarySpec controls synthetic library generation.
type LibrarySpec struct {
	// Count is the number of titles to generate.
	Count int
	// MinBytes and MaxBytes bound the uniform size distribution.
	MinBytes, MaxBytes int64
	// BitrateMbps is the common playback bitrate (paper-era MPEG-1/2
	// streams run 1.5-8 Mbps). Zero defaults to 1.5.
	BitrateMbps float64
	// NamePrefix prefixes generated names; zero defaults to "title".
	NamePrefix string
}

// DefaultLibrarySpec is a small library suitable for examples and tests:
// 50 titles of 256 KiB - 1 MiB at 1.5 Mbps.
func DefaultLibrarySpec() LibrarySpec {
	return LibrarySpec{
		Count:       50,
		MinBytes:    256 << 10,
		MaxBytes:    1 << 20,
		BitrateMbps: 1.5,
		NamePrefix:  "title",
	}
}

// GenerateLibrary produces a deterministic synthetic library from the spec
// and the seeded random source. Titles are returned sorted by name.
func GenerateLibrary(spec LibrarySpec, rng *rand.Rand) ([]Title, error) {
	if spec.Count <= 0 {
		return nil, fmt.Errorf("library count must be positive, got %d", spec.Count)
	}
	if spec.MinBytes <= 0 || spec.MaxBytes < spec.MinBytes {
		return nil, fmt.Errorf("bad size bounds [%d, %d]", spec.MinBytes, spec.MaxBytes)
	}
	bitrate := spec.BitrateMbps
	if bitrate == 0 {
		bitrate = 1.5
	}
	prefix := spec.NamePrefix
	if prefix == "" {
		prefix = "title"
	}
	out := make([]Title, 0, spec.Count)
	width := len(fmt.Sprintf("%d", spec.Count-1))
	for i := range spec.Count {
		size := spec.MinBytes
		if spec.MaxBytes > spec.MinBytes {
			size += rng.Int63n(spec.MaxBytes - spec.MinBytes + 1)
		}
		t := Title{
			Name:        fmt.Sprintf("%s-%0*d", prefix, width, i),
			SizeBytes:   size,
			BitrateMbps: bitrate,
		}
		if err := t.Validate(); err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}
