// Package media models video titles and their content. Because the paper's
// algorithms never inspect video bytes — only sizes, bitrates, and cluster
// boundaries — real MPEG assets are replaced by synthetic titles whose
// content at any offset is a pure function of (title name, offset). That
// determinism lets the test suite verify end-to-end integrity: bytes striped
// onto disks, served over the network, and reassembled by a player must equal
// ContentAt for the same ranges.
package media

import (
	"errors"
	"fmt"
	"hash/fnv"
	"time"
)

// Title describes one video available in the VoD service.
type Title struct {
	// Name is the unique catalog name, e.g. "Zorba the Greek".
	Name string `json:"name"`
	// SizeBytes is the encoded size of the title.
	SizeBytes int64 `json:"sizeBytes"`
	// BitrateMbps is the playback bitrate; it sets both the duration and
	// the minimum delivery rate for stall-free playback.
	BitrateMbps float64 `json:"bitrateMbps"`
}

// Validate checks the title is well formed.
func (t Title) Validate() error {
	if t.Name == "" {
		return errors.New("title has empty name")
	}
	if t.SizeBytes <= 0 {
		return fmt.Errorf("title %q has non-positive size %d", t.Name, t.SizeBytes)
	}
	if t.BitrateMbps <= 0 {
		return fmt.Errorf("title %q has non-positive bitrate %g", t.Name, t.BitrateMbps)
	}
	return nil
}

// Duration returns the playback duration implied by size and bitrate.
func (t Title) Duration() time.Duration {
	seconds := float64(t.SizeBytes*8) / (t.BitrateMbps * 1e6)
	return time.Duration(seconds * float64(time.Second))
}

// seed derives a 64-bit stream seed from the title name.
func seed(name string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	s := h.Sum64()
	if s == 0 {
		s = 0x9e3779b97f4a7c15
	}
	return s
}

// blockBytes is the internal generation granularity: content is produced in
// 64-byte blocks so that random access at any offset is cheap.
const blockBytes = 64

// splitmix64 advances a splitmix64 state and returns the next value. It is
// the standard seeding PRNG: fast, full-period, and well distributed.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// fillBlock writes the deterministic content of the idx-th 64-byte block of
// the named title into dst (which must be blockBytes long).
func fillBlock(s uint64, idx int64, dst []byte) {
	state := s ^ (uint64(idx) * 0xd1342543de82ef95)
	for i := 0; i < blockBytes; i += 8 {
		state = splitmix64(state)
		v := state
		for j := range 8 {
			dst[i+j] = byte(v >> (8 * j))
		}
	}
}

// ContentAt fills buf with the title's content starting at offset off.
// Offsets past the title's logical size are still defined (the stream is
// infinite); callers bound reads by Title.SizeBytes.
func ContentAt(name string, off int64, buf []byte) {
	if len(buf) == 0 {
		return
	}
	if off < 0 {
		panic(fmt.Sprintf("media: negative offset %d", off))
	}
	s := seed(name)
	var block [blockBytes]byte
	idx := off / blockBytes
	skip := off % blockBytes
	written := 0
	for written < len(buf) {
		fillBlock(s, idx, block[:])
		n := copy(buf[written:], block[skip:])
		written += n
		skip = 0
		idx++
	}
}

// Content returns a freshly allocated byte slice with the title's content in
// [off, off+length).
func Content(name string, off, length int64) []byte {
	buf := make([]byte, length)
	ContentAt(name, off, buf)
	return buf
}

// Checksum returns a 64-bit FNV-1a checksum of the title's content in
// [off, off+length), computed without materializing the whole range.
func Checksum(name string, off, length int64) uint64 {
	h := fnv.New64a()
	var chunk [4096]byte
	for length > 0 {
		n := int64(len(chunk))
		if length < n {
			n = length
		}
		ContentAt(name, off, chunk[:n])
		_, _ = h.Write(chunk[:n])
		off += n
		length -= n
	}
	return h.Sum64()
}

// ChecksumBytes returns the FNV-1a checksum of data, for comparing delivered
// bytes against Checksum.
func ChecksumBytes(data []byte) uint64 {
	h := fnv.New64a()
	_, _ = h.Write(data)
	return h.Sum64()
}

// Verify reports whether data equals the title's content at offset off.
func Verify(name string, off int64, data []byte) bool {
	var chunk [4096]byte
	for len(data) > 0 {
		n := len(chunk)
		if len(data) < n {
			n = len(data)
		}
		ContentAt(name, off, chunk[:n])
		for i := range n {
			if data[i] != chunk[i] {
				return false
			}
		}
		data = data[n:]
		off += int64(n)
	}
	return true
}
