package cache

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"dvod/internal/media"
	"dvod/internal/striping"
)

// recencyPolicy implements LRU and LFU over the same array/striping
// mechanics as the DMA, for the paper's design-choice ablations. Both admit
// on every miss, evicting victims until the newcomer fits.
type recencyPolicy struct {
	cfg  Config
	name string
	// victim picks the next title to evict from state; caller holds mu.
	victim func(p *recencyPolicy) (string, bool)

	mu       sync.Mutex
	resident map[string]striping.Layout
	lastUse  map[string]int64 // logical request counter at last touch
	freq     map[string]int64
	tick     int64
	stats    Stats
}

var _ Policy = (*recencyPolicy)(nil)

func newRecencyPolicy(cfg Config, name string, victim func(*recencyPolicy) (string, bool)) (*recencyPolicy, error) {
	if cfg.Array == nil {
		return nil, fmt.Errorf("%s: nil array", name)
	}
	if cfg.ClusterBytes <= 0 {
		return nil, fmt.Errorf("%s: %w: %d", name, striping.ErrBadCluster, cfg.ClusterBytes)
	}
	return &recencyPolicy{
		cfg:      cfg,
		name:     name,
		victim:   victim,
		resident: make(map[string]striping.Layout),
		lastUse:  make(map[string]int64),
		freq:     make(map[string]int64),
	}, nil
}

// NewLRU returns a least-recently-used title cache over the array.
func NewLRU(cfg Config) (Policy, error) {
	return newRecencyPolicy(cfg, "lru", func(p *recencyPolicy) (string, bool) {
		var (
			name  string
			use   int64
			found bool
		)
		for n := range p.resident {
			u := p.lastUse[n]
			if !found || u < use || (u == use && n < name) {
				name, use, found = n, u, true
			}
		}
		return name, found
	})
}

// NewLFU returns a least-frequently-used title cache over the array.
func NewLFU(cfg Config) (Policy, error) {
	return newRecencyPolicy(cfg, "lfu", func(p *recencyPolicy) (string, bool) {
		var (
			name  string
			f     int64
			found bool
		)
		for n := range p.resident {
			c := p.freq[n]
			if !found || c < f || (c == f && n < name) {
				name, f, found = n, c, true
			}
		}
		return name, found
	})
}

// Name implements Policy.
func (p *recencyPolicy) Name() string { return p.name }

// OnRequest implements Policy: touch on hit; on miss, evict victims until
// the title fits, then admit.
func (p *recencyPolicy) OnRequest(t media.Title) (Outcome, error) {
	if err := t.Validate(); err != nil {
		return Outcome{}, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.Requests++
	p.tick++
	p.lastUse[t.Name] = p.tick
	p.freq[t.Name]++

	if _, ok := p.resident[t.Name]; ok {
		p.stats.Hits++
		return Outcome{Hit: true}, nil
	}

	var evicted []string
	for !striping.Fits(p.cfg.Array, t, p.cfg.ClusterBytes) {
		victim, ok := p.victim(p)
		if !ok {
			// Nothing left to evict; title simply cannot be stored.
			return Outcome{Evicted: evicted}, nil
		}
		if err := striping.Delete(p.cfg.Array, p.resident[victim]); err != nil {
			return Outcome{Evicted: evicted}, fmt.Errorf("%s evict %s: %w", p.name, victim, err)
		}
		delete(p.resident, victim)
		evicted = append(evicted, victim)
		p.stats.Evictions++
	}
	layout, err := striping.Write(p.cfg.Array, t, p.cfg.ClusterBytes, p.cfg.contentFor(t.Name))
	if err != nil {
		return Outcome{Evicted: evicted}, fmt.Errorf("%s admit %s: %w", p.name, t.Name, err)
	}
	p.resident[t.Name] = layout
	p.stats.Admitted++
	return Outcome{Admitted: true, Evicted: evicted}, nil
}

// Resident implements Policy.
func (p *recencyPolicy) Resident(name string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.resident[name]
	return ok
}

// ResidentTitles implements Policy.
func (p *recencyPolicy) ResidentTitles() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.resident))
	for n := range p.resident {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Layout implements Policy.
func (p *recencyPolicy) Layout(name string) (striping.Layout, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	l, ok := p.resident[name]
	return l, ok
}

// Stats returns a copy of the run counters.
func (p *recencyPolicy) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// None is the no-cache baseline: every request misses and nothing is stored.
type None struct {
	mu    sync.Mutex
	stats Stats
}

var _ Policy = (*None)(nil)

// NewNone returns the no-cache policy.
func NewNone() *None { return &None{} }

// Name implements Policy.
func (n *None) Name() string { return "none" }

// OnRequest implements Policy: always a miss.
func (n *None) OnRequest(t media.Title) (Outcome, error) {
	if err := t.Validate(); err != nil {
		return Outcome{}, err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stats.Requests++
	return Outcome{}, nil
}

// Resident implements Policy.
func (n *None) Resident(string) bool { return false }

// ResidentTitles implements Policy.
func (n *None) ResidentTitles() []string { return nil }

// Layout implements Policy.
func (n *None) Layout(string) (striping.Layout, bool) { return striping.Layout{}, false }

// Stats returns a copy of the run counters.
func (n *None) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// StatsOf extracts run counters from any of this package's policies.
func StatsOf(p Policy) (Stats, error) {
	switch v := p.(type) {
	case *DMA:
		return v.Stats(), nil
	case *recencyPolicy:
		return v.Stats(), nil
	case *None:
		return v.Stats(), nil
	default:
		return Stats{}, errors.New("unknown policy type")
	}
}
