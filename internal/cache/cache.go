// Package cache implements the paper's Disk Manipulation Algorithm (DMA):
// each video server keeps the locally "most popular" titles on its disk
// array, counting a popularity point per request and replacing the least
// popular resident title when a sufficiently popular newcomer arrives
// (Figure 2 of the paper). Admitted titles are stored striped across the
// array (package striping).
//
// For the ablation studies, the same admission interface is implemented by
// LRU, LFU, and no-cache policies.
package cache

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"dvod/internal/disk"
	"dvod/internal/media"
	"dvod/internal/striping"
)

// Outcome reports what a policy did with one request.
type Outcome struct {
	// Hit is true when the title was already resident.
	Hit bool
	// Admitted is true when the request caused the title to be stored.
	Admitted bool
	// Evicted lists titles removed to make room, in eviction order.
	Evicted []string
}

// Policy is a title-granularity cache admission/eviction policy over a disk
// array. Implementations are safe for concurrent use.
type Policy interface {
	// Name identifies the policy ("dma", "lru", "lfu", "none").
	Name() string
	// OnRequest records a request for the title and applies the policy.
	OnRequest(t media.Title) (Outcome, error)
	// Resident reports whether the title is currently stored.
	Resident(name string) bool
	// ResidentTitles returns the stored titles, sorted by name.
	ResidentTitles() []string
	// Layout returns the striping layout of a resident title.
	Layout(name string) (striping.Layout, bool)
}

// Stats tracks hit/miss/eviction counts for a policy run.
type Stats struct {
	Requests  int64
	Hits      int64
	Admitted  int64
	Evictions int64
}

// HitRatio returns Hits/Requests (0 with no requests).
func (s Stats) HitRatio() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Requests)
}

// Config parameterizes the DMA cache.
type Config struct {
	// Array is the disk array titles are striped onto.
	Array *disk.Array
	// ClusterBytes is the stripe cluster size c.
	ClusterBytes int64
	// Content supplies title bytes; nil defaults to the synthetic
	// generator keyed by title name.
	Content func(name string) striping.ContentFunc
	// EvictUntilFits, when true, keeps evicting least-popular titles until
	// the newcomer fits (an extension; the paper's Figure 2 evicts exactly
	// one and gives up if that is not enough).
	EvictUntilFits bool
	// AdmitThreshold is the minimum accumulated points before a
	// non-fitting title may displace a resident one. The paper speaks of
	// "a certain number of times"; Figure 2 effectively uses the
	// least-popular comparison alone, which is the default (0).
	AdmitThreshold int64
	// DecayEvery, when positive, halves every title's popularity points
	// after that many requests — exponential aging. The paper's Figure 2
	// counts points forever, which makes the cache sluggish after
	// popularity drift (old favourites keep outranking new ones for a
	// long time); aging is our extension fixing that, quantified by the
	// Ext-11 study. Zero disables aging (the faithful default).
	DecayEvery int64
}

func (c Config) contentFor(name string) striping.ContentFunc {
	if c.Content == nil {
		return striping.TitleContent(name)
	}
	return c.Content(name)
}

// DMA is the paper's disk manipulation algorithm.
type DMA struct {
	cfg Config

	mu       sync.Mutex
	points   map[string]int64
	resident map[string]striping.Layout
	stats    Stats
}

var _ Policy = (*DMA)(nil)

// NewDMA builds the DMA policy over the configured array.
func NewDMA(cfg Config) (*DMA, error) {
	if cfg.Array == nil {
		return nil, errors.New("dma: nil array")
	}
	if cfg.ClusterBytes <= 0 {
		return nil, fmt.Errorf("dma: %w: %d", striping.ErrBadCluster, cfg.ClusterBytes)
	}
	return &DMA{
		cfg:      cfg,
		points:   make(map[string]int64),
		resident: make(map[string]striping.Layout),
	}, nil
}

// Name implements Policy.
func (m *DMA) Name() string { return "dma" }

// OnRequest implements the Figure 2 pseudocode:
//
//	IF video already on disk            → give a point (hit)
//	ELSE IF disks can tolerate video    → write to disks
//	ELSE give a point; IF points > least popular's points →
//	     delete least popular; IF disks can tolerate → write
func (m *DMA) OnRequest(t media.Title) (Outcome, error) {
	if err := t.Validate(); err != nil {
		return Outcome{}, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats.Requests++
	if m.cfg.DecayEvery > 0 && m.stats.Requests%m.cfg.DecayEvery == 0 {
		for name, pts := range m.points {
			m.points[name] = pts / 2
		}
	}

	if _, ok := m.resident[t.Name]; ok {
		m.points[t.Name]++
		m.stats.Hits++
		return Outcome{Hit: true}, nil
	}

	if striping.Fits(m.cfg.Array, t, m.cfg.ClusterBytes) {
		if err := m.admit(t); err != nil {
			return Outcome{}, err
		}
		return Outcome{Admitted: true}, nil
	}

	m.points[t.Name]++
	pts := m.points[t.Name]
	if pts < m.cfg.AdmitThreshold {
		return Outcome{}, nil
	}

	var evicted []string
	for {
		victim, victimPts, ok := m.leastPopularLocked()
		if !ok || pts <= victimPts {
			break
		}
		if err := striping.Delete(m.cfg.Array, m.resident[victim]); err != nil {
			return Outcome{Evicted: evicted}, fmt.Errorf("dma evict %s: %w", victim, err)
		}
		delete(m.resident, victim)
		evicted = append(evicted, victim)
		m.stats.Evictions++
		if striping.Fits(m.cfg.Array, t, m.cfg.ClusterBytes) {
			if err := m.admit(t); err != nil {
				return Outcome{Evicted: evicted}, err
			}
			return Outcome{Admitted: true, Evicted: evicted}, nil
		}
		if !m.cfg.EvictUntilFits {
			break
		}
	}
	return Outcome{Evicted: evicted}, nil
}

// admit stripes the title onto the array; caller holds the lock.
func (m *DMA) admit(t media.Title) error {
	layout, err := striping.Write(m.cfg.Array, t, m.cfg.ClusterBytes, m.cfg.contentFor(t.Name))
	if err != nil {
		return fmt.Errorf("dma admit %s: %w", t.Name, err)
	}
	m.resident[t.Name] = layout
	m.stats.Admitted++
	return nil
}

// leastPopularLocked finds the resident title with the fewest points,
// breaking ties toward the lexicographically smallest name.
func (m *DMA) leastPopularLocked() (string, int64, bool) {
	var (
		name  string
		pts   int64
		found bool
	)
	for n := range m.resident {
		p := m.points[n]
		if !found || p < pts || (p == pts && n < name) {
			name, pts, found = n, p, true
		}
	}
	return name, pts, found
}

// Resident implements Policy.
func (m *DMA) Resident(name string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.resident[name]
	return ok
}

// ResidentTitles implements Policy.
func (m *DMA) ResidentTitles() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.resident))
	for n := range m.resident {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Layout implements Policy.
func (m *DMA) Layout(name string) (striping.Layout, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	l, ok := m.resident[name]
	return l, ok
}

// Points returns the accumulated popularity points of a title.
func (m *DMA) Points(name string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.points[name]
}

// Stats returns a copy of the run counters.
func (m *DMA) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Preload stores a title unconditionally (used for service initialization:
// the administrators place the initial title distribution). It fails if the
// title does not fit.
func (m *DMA) Preload(t media.Title) error {
	if err := t.Validate(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.resident[t.Name]; ok {
		return nil
	}
	return m.admit(t)
}
