package cache

import (
	"testing"

	"dvod/internal/disk"
	"dvod/internal/media"
)

func title(name string, size int64) media.Title {
	return media.Title{Name: name, SizeBytes: size, BitrateMbps: 1.5}
}

// newDMA builds a DMA over an array of n disks × capacity bytes.
func newDMA(t *testing.T, nDisks int, capacity int64, opts ...func(*Config)) *DMA {
	t.Helper()
	arr, err := disk.NewUniformArray("c", nDisks, capacity)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Array: arr, ClusterBytes: 10}
	for _, o := range opts {
		o(&cfg)
	}
	m, err := NewDMA(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewDMAValidation(t *testing.T) {
	if _, err := NewDMA(Config{}); err == nil {
		t.Fatal("NewDMA accepted nil array")
	}
	arr, err := disk.NewUniformArray("x", 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewDMA(Config{Array: arr, ClusterBytes: 0}); err == nil {
		t.Fatal("NewDMA accepted zero cluster")
	}
}

func TestDMAAdmitsWhenFits(t *testing.T) {
	m := newDMA(t, 2, 100)
	out, err := m.OnRequest(title("a", 50))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Admitted || out.Hit || len(out.Evicted) != 0 {
		t.Fatalf("first request outcome = %+v, want plain admission", out)
	}
	if !m.Resident("a") {
		t.Fatal("title not resident after admission")
	}
	// Second request is a hit and earns a point.
	out, err = m.OnRequest(title("a", 50))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Hit || out.Admitted {
		t.Fatalf("second request outcome = %+v, want hit", out)
	}
	if m.Points("a") != 1 {
		t.Fatalf("points = %d, want 1", m.Points("a"))
	}
}

func TestDMAEvictsLeastPopular(t *testing.T) {
	// Array: 1 disk × 100 bytes. a and b fill it (50 each); c (60) cannot
	// fit. Popularity: a requested 3×, b 1×. Then repeated requests for c
	// must eventually evict b (least popular), never a.
	m := newDMA(t, 1, 100)
	for range 3 {
		if _, err := m.OnRequest(title("a", 50)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.OnRequest(title("b", 50)); err != nil {
		t.Fatal(err)
	}
	// c: point accrues per miss; b has 0 points, so first c request (1 pt)
	// already beats b.
	out, err := m.OnRequest(title("c", 60))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Evicted) != 1 || out.Evicted[0] != "b" {
		t.Fatalf("evicted %v, want [b]", out.Evicted)
	}
	// After evicting b (50 freed, 50 used by a), c (60) still does not
	// fit; Figure 2 gives up (no EvictUntilFits).
	if out.Admitted {
		t.Fatal("c admitted though it cannot fit next to a")
	}
	if m.Resident("b") {
		t.Fatal("b still resident")
	}
	if !m.Resident("a") {
		t.Fatal("a evicted though most popular")
	}
}

func TestDMAEvictUntilFits(t *testing.T) {
	m := newDMA(t, 1, 100, func(c *Config) { c.EvictUntilFits = true })
	if _, err := m.OnRequest(title("a", 50)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.OnRequest(title("b", 50)); err != nil {
		t.Fatal(err)
	}
	// c (100 bytes) needs both evicted; with one point it beats both
	// zero-point residents.
	out, err := m.OnRequest(title("c", 100))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Admitted || len(out.Evicted) != 2 {
		t.Fatalf("outcome = %+v, want admission after evicting both", out)
	}
	if !m.Resident("c") || m.Resident("a") || m.Resident("b") {
		t.Fatal("residency wrong after evict-until-fits")
	}
}

func TestDMADoesNotEvictMorePopular(t *testing.T) {
	m := newDMA(t, 1, 100)
	// a gets 5 points.
	for range 6 {
		if _, err := m.OnRequest(title("a", 100)); err != nil {
			t.Fatal(err)
		}
	}
	// b misses twice: 2 points < a's 5 → no eviction.
	for range 2 {
		out, err := m.OnRequest(title("b", 100))
		if err != nil {
			t.Fatal(err)
		}
		if len(out.Evicted) != 0 || out.Admitted {
			t.Fatalf("outcome = %+v, want nothing", out)
		}
	}
	if !m.Resident("a") {
		t.Fatal("a evicted by less popular b")
	}
	// b keeps getting requested; at 6 points it finally displaces a.
	for range 4 {
		if _, err := m.OnRequest(title("b", 100)); err != nil {
			t.Fatal(err)
		}
	}
	if !m.Resident("b") || m.Resident("a") {
		t.Fatalf("b should displace a once strictly more popular (a=%d b=%d)",
			m.Points("a"), m.Points("b"))
	}
}

func TestDMAAdmitThreshold(t *testing.T) {
	m := newDMA(t, 1, 100, func(c *Config) { c.AdmitThreshold = 3 })
	if _, err := m.OnRequest(title("a", 100)); err != nil {
		t.Fatal(err)
	}
	// b misses; below threshold nothing happens even though it has more
	// points than a (0).
	for i := range 2 {
		out, err := m.OnRequest(title("b", 100))
		if err != nil {
			t.Fatal(err)
		}
		if len(out.Evicted) != 0 {
			t.Fatalf("request %d evicted %v before threshold", i, out.Evicted)
		}
	}
	out, err := m.OnRequest(title("b", 100))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Admitted {
		t.Fatalf("outcome at threshold = %+v, want admission", out)
	}
}

func TestDMAStatsAndResidentTitles(t *testing.T) {
	m := newDMA(t, 2, 200)
	for _, name := range []string{"b", "a", "a"} {
		if _, err := m.OnRequest(title(name, 50)); err != nil {
			t.Fatal(err)
		}
	}
	s := m.Stats()
	if s.Requests != 3 || s.Hits != 1 || s.Admitted != 2 || s.Evictions != 0 {
		t.Fatalf("stats = %+v", s)
	}
	if s.HitRatio() != 1.0/3.0 {
		t.Fatalf("HitRatio = %g", s.HitRatio())
	}
	titles := m.ResidentTitles()
	if len(titles) != 2 || titles[0] != "a" || titles[1] != "b" {
		t.Fatalf("ResidentTitles = %v", titles)
	}
	if _, ok := m.Layout("a"); !ok {
		t.Fatal("Layout missing for resident title")
	}
	if _, ok := m.Layout("zzz"); ok {
		t.Fatal("Layout present for absent title")
	}
	if (Stats{}).HitRatio() != 0 {
		t.Fatal("empty HitRatio should be 0")
	}
}

func TestDMARejectsInvalidTitle(t *testing.T) {
	m := newDMA(t, 1, 100)
	if _, err := m.OnRequest(media.Title{}); err == nil {
		t.Fatal("OnRequest accepted invalid title")
	}
}

func TestDMAPreload(t *testing.T) {
	m := newDMA(t, 1, 100)
	if err := m.Preload(title("a", 60)); err != nil {
		t.Fatal(err)
	}
	if !m.Resident("a") {
		t.Fatal("preloaded title not resident")
	}
	// Idempotent.
	if err := m.Preload(title("a", 60)); err != nil {
		t.Fatal(err)
	}
	// Too big to fit alongside a.
	if err := m.Preload(title("big", 60)); err == nil {
		t.Fatal("Preload accepted non-fitting title")
	}
	if err := m.Preload(media.Title{}); err == nil {
		t.Fatal("Preload accepted invalid title")
	}
}

func TestDMAEvictionTieBreakDeterministic(t *testing.T) {
	// Two residents with equal points: lexicographically smallest goes.
	m := newDMA(t, 1, 100)
	if _, err := m.OnRequest(title("bb", 50)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.OnRequest(title("aa", 50)); err != nil {
		t.Fatal(err)
	}
	out, err := m.OnRequest(title("c", 50))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Evicted) != 1 || out.Evicted[0] != "aa" {
		t.Fatalf("evicted %v, want [aa] (lexicographic tie-break)", out.Evicted)
	}
	if !out.Admitted {
		t.Fatal("c should be admitted into freed space")
	}
}

func TestLRUEvictsLeastRecent(t *testing.T) {
	arr, err := disk.NewUniformArray("l", 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewLRU(Config{Array: arr, ClusterBytes: 10})
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "lru" {
		t.Fatalf("Name = %s", p.Name())
	}
	for _, n := range []string{"a", "b"} {
		if _, err := p.OnRequest(title(n, 50)); err != nil {
			t.Fatal(err)
		}
	}
	// Touch a so b is least recent.
	if _, err := p.OnRequest(title("a", 50)); err != nil {
		t.Fatal(err)
	}
	out, err := p.OnRequest(title("c", 50))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Admitted || len(out.Evicted) != 1 || out.Evicted[0] != "b" {
		t.Fatalf("outcome = %+v, want admit after evicting b", out)
	}
	if !p.Resident("a") || !p.Resident("c") || p.Resident("b") {
		t.Fatalf("residency wrong: %v", p.ResidentTitles())
	}
}

func TestLFUEvictsLeastFrequent(t *testing.T) {
	arr, err := disk.NewUniformArray("f", 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewLFU(Config{Array: arr, ClusterBytes: 10})
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "lfu" {
		t.Fatalf("Name = %s", p.Name())
	}
	// a requested 3×, b once.
	for range 3 {
		if _, err := p.OnRequest(title("a", 50)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.OnRequest(title("b", 50)); err != nil {
		t.Fatal(err)
	}
	out, err := p.OnRequest(title("c", 50))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Admitted || len(out.Evicted) != 1 || out.Evicted[0] != "b" {
		t.Fatalf("outcome = %+v, want admit after evicting b", out)
	}
}

func TestRecencyPolicyOversizedTitle(t *testing.T) {
	arr, err := disk.NewUniformArray("l", 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewLRU(Config{Array: arr, ClusterBytes: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.OnRequest(title("a", 50)); err != nil {
		t.Fatal(err)
	}
	// 200 bytes can never fit; the policy evicts everything then gives up.
	out, err := p.OnRequest(title("huge", 200))
	if err != nil {
		t.Fatal(err)
	}
	if out.Admitted {
		t.Fatal("oversized title admitted")
	}
	if len(p.ResidentTitles()) != 0 {
		t.Fatalf("residents after oversized miss: %v", p.ResidentTitles())
	}
}

func TestRecencyPolicyValidation(t *testing.T) {
	if _, err := NewLRU(Config{}); err == nil {
		t.Fatal("NewLRU accepted nil array")
	}
	arr, err := disk.NewUniformArray("v", 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewLFU(Config{Array: arr}); err == nil {
		t.Fatal("NewLFU accepted zero cluster")
	}
	p, err := NewLRU(Config{Array: arr, ClusterBytes: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.OnRequest(media.Title{}); err == nil {
		t.Fatal("OnRequest accepted invalid title")
	}
}

func TestNonePolicy(t *testing.T) {
	n := NewNone()
	if n.Name() != "none" {
		t.Fatalf("Name = %s", n.Name())
	}
	out, err := n.OnRequest(title("a", 10))
	if err != nil {
		t.Fatal(err)
	}
	if out.Hit || out.Admitted {
		t.Fatalf("outcome = %+v, want pure miss", out)
	}
	if n.Resident("a") || n.ResidentTitles() != nil {
		t.Fatal("None should never store")
	}
	if _, ok := n.Layout("a"); ok {
		t.Fatal("None returned a layout")
	}
	if _, err := n.OnRequest(media.Title{}); err == nil {
		t.Fatal("None accepted invalid title")
	}
	if s := n.Stats(); s.Requests != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestStatsOf(t *testing.T) {
	m := newDMA(t, 1, 100)
	if _, err := m.OnRequest(title("a", 10)); err != nil {
		t.Fatal(err)
	}
	s, err := StatsOf(m)
	if err != nil || s.Requests != 1 {
		t.Fatalf("StatsOf(DMA) = %+v, %v", s, err)
	}
	arr, err := disk.NewUniformArray("s", 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	lru, err := NewLRU(Config{Array: arr, ClusterBytes: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := StatsOf(lru); err != nil {
		t.Fatalf("StatsOf(lru): %v", err)
	}
	if _, err := StatsOf(NewNone()); err != nil {
		t.Fatalf("StatsOf(none): %v", err)
	}
}

func TestDMADecayHalvesPoints(t *testing.T) {
	// DecayEvery=4: after the 4th request every title's points halve.
	m := newDMA(t, 1, 100, func(c *Config) { c.DecayEvery = 4 })
	// Three hits on a: points 1, 2, 3.
	for range 4 {
		if _, err := m.OnRequest(title("a", 100)); err != nil {
			t.Fatal(err)
		}
	}
	// The 4th request triggered decay after incrementing... order: decay
	// runs before the hit is counted, so points were 2/2=1, then +1 = 2.
	if got := m.Points("a"); got != 2 {
		t.Fatalf("points after decay boundary = %d, want 2", got)
	}
}

func TestDMADecayEnablesDriftRecovery(t *testing.T) {
	// Without decay a long-hot title blocks a new favourite forever-ish;
	// with decay the newcomer wins after points age out.
	hot, cold := title("hot", 100), title("cold", 100)
	run := func(decay int64) bool {
		m := newDMA(t, 1, 100, func(c *Config) { c.DecayEvery = decay })
		for range 50 {
			if _, err := m.OnRequest(hot); err != nil {
				t.Fatal(err)
			}
		}
		// Tastes flip: only cold requested now.
		for range 30 {
			if _, err := m.OnRequest(cold); err != nil {
				t.Fatal(err)
			}
		}
		return m.Resident("cold")
	}
	if run(0) {
		t.Fatal("without decay the cold title displaced 49 points in 30 requests")
	}
	if !run(10) {
		t.Fatal("with decay the cold title never displaced the stale favourite")
	}
}
