// Package segcache implements the paper's stated future work: applying the
// "most popular" caching concept to video *strips* rather than whole titles
// ("the most popular technique that we have described will not be imposed on
// whole videos but on video strips"). Each segment (one delivery cluster) is
// an independent cache unit with its own popularity points, admitted and
// evicted by the same Figure 2 comparison the title-granularity DMA uses.
//
// Segment granularity pays off under partial viewing: when most sessions
// watch only a prefix of a title, the early segments of many titles are far
// hotter than any whole title, and a byte of cache spent on a popular prefix
// beats a byte spent on a rarely-reached tail. The Ext-6 study
// (internal/experiments) quantifies this against the whole-title DMA.
package segcache

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"dvod/internal/disk"
	"dvod/internal/media"
	"dvod/internal/striping"
)

// SegID names one cached segment: a title's index-th cluster.
type SegID struct {
	Title string
	Index int
}

// String renders the segment id for logs.
func (s SegID) String() string { return fmt.Sprintf("%s[%d]", s.Title, s.Index) }

// Outcome reports what one segment request did.
type Outcome struct {
	// Hit is true when the segment was already resident.
	Hit bool
	// Admitted is true when the request stored the segment.
	Admitted bool
	// Evicted lists segments removed to make room.
	Evicted []SegID
}

// Stats tracks byte-weighted cache effectiveness.
type Stats struct {
	Requests       int64
	Hits           int64
	BytesRequested int64
	BytesHit       int64
	Admitted       int64
	Evictions      int64
}

// HitRatio returns request-weighted hits.
func (s Stats) HitRatio() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Requests)
}

// ByteHitRatio returns byte-weighted hits — the fair basis for comparing
// segment- and title-granularity caching.
func (s Stats) ByteHitRatio() float64 {
	if s.BytesRequested == 0 {
		return 0
	}
	return float64(s.BytesHit) / float64(s.BytesRequested)
}

// Config parameterizes the segment cache.
type Config struct {
	// Array is the disk array segments are stored on; segment i of any
	// title lands on disk i mod n (the DMA's cyclic rule applied at
	// segment granularity).
	Array *disk.Array
	// ClusterBytes is the segment size c.
	ClusterBytes int64
	// Content supplies title bytes; nil defaults to the synthetic
	// generator.
	Content func(name string) striping.ContentFunc
}

// Manager is the segment-granularity cache. Safe for concurrent use.
type Manager struct {
	cfg Config

	mu       sync.Mutex
	points   map[SegID]int64
	resident map[SegID]int64 // stored length
	stats    Stats
}

// New validates the configuration.
func New(cfg Config) (*Manager, error) {
	if cfg.Array == nil {
		return nil, errors.New("segcache: nil array")
	}
	if cfg.ClusterBytes <= 0 {
		return nil, fmt.Errorf("segcache: %w: %d", striping.ErrBadCluster, cfg.ClusterBytes)
	}
	return &Manager{
		cfg:      cfg,
		points:   make(map[SegID]int64),
		resident: make(map[SegID]int64),
	}, nil
}

// segmentLen returns the byte length of a title's index-th segment.
func (m *Manager) segmentLen(t media.Title, index int) (int64, error) {
	layout, err := striping.NewLayout(t, m.cfg.ClusterBytes, m.cfg.Array.NumDisks())
	if err != nil {
		return 0, err
	}
	_, length, err := layout.PartRange(index)
	if err != nil {
		return 0, err
	}
	return length, nil
}

// diskFor maps a segment to its home disk (cyclic).
func (m *Manager) diskFor(index int) (*disk.Disk, error) {
	return m.cfg.Array.Disk(index % m.cfg.Array.NumDisks())
}

// OnSegmentRequest records one request for a title's segment and applies the
// Figure 2 logic at segment granularity.
func (m *Manager) OnSegmentRequest(t media.Title, index int) (Outcome, error) {
	if err := t.Validate(); err != nil {
		return Outcome{}, err
	}
	length, err := m.segmentLen(t, index)
	if err != nil {
		return Outcome{}, err
	}
	id := SegID{Title: t.Name, Index: index}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats.Requests++
	m.stats.BytesRequested += length

	if _, ok := m.resident[id]; ok {
		m.points[id]++
		m.stats.Hits++
		m.stats.BytesHit += length
		return Outcome{Hit: true}, nil
	}

	d, err := m.diskFor(index)
	if err != nil {
		return Outcome{}, err
	}
	if d.Free() >= length {
		if err := m.admit(d, t, id, length); err != nil {
			return Outcome{}, err
		}
		return Outcome{Admitted: true}, nil
	}

	m.points[id]++
	pts := m.points[id]
	var evicted []SegID
	for {
		victim, victimPts, ok := m.leastPopularOnDisk(index % m.cfg.Array.NumDisks())
		if !ok || pts <= victimPts {
			break
		}
		vd, err := m.diskFor(victim.Index)
		if err != nil {
			return Outcome{Evicted: evicted}, err
		}
		if err := vd.Delete(disk.BlockID{Title: victim.Title, Part: victim.Index}); err != nil {
			return Outcome{Evicted: evicted}, fmt.Errorf("segcache evict %s: %w", victim, err)
		}
		delete(m.resident, victim)
		evicted = append(evicted, victim)
		m.stats.Evictions++
		if d.Free() >= length {
			if err := m.admit(d, t, id, length); err != nil {
				return Outcome{Evicted: evicted}, err
			}
			return Outcome{Admitted: true, Evicted: evicted}, nil
		}
		// Segments colder than the newcomer remain; keep evicting until
		// it fits or the remaining residents are at least as popular.
	}
	return Outcome{Evicted: evicted}, nil
}

// admit stores the segment's bytes; caller holds the lock.
func (m *Manager) admit(d *disk.Disk, t media.Title, id SegID, length int64) error {
	content := m.cfg.Content
	var fill striping.ContentFunc
	if content == nil {
		fill = striping.TitleContent(t.Name)
	} else {
		fill = content(t.Name)
	}
	buf := make([]byte, length)
	fill(int64(id.Index)*m.cfg.ClusterBytes, buf)
	if err := d.Write(disk.BlockID{Title: id.Title, Part: id.Index}, buf); err != nil {
		return fmt.Errorf("segcache admit %s: %w", id, err)
	}
	m.resident[id] = length
	m.stats.Admitted++
	return nil
}

// leastPopularOnDisk finds the coldest resident segment on the given disk
// index; ties break by (title, index) for determinism. Caller holds the
// lock.
func (m *Manager) leastPopularOnDisk(diskIdx int) (SegID, int64, bool) {
	var (
		best  SegID
		pts   int64
		found bool
	)
	n := m.cfg.Array.NumDisks()
	for id := range m.resident {
		if id.Index%n != diskIdx {
			continue
		}
		p := m.points[id]
		if !found || p < pts ||
			(p == pts && (id.Title < best.Title ||
				(id.Title == best.Title && id.Index < best.Index))) {
			best, pts, found = id, p, true
		}
	}
	return best, pts, found
}

// Resident reports whether a segment is stored.
func (m *Manager) Resident(title string, index int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.resident[SegID{Title: title, Index: index}]
	return ok
}

// ResidentSegments lists the stored segment indices of a title, sorted.
func (m *Manager) ResidentSegments(title string) []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []int
	for id := range m.resident {
		if id.Title == title {
			out = append(out, id.Index)
		}
	}
	sort.Ints(out)
	return out
}

// ReadSegment returns a stored segment's bytes.
func (m *Manager) ReadSegment(title string, index int) ([]byte, error) {
	m.mu.Lock()
	_, ok := m.resident[SegID{Title: title, Index: index}]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("segcache: %s[%d] not resident", title, index)
	}
	d, err := m.diskFor(index)
	if err != nil {
		return nil, err
	}
	return d.Read(disk.BlockID{Title: title, Part: index})
}

// Points returns a segment's accumulated popularity points.
func (m *Manager) Points(title string, index int) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.points[SegID{Title: title, Index: index}]
}

// Stats returns a copy of the run counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}
