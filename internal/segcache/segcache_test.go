package segcache

import (
	"testing"

	"dvod/internal/disk"
	"dvod/internal/media"
)

func title(name string, size int64) media.Title {
	return media.Title{Name: name, SizeBytes: size, BitrateMbps: 1.5}
}

// newMgr builds a segment cache over nDisks × capacity with 10-byte
// segments.
func newMgr(t *testing.T, nDisks int, capacity int64) *Manager {
	t.Helper()
	arr, err := disk.NewUniformArray("sc", nDisks, capacity)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Config{Array: arr, ClusterBytes: 10})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil array accepted")
	}
	arr, err := disk.NewUniformArray("x", 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Array: arr}); err == nil {
		t.Fatal("zero cluster accepted")
	}
}

func TestSegIDString(t *testing.T) {
	if got := (SegID{Title: "m", Index: 3}).String(); got != "m[3]" {
		t.Fatalf("String = %q", got)
	}
}

func TestAdmitAndHit(t *testing.T) {
	m := newMgr(t, 2, 100)
	tt := title("m", 35) // segments: 10,10,10,5
	out, err := m.OnSegmentRequest(tt, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Admitted || out.Hit {
		t.Fatalf("first request = %+v", out)
	}
	if !m.Resident("m", 0) {
		t.Fatal("segment not resident")
	}
	out, err = m.OnSegmentRequest(tt, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Hit {
		t.Fatalf("second request = %+v", out)
	}
	if m.Points("m", 0) != 1 {
		t.Fatalf("points = %d", m.Points("m", 0))
	}
	s := m.Stats()
	if s.Requests != 2 || s.Hits != 1 || s.BytesRequested != 20 || s.BytesHit != 10 {
		t.Fatalf("stats = %+v", s)
	}
	if s.HitRatio() != 0.5 || s.ByteHitRatio() != 0.5 {
		t.Fatalf("ratios = %g/%g", s.HitRatio(), s.ByteHitRatio())
	}
}

func TestEmptyStatsRatios(t *testing.T) {
	var s Stats
	if s.HitRatio() != 0 || s.ByteHitRatio() != 0 {
		t.Fatal("empty ratios nonzero")
	}
}

func TestTailSegmentLength(t *testing.T) {
	m := newMgr(t, 2, 100)
	tt := title("m", 35)
	if _, err := m.OnSegmentRequest(tt, 3); err != nil {
		t.Fatal(err)
	}
	data, err := m.ReadSegment("m", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 5 {
		t.Fatalf("tail segment = %d bytes, want 5", len(data))
	}
	if !media.Verify("m", 30, data) {
		t.Fatal("tail content mismatch")
	}
	// Out-of-range segment index errors.
	if _, err := m.OnSegmentRequest(tt, 4); err == nil {
		t.Fatal("out-of-range segment accepted")
	}
	if _, err := m.OnSegmentRequest(media.Title{}, 0); err == nil {
		t.Fatal("invalid title accepted")
	}
}

func TestCyclicDiskPlacement(t *testing.T) {
	m := newMgr(t, 2, 100)
	tt := title("m", 40)
	for i := range 4 {
		if _, err := m.OnSegmentRequest(tt, i); err != nil {
			t.Fatal(err)
		}
	}
	// Segments 0,2 on disk 0; 1,3 on disk 1.
	d0, err := m.cfg.Array.Disk(0)
	if err != nil {
		t.Fatal(err)
	}
	d1, err := m.cfg.Array.Disk(1)
	if err != nil {
		t.Fatal(err)
	}
	if d0.NumBlocks() != 2 || d1.NumBlocks() != 2 {
		t.Fatalf("blocks = %d/%d", d0.NumBlocks(), d1.NumBlocks())
	}
	segs := m.ResidentSegments("m")
	if len(segs) != 4 || segs[0] != 0 || segs[3] != 3 {
		t.Fatalf("ResidentSegments = %v", segs)
	}
}

func TestEvictionIsPerDiskAndPopularityOrdered(t *testing.T) {
	// 1 disk × 20 bytes: holds two 10-byte segments.
	m := newMgr(t, 1, 20)
	a, b, c := title("a", 10), title("b", 10), title("c", 10)
	// a requested 3× (2 hits), b once.
	for range 3 {
		if _, err := m.OnSegmentRequest(a, 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.OnSegmentRequest(b, 0); err != nil {
		t.Fatal(err)
	}
	// c's first miss gives it 1 point > b's 0 → evicts b, admits c.
	out, err := m.OnSegmentRequest(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Admitted || len(out.Evicted) != 1 || out.Evicted[0] != (SegID{Title: "b", Index: 0}) {
		t.Fatalf("outcome = %+v", out)
	}
	if m.Resident("b", 0) || !m.Resident("a", 0) || !m.Resident("c", 0) {
		t.Fatal("residency wrong")
	}
}

func TestColderNewcomerDoesNotEvict(t *testing.T) {
	m := newMgr(t, 1, 10)
	hot := title("hot", 10)
	for range 5 {
		if _, err := m.OnSegmentRequest(hot, 0); err != nil {
			t.Fatal(err)
		}
	}
	cold := title("cold", 10)
	out, err := m.OnSegmentRequest(cold, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.Admitted || len(out.Evicted) != 0 {
		t.Fatalf("cold newcomer displaced hot segment: %+v", out)
	}
	if !m.Resident("hot", 0) {
		t.Fatal("hot segment evicted")
	}
}

func TestPrefixCachingBeatsWholeTitleUnderPartialViewing(t *testing.T) {
	// The future-work rationale: 4 titles × 40 bytes, cache of 40 bytes
	// (1 disk). Viewers always watch only the first segment. Segment
	// caching stores the four hot prefixes and hits on every round after
	// the first; a whole-title cache could hold at most one title.
	m := newMgr(t, 1, 40)
	titles := []media.Title{
		title("t0", 40), title("t1", 40), title("t2", 40), title("t3", 40),
	}
	const rounds = 10
	for range rounds {
		for _, tt := range titles {
			if _, err := m.OnSegmentRequest(tt, 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	s := m.Stats()
	// First round admits 4 segments; all later rounds hit.
	wantHits := int64((rounds - 1) * len(titles))
	if s.Hits != wantHits {
		t.Fatalf("hits = %d, want %d", s.Hits, wantHits)
	}
	if s.Evictions != 0 {
		t.Fatalf("evictions = %d", s.Evictions)
	}
}

func TestReadSegmentErrors(t *testing.T) {
	m := newMgr(t, 1, 100)
	if _, err := m.ReadSegment("ghost", 0); err == nil {
		t.Fatal("non-resident read accepted")
	}
}

func TestContentVerifiedAcrossEvictions(t *testing.T) {
	m := newMgr(t, 2, 30)
	names := []string{"a", "b", "c", "d", "e"}
	for round := range 3 {
		for _, n := range names {
			tt := title(n, 25)
			for i := range 3 {
				if _, err := m.OnSegmentRequest(tt, i); err != nil {
					t.Fatal(err)
				}
			}
		}
		_ = round
	}
	// Whatever is resident must verify against canonical content.
	for _, n := range names {
		for _, idx := range m.ResidentSegments(n) {
			data, err := m.ReadSegment(n, idx)
			if err != nil {
				t.Fatal(err)
			}
			if !media.Verify(n, int64(idx)*10, data) {
				t.Fatalf("segment %s[%d] corrupted", n, idx)
			}
		}
	}
}
