// Package clock provides time sources for the VoD service.
//
// The service runs in two planes: a live plane driven by the wall clock, and
// an emulated plane (package netsim, the experiment harness) driven by a
// virtual clock that tests and benchmarks advance manually. Everything that
// needs "now" or a timer takes a Clock so the two planes share code.
package clock

import (
	"container/heap"
	"sync"
	"time"
)

// Clock is a source of time. Implementations must be safe for concurrent use.
type Clock interface {
	// Now returns the current instant.
	Now() time.Time
	// After returns a channel that delivers the (then-current) time once d
	// has elapsed on this clock.
	After(d time.Duration) <-chan time.Time
	// Sleep blocks until d has elapsed on this clock.
	Sleep(d time.Duration)
}

// Wall is the real-time clock backed by package time.
type Wall struct{}

var _ Clock = Wall{}

// Now returns time.Now().
func (Wall) Now() time.Time { return time.Now() }

// After returns time.After(d).
func (Wall) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Sleep calls time.Sleep(d).
func (Wall) Sleep(d time.Duration) { time.Sleep(d) }

// Virtual is a manually advanced clock. Time moves only when Advance or
// AdvanceTo is called, which fires any timers that come due in order.
// The zero value is not usable; call NewVirtual.
type Virtual struct {
	mu      sync.Mutex
	now     time.Time
	timers  timerHeap
	nextSeq int64
}

var _ Clock = (*Virtual)(nil)

// NewVirtual returns a virtual clock starting at the given instant.
func NewVirtual(start time.Time) *Virtual {
	return &Virtual{now: start}
}

// Now returns the virtual current instant.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// After returns a channel that fires when the virtual clock reaches now+d.
// A non-positive d fires at the current instant on the next Advance call
// (or immediately, matching time.After's behaviour of firing promptly).
func (v *Virtual) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	v.mu.Lock()
	defer v.mu.Unlock()
	when := v.now.Add(d)
	if d <= 0 {
		ch <- v.now
		return ch
	}
	heap.Push(&v.timers, &timer{when: when, seq: v.nextSeq, ch: ch})
	v.nextSeq++
	return ch
}

// Sleep blocks the calling goroutine until the virtual clock has been
// advanced past now+d by some other goroutine.
func (v *Virtual) Sleep(d time.Duration) {
	<-v.After(d)
}

// Advance moves the clock forward by d, firing due timers in timestamp order.
func (v *Virtual) Advance(d time.Duration) {
	v.mu.Lock()
	target := v.now.Add(d)
	v.mu.Unlock()
	v.AdvanceTo(target)
}

// AdvanceTo moves the clock to instant t (no-op if t is not after now),
// firing due timers in timestamp order.
func (v *Virtual) AdvanceTo(t time.Time) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if t.Before(v.now) {
		return
	}
	for len(v.timers) > 0 && !v.timers[0].when.After(t) {
		tm := heap.Pop(&v.timers).(*timer)
		v.now = tm.when
		tm.ch <- tm.when
	}
	v.now = t
}

// PendingTimers reports how many timers are armed but not yet fired.
func (v *Virtual) PendingTimers() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.timers)
}

// NextTimer returns the due time of the earliest armed timer and true, or a
// zero time and false when no timer is armed. Event loops use it to advance
// the clock straight to the next interesting instant.
func (v *Virtual) NextTimer() (time.Time, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if len(v.timers) == 0 {
		return time.Time{}, false
	}
	return v.timers[0].when, true
}

type timer struct {
	when time.Time
	seq  int64
	ch   chan time.Time
}

type timerHeap []*timer

func (h timerHeap) Len() int { return len(h) }

func (h timerHeap) Less(i, j int) bool {
	if !h[i].when.Equal(h[j].when) {
		return h[i].when.Before(h[j].when)
	}
	return h[i].seq < h[j].seq
}

func (h timerHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *timerHeap) Push(x any) { *h = append(*h, x.(*timer)) }

func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}
