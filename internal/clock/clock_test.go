package clock

import (
	"sync"
	"testing"
	"time"
)

var epoch = time.Date(2000, time.April, 10, 8, 0, 0, 0, time.UTC)

func TestVirtualNow(t *testing.T) {
	v := NewVirtual(epoch)
	if got := v.Now(); !got.Equal(epoch) {
		t.Fatalf("Now() = %v, want %v", got, epoch)
	}
}

func TestVirtualAdvance(t *testing.T) {
	v := NewVirtual(epoch)
	v.Advance(90 * time.Second)
	want := epoch.Add(90 * time.Second)
	if got := v.Now(); !got.Equal(want) {
		t.Fatalf("Now() after Advance = %v, want %v", got, want)
	}
}

func TestVirtualAdvanceToBackwardsIsNoop(t *testing.T) {
	v := NewVirtual(epoch)
	v.AdvanceTo(epoch.Add(-time.Hour))
	if got := v.Now(); !got.Equal(epoch) {
		t.Fatalf("Now() after backwards AdvanceTo = %v, want %v", got, epoch)
	}
}

func TestVirtualAfterFiresAtDeadline(t *testing.T) {
	v := NewVirtual(epoch)
	ch := v.After(10 * time.Minute)

	v.Advance(9 * time.Minute)
	select {
	case tm := <-ch:
		t.Fatalf("timer fired early at %v", tm)
	default:
	}

	v.Advance(2 * time.Minute)
	select {
	case tm := <-ch:
		want := epoch.Add(10 * time.Minute)
		if !tm.Equal(want) {
			t.Fatalf("timer fired with %v, want %v", tm, want)
		}
	default:
		t.Fatal("timer did not fire after deadline passed")
	}
}

func TestVirtualAfterNonPositiveFiresImmediately(t *testing.T) {
	v := NewVirtual(epoch)
	select {
	case tm := <-v.After(0):
		if !tm.Equal(epoch) {
			t.Fatalf("immediate timer delivered %v, want %v", tm, epoch)
		}
	default:
		t.Fatal("After(0) did not fire immediately")
	}
	select {
	case <-v.After(-time.Second):
	default:
		t.Fatal("After(negative) did not fire immediately")
	}
}

func TestVirtualTimersFireInOrder(t *testing.T) {
	v := NewVirtual(epoch)
	var (
		mu    sync.Mutex
		order []int
	)
	durations := []time.Duration{3 * time.Second, time.Second, 2 * time.Second}
	var wg sync.WaitGroup
	for i, d := range durations {
		ch := v.After(d)
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-ch
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		}()
		_ = i
	}
	// Advance past all deadlines; each receiver records its index. Because
	// channel sends happen in timestamp order under the clock lock, the
	// receive order (after all have completed) reflects firing order only
	// per-timer; assert set membership and count instead of strict order,
	// then assert strict order using a single-goroutine drain below.
	v.Advance(5 * time.Second)
	wg.Wait()
	if len(order) != 3 {
		t.Fatalf("fired %d timers, want 3", len(order))
	}

	// Deterministic ordering check: drain sequentially.
	v2 := NewVirtual(epoch)
	a := v2.After(3 * time.Second)
	b := v2.After(time.Second)
	c := v2.After(2 * time.Second)
	v2.Advance(5 * time.Second)
	ta, tb, tc := <-a, <-b, <-c
	if !tb.Before(tc) || !tc.Before(ta) {
		t.Fatalf("timer stamps out of order: a=%v b=%v c=%v", ta, tb, tc)
	}
}

func TestVirtualSameDeadlineFIFO(t *testing.T) {
	v := NewVirtual(epoch)
	a := v.After(time.Second)
	b := v.After(time.Second)
	v.Advance(time.Second)
	ta, tb := <-a, <-b
	if !ta.Equal(tb) {
		t.Fatalf("same-deadline timers delivered different stamps %v, %v", ta, tb)
	}
}

func TestVirtualPendingTimers(t *testing.T) {
	v := NewVirtual(epoch)
	if n := v.PendingTimers(); n != 0 {
		t.Fatalf("PendingTimers = %d, want 0", n)
	}
	_ = v.After(time.Minute)
	_ = v.After(time.Hour)
	if n := v.PendingTimers(); n != 2 {
		t.Fatalf("PendingTimers = %d, want 2", n)
	}
	v.Advance(time.Minute)
	if n := v.PendingTimers(); n != 1 {
		t.Fatalf("PendingTimers after firing one = %d, want 1", n)
	}
}

func TestVirtualNextTimer(t *testing.T) {
	v := NewVirtual(epoch)
	if _, ok := v.NextTimer(); ok {
		t.Fatal("NextTimer reported an armed timer on a fresh clock")
	}
	_ = v.After(time.Hour)
	_ = v.After(time.Minute)
	when, ok := v.NextTimer()
	if !ok {
		t.Fatal("NextTimer found no timer after arming two")
	}
	if want := epoch.Add(time.Minute); !when.Equal(want) {
		t.Fatalf("NextTimer = %v, want %v", when, want)
	}
}

func TestVirtualSleepUnblocksOnAdvance(t *testing.T) {
	v := NewVirtual(epoch)
	done := make(chan struct{})
	go func() {
		v.Sleep(time.Second)
		close(done)
	}()
	// Wait for the sleeper to arm its timer before advancing.
	for v.PendingTimers() == 0 {
		time.Sleep(time.Millisecond)
	}
	v.Advance(2 * time.Second)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Sleep did not return after clock advance")
	}
}

func TestWallNow(t *testing.T) {
	w := Wall{}
	before := time.Now()
	got := w.Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Fatalf("Wall.Now() = %v outside [%v, %v]", got, before, after)
	}
}

func TestWallAfter(t *testing.T) {
	w := Wall{}
	select {
	case <-w.After(time.Millisecond):
	case <-time.After(5 * time.Second):
		t.Fatal("Wall.After(1ms) did not fire")
	}
}
