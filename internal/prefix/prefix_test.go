package prefix

import (
	"fmt"
	"sync"
	"testing"

	"dvod/internal/disk"
	"dvod/internal/media"
	"dvod/internal/striping"
)

func cand(name string, clusters, points int64) Candidate {
	return Candidate{Name: name, Clusters: clusters, Points: points}
}

func TestSolveZeroBudget(t *testing.T) {
	got := Solve([]Candidate{cand("a", 10, 100), cand("b", 10, 1)}, 0)
	if len(got) != 0 {
		t.Fatalf("zero budget pinned %v, want nothing", got)
	}
	if got := Solve(nil, 100); len(got) != 0 {
		t.Fatalf("empty catalog pinned %v, want nothing", got)
	}
}

func TestSolveBudgetLargerThanCatalog(t *testing.T) {
	cands := []Candidate{cand("a", 7, 100), cand("b", 3, 0), cand("c", 5, 12)}
	got := Solve(cands, 1_000_000)
	for _, c := range cands {
		if int64(got[c.Name]) != c.Clusters {
			t.Fatalf("title %s pinned %d of %d clusters under oversize budget",
				c.Name, got[c.Name], c.Clusters)
		}
	}
}

func TestSolveFavorsPopularHeads(t *testing.T) {
	// hot has 100× the points of cold; with budget for half the catalog the
	// knapsack must give hot the longer prefix, and both must get at least
	// cluster 0 (the harmonic decay makes every title's head cheap).
	got := Solve([]Candidate{cand("hot", 100, 1000), cand("cold", 100, 10)}, 100)
	if got["hot"] <= got["cold"] {
		t.Fatalf("hot prefix %d not longer than cold %d", got["hot"], got["cold"])
	}
	if got["hot"]+got["cold"] != 100 {
		t.Fatalf("spent %d clusters, budget was 100", got["hot"]+got["cold"])
	}
	if got["cold"] == 0 {
		t.Fatalf("cold title got no prefix at all: %v", got)
	}
}

func TestSolveEqualPopularityTiesDeterministic(t *testing.T) {
	// Equal points, equal sizes: the lexicographically smaller name must win
	// the odd cluster, and the answer must not depend on input order.
	mk := func(order []string) map[string]int {
		cands := make([]Candidate, 0, len(order))
		for _, n := range order {
			cands = append(cands, cand(n, 10, 50))
		}
		return Solve(cands, 7)
	}
	a := mk([]string{"zeta", "alpha", "mid"})
	for range 10 {
		b := mk([]string{"mid", "zeta", "alpha"})
		if fmt.Sprint(a) != fmt.Sprint(b) {
			t.Fatalf("solve not order-independent: %v vs %v", a, b)
		}
	}
	// 7 clusters over three equal titles: marginal values are identical per
	// rank, so ranks fill round-robin in name order — alpha gets the spare.
	if a["alpha"] != 3 || a["mid"] != 2 || a["zeta"] != 2 {
		t.Fatalf("tie-break allocation %v, want alpha=3 mid=2 zeta=2", a)
	}
}

func TestSolveRespectsBudgetExactly(t *testing.T) {
	cands := []Candidate{cand("a", 50, 9), cand("b", 50, 9), cand("c", 50, 2)}
	for _, budget := range []int64{1, 2, 3, 10, 49, 150, 151} {
		got := Solve(cands, budget)
		total := int64(0)
		for _, k := range got {
			total += int64(k)
		}
		want := budget
		if want > 150 {
			want = 150
		}
		if total != want {
			t.Fatalf("budget %d: pinned %d clusters", budget, total)
		}
	}
}

// testManager builds a manager over an in-memory array with the given
// budget, catalog, and points map (mutable by the caller).
func testManager(t *testing.T, budgetClusters int64, titles []media.Title, points map[string]int64) (*Manager, *sync.Mutex) {
	t.Helper()
	const clusterBytes = 64
	arr, err := disk.NewUniformArray("pfx", 2, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	m, err := New(Config{
		Array:        arr,
		ClusterBytes: clusterBytes,
		BudgetBytes:  budgetClusters * clusterBytes,
		Points: func(name string) int64 {
			mu.Lock()
			defer mu.Unlock()
			return points[name]
		},
		Catalog: func() []media.Title { return titles },
	})
	if err != nil {
		t.Fatal(err)
	}
	return m, &mu
}

func TestManagerResolvePinsAndServes(t *testing.T) {
	titles := []media.Title{
		{Name: "hot", SizeBytes: 64 * 16, BitrateMbps: 1.5},
		{Name: "cold", SizeBytes: 64 * 16, BitrateMbps: 1.5},
	}
	points := map[string]int64{"hot": 500, "cold": 1}
	m, _ := testManager(t, 8, titles, points)
	pinned, unpinned, err := m.Resolve()
	if err != nil {
		t.Fatalf("resolve: %v", err)
	}
	if pinned != 8 || unpinned != 0 {
		t.Fatalf("pinned %d unpinned %d, want 8/0", pinned, unpinned)
	}
	kHot, kCold := m.PrefixClusters("hot"), m.PrefixClusters("cold")
	if kHot <= kCold || kHot+kCold != 8 {
		t.Fatalf("prefixes hot=%d cold=%d", kHot, kCold)
	}
	// Every pinned cluster must read back as canonical content.
	for _, name := range []string{"hot", "cold"} {
		k := m.PrefixClusters(name)
		for idx := range k {
			e, ok := m.Lookup(name, idx)
			if !ok {
				t.Fatalf("lookup %s[%d] missed inside K=%d", name, idx, k)
			}
			data, err := striping.ReadPart(m.Array(), e.Layout, idx)
			if err != nil {
				t.Fatalf("read %s[%d]: %v", name, idx, err)
			}
			off, _, _ := e.Layout.PartRange(idx)
			if !media.Verify(name, off, data) {
				t.Fatalf("pinned cluster %s[%d] content mismatch", name, idx)
			}
		}
		if _, ok := m.Lookup(name, k); ok {
			t.Fatalf("lookup %s[%d] hit beyond pinned prefix", name, k)
		}
	}
}

func TestManagerResolveShrinksOnPopularityFlip(t *testing.T) {
	titles := []media.Title{
		{Name: "a", SizeBytes: 64 * 16, BitrateMbps: 1.5},
		{Name: "b", SizeBytes: 64 * 16, BitrateMbps: 1.5},
	}
	points := map[string]int64{"a": 1000, "b": 0}
	m, mu := testManager(t, 8, titles, points)
	if _, _, err := m.Resolve(); err != nil {
		t.Fatal(err)
	}
	kA := m.PrefixClusters("a")
	mu.Lock()
	points["a"], points["b"] = 0, 1000
	mu.Unlock()
	pinned, unpinned, err := m.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if m.PrefixClusters("b") <= m.PrefixClusters("a") {
		t.Fatalf("flip did not move prefix: a=%d b=%d", m.PrefixClusters("a"), m.PrefixClusters("b"))
	}
	if pinned == 0 || unpinned == 0 {
		t.Fatalf("flip epoch pinned %d unpinned %d, want both > 0 (was a=%d)", pinned, unpinned, kA)
	}
	// The store must hold exactly what the view says: no leaked blocks.
	used := int64(0)
	for i := range m.Array().NumDisks() {
		d, _ := m.Array().Disk(i)
		used += int64(d.NumBlocks())
	}
	want := int64(m.PrefixClusters("a") + m.PrefixClusters("b"))
	if used != want {
		t.Fatalf("store holds %d blocks, view says %d", used, want)
	}
}

// TestManagerResolveUnderConcurrentLookups is the epoch-re-solve race
// required by the issue: readers hammer Lookup/PrefixClusters while epochs
// flip popularity back and forth. Run under -race; correctness here is "a
// hit always yields a readable, verifiable cluster".
func TestManagerResolveUnderConcurrentLookups(t *testing.T) {
	titles := []media.Title{
		{Name: "x", SizeBytes: 64 * 32, BitrateMbps: 1.5},
		{Name: "y", SizeBytes: 64 * 32, BitrateMbps: 1.5},
	}
	points := map[string]int64{"x": 100, "y": 0}
	m, mu := testManager(t, 16, titles, points)
	if _, _, err := m.Resolve(); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for range 4 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 64)
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, name := range []string{"x", "y"} {
					k := m.PrefixClusters(name)
					for idx := 0; idx < k; idx++ {
						e, ok := m.Lookup(name, idx)
						if !ok {
							continue
						}
						// A racing shrink may have freed the block; a miss
						// is fine, a corrupt hit is not.
						n, err := striping.ReadPartInto(m.Array(), e.Layout, idx, buf)
						if err != nil {
							continue
						}
						off, _, _ := e.Layout.PartRange(idx)
						if !media.Verify(name, off, buf[:n]) {
							t.Errorf("corrupt prefix read %s[%d]", name, idx)
							return
						}
					}
				}
			}
		}()
	}
	for i := range 30 {
		mu.Lock()
		if i%2 == 0 {
			points["x"], points["y"] = 0, 100
		} else {
			points["x"], points["y"] = 100, 0
		}
		mu.Unlock()
		if _, _, err := m.Resolve(); err != nil {
			t.Fatalf("resolve %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
}

func TestManagerBudgetValidation(t *testing.T) {
	arr, err := disk.NewUniformArray("pfx", 1, 1024)
	if err != nil {
		t.Fatal(err)
	}
	base := Config{
		Array:        arr,
		ClusterBytes: 64,
		Points:       func(string) int64 { return 0 },
		Catalog:      func() []media.Title { return nil },
	}
	over := base
	over.BudgetBytes = 2048
	if _, err := New(over); err == nil {
		t.Fatal("budget beyond capacity accepted")
	}
	def := base
	m, err := New(def)
	if err != nil {
		t.Fatal(err)
	}
	if m.BudgetClusters() != 1024/64 {
		t.Fatalf("default budget %d clusters, want %d", m.BudgetClusters(), 1024/64)
	}
}
