// Package prefix implements a popularity-weighted prefix replication tier:
// every server pins the first K(title) clusters of hot titles on a local
// prefix store so playback starts from local disk with zero cross-network
// round trips while the VRA fetches the tail. K is chosen per title by a
// knapsack over the server's prefix disk budget, weighted by the DMA's
// popularity points (PAPERS.md "An Optimal Prefix Replication Strategy for
// VoD Services"): the marginal value of a title's k-th prefix cluster decays
// harmonically with k, so the greedy exchange argument that solves the
// concave knapsack exactly spends each budget cluster where it saves the
// most expected startup fetches.
//
// The manager re-solves the knapsack on an epoch tick (driven by the owner —
// the dvod facade runs one epoch loop per node) and re-replicates the delta:
// grown prefixes are written through the striping layer onto the prefix
// array (file-backed when the node's store is), shrunk prefixes are unpinned
// block by block. Lookups on the delivery hot path read an immutable
// snapshot behind an atomic pointer, so serving a prefix cluster takes no
// lock; a read that races a shrink simply misses and falls back to the
// normal remote path.
package prefix

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"dvod/internal/disk"
	"dvod/internal/media"
	"dvod/internal/metrics"
	"dvod/internal/striping"
)

// Candidate is one title offered to the knapsack: its name, total length in
// clusters, and current popularity points (the DMA feed).
type Candidate struct {
	Name     string
	Clusters int64
	Points   int64
}

// Solve chooses the prefix length K(title), in clusters, for every candidate
// under a total budget of budgetClusters. The value of pinning title t's
// k-th prefix cluster (1-based) is (Points+1)/k — every title has a small
// baseline value so an idle catalog still earns prefixes when the budget
// allows, and the harmonic decay concentrates the budget on the heads of hot
// titles, which is where startup latency and patch load live. Per-title
// value is therefore concave in K, so greedy-by-marginal-value is exact.
//
// The result is deterministic: ties break on higher points, then
// lexicographically smaller title name, then smaller cluster index. Titles
// assigned K=0 are omitted from the result.
func Solve(cands []Candidate, budgetClusters int64) map[string]int {
	out := make(map[string]int)
	if budgetClusters <= 0 || len(cands) == 0 {
		return out
	}
	h := make(candHeap, 0, len(cands))
	for _, c := range cands {
		if c.Clusters <= 0 || c.Points < 0 {
			continue
		}
		h = append(h, &candState{cand: c, nextK: 1})
	}
	// Heap order is deterministic only given a deterministic starting
	// arrangement; the input order of equal candidates must not matter.
	sort.Slice(h, func(i, j int) bool { return h[i].less(h[j]) })
	heap.Init(&h)
	for budgetClusters > 0 && h.Len() > 0 {
		top := h[0]
		out[top.cand.Name]++
		budgetClusters--
		top.nextK++
		if top.nextK > top.cand.Clusters {
			heap.Pop(&h)
		} else {
			heap.Fix(&h, 0)
		}
	}
	return out
}

// candState tracks one candidate's next unpinned prefix cluster during the
// greedy solve.
type candState struct {
	cand  Candidate
	nextK int64 // 1-based index of the next cluster to consider
}

// marginal returns the value of the candidate's next prefix cluster.
func (c *candState) marginal() float64 {
	return float64(c.cand.Points+1) / float64(c.nextK)
}

// less is the deterministic heap order: larger marginal value first, ties on
// higher points, then smaller title name, then smaller next cluster.
func (c *candState) less(o *candState) bool {
	a, b := c.marginal(), o.marginal()
	if a != b {
		return a > b
	}
	if c.cand.Points != o.cand.Points {
		return c.cand.Points > o.cand.Points
	}
	if c.cand.Name != o.cand.Name {
		return c.cand.Name < o.cand.Name
	}
	return c.nextK < o.nextK
}

// candHeap is a max-heap of candidate states under the deterministic order.
type candHeap []*candState

func (h candHeap) Len() int           { return len(h) }
func (h candHeap) Less(i, j int) bool { return h[i].less(h[j]) }
func (h candHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *candHeap) Push(x any)        { *h = append(*h, x.(*candState)) }
func (h *candHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}

// Config parameterizes a Manager.
type Config struct {
	// Array is the dedicated prefix store (its own disks, separate from the
	// DMA's array, so pinning never competes with whole-title caching).
	Array *disk.Array
	// ClusterBytes is the delivery cluster size c.
	ClusterBytes int64
	// BudgetBytes caps the bytes the knapsack may pin; zero defaults to the
	// array's capacity. Must not exceed it.
	BudgetBytes int64
	// Points returns a title's current popularity points (normally
	// cache.DMA.Points). Required.
	Points func(name string) int64
	// Catalog snapshots the title universe the knapsack ranks. Required.
	Catalog func() []media.Title
	// Content supplies title bytes for pinning; nil uses the canonical
	// synthetic generator (striping.TitleContent), exactly as Preload does.
	Content func(name string) striping.ContentFunc
	// Metrics receives the prefix.* counters and gauges; nil allocates a
	// private registry.
	Metrics *metrics.Registry
}

// Manager owns one server's prefix tier: the pinned prefix lengths, the
// blocks behind them, and the epoch re-solve that keeps both tracking
// popularity. Lookup/PrefixClusters are safe for concurrent use with
// Resolve; Resolve serializes with itself.
type Manager struct {
	cfg            Config
	budgetClusters int64

	// view is the immutable published state: title -> pinned entry. The
	// delivery hot path loads it once per lookup and never locks.
	view atomic.Pointer[map[string]Entry]

	// mu serializes Resolve (the only writer).
	mu sync.Mutex

	cResolves    *metrics.Counter
	cPins        *metrics.Counter
	cUnpins      *metrics.Counter
	cPinFailures *metrics.Counter
	gClusters    *metrics.Gauge
	gBytes       *metrics.Gauge
	gTitles      *metrics.Gauge
}

// Entry is one title's published prefix state: the striped layout over the
// prefix array and the number of leading clusters actually pinned.
type Entry struct {
	Layout striping.Layout
	K      int
}

// New validates the configuration. The manager starts empty; the first
// Resolve populates it.
func New(cfg Config) (*Manager, error) {
	switch {
	case cfg.Array == nil:
		return nil, errors.New("prefix: nil array")
	case cfg.ClusterBytes <= 0:
		return nil, fmt.Errorf("prefix: bad cluster size %d", cfg.ClusterBytes)
	case cfg.Points == nil:
		return nil, errors.New("prefix: nil points feed")
	case cfg.Catalog == nil:
		return nil, errors.New("prefix: nil catalog")
	}
	if cfg.BudgetBytes == 0 {
		cfg.BudgetBytes = cfg.Array.Capacity()
	}
	if cfg.BudgetBytes < 0 || cfg.BudgetBytes > cfg.Array.Capacity() {
		return nil, fmt.Errorf("prefix: budget %d outside array capacity %d",
			cfg.BudgetBytes, cfg.Array.Capacity())
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	m := &Manager{
		cfg:            cfg,
		budgetClusters: cfg.BudgetBytes / cfg.ClusterBytes,
		cResolves:      cfg.Metrics.Counter("prefix.resolves"),
		cPins:          cfg.Metrics.Counter("prefix.pins"),
		cUnpins:        cfg.Metrics.Counter("prefix.unpins"),
		cPinFailures:   cfg.Metrics.Counter("prefix.pin_failures"),
		gClusters:      cfg.Metrics.Gauge("prefix.pinned_clusters"),
		gBytes:         cfg.Metrics.Gauge("prefix.pinned_bytes"),
		gTitles:        cfg.Metrics.Gauge("prefix.titles"),
	}
	empty := make(map[string]Entry)
	m.view.Store(&empty)
	return m, nil
}

// BudgetClusters returns the knapsack budget in clusters.
func (m *Manager) BudgetClusters() int64 { return m.budgetClusters }

// Array exposes the prefix store for kernel-path sends
// (striping.PartFileRef against a Lookup'd layout).
func (m *Manager) Array() *disk.Array { return m.cfg.Array }

// PrefixClusters returns how many leading clusters of the title are pinned
// locally right now (0 when none). Lock-free.
func (m *Manager) PrefixClusters(name string) int {
	e, ok := (*m.view.Load())[name]
	if !ok {
		return 0
	}
	return e.K
}

// Lookup returns the title's prefix entry when index falls inside the pinned
// prefix. Lock-free; a miss means the caller serves the cluster through the
// normal delivery path.
func (m *Manager) Lookup(name string, index int) (Entry, bool) {
	e, ok := (*m.view.Load())[name]
	if !ok || index < 0 || index >= e.K {
		return Entry{}, false
	}
	return e, true
}

// Resolve runs one epoch: snapshot popularity, re-solve the knapsack, and
// re-replicate the delta — shrink first (publishing the shorter prefix
// before deleting blocks, so hot-path readers miss instead of reading a
// deleted block), then grow. A grow that runs out of per-disk room keeps the
// clusters that did fit: a shorter prefix is still a valid prefix. It
// returns the clusters pinned and unpinned this epoch.
func (m *Manager) Resolve() (pinned, unpinned int, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cResolves.Inc()

	titles := m.cfg.Catalog()
	cands := make([]Candidate, 0, len(titles))
	byName := make(map[string]media.Title, len(titles))
	for _, t := range titles {
		if t.SizeBytes <= 0 {
			continue
		}
		byName[t.Name] = t
		cands = append(cands, Candidate{
			Name:     t.Name,
			Clusters: (t.SizeBytes + m.cfg.ClusterBytes - 1) / m.cfg.ClusterBytes,
			Points:   m.cfg.Points(t.Name),
		})
	}
	target := Solve(cands, m.budgetClusters)

	cur := *m.view.Load()
	next := make(map[string]Entry, len(target))

	// Shrink pass: publish reduced prefixes, then free their blocks.
	type unpin struct {
		layout   striping.Layout
		from, to int // delete parts [from, to)
	}
	var frees []unpin
	for name, e := range cur {
		want := target[name]
		if _, known := byName[name]; !known {
			want = 0 // title left the catalog
		}
		if want >= e.K {
			next[name] = e
			continue
		}
		if want > 0 {
			next[name] = Entry{Layout: e.Layout, K: want}
		}
		frees = append(frees, unpin{layout: e.Layout, from: want, to: e.K})
	}
	m.publish(next)
	for _, f := range frees {
		for part := f.from; part < f.to; part++ {
			if derr := m.deletePart(f.layout, part); derr == nil {
				unpinned++
				m.cUnpins.Inc()
			}
		}
	}

	// Grow pass: write the missing leading clusters, then publish the longer
	// prefix (readers never see a K ahead of the store).
	for _, c := range cands {
		name := c.Name
		want := target[name]
		have := next[name].K
		if want <= have {
			continue
		}
		layout, lerr := striping.NewLayout(byName[name], m.cfg.ClusterBytes, m.cfg.Array.NumDisks())
		if lerr != nil {
			err = lerr
			continue
		}
		if e, ok := next[name]; ok {
			layout = e.Layout
		}
		content := m.content(name)
		k := have
		for part := have; part < want; part++ {
			if werr := m.writePart(layout, part, content); werr != nil {
				m.cPinFailures.Inc()
				err = werr
				break
			}
			k = part + 1
			pinned++
			m.cPins.Inc()
		}
		if k > 0 {
			next[name] = Entry{Layout: layout, K: k}
		}
	}
	m.publish(next)
	return pinned, unpinned, err
}

// content resolves the title's pin content source.
func (m *Manager) content(name string) striping.ContentFunc {
	if m.cfg.Content != nil {
		return m.cfg.Content(name)
	}
	return striping.TitleContent(name)
}

// writePart stores one prefix cluster on the prefix array under the title's
// cyclic layout. An already-present block (a previous epoch's pin the view
// lost track of, e.g. after a failed grow) counts as success.
func (m *Manager) writePart(layout striping.Layout, part int, content striping.ContentFunc) error {
	di, err := layout.DiskFor(part)
	if err != nil {
		return err
	}
	d, err := m.cfg.Array.Disk(di)
	if err != nil {
		return err
	}
	id := disk.BlockID{Title: layout.Title, Part: part}
	if d.Has(id) {
		return nil
	}
	off, length, err := layout.PartRange(part)
	if err != nil {
		return err
	}
	buf := make([]byte, length)
	content(off, buf)
	return d.Write(id, buf)
}

// deletePart frees one pinned cluster's block.
func (m *Manager) deletePart(layout striping.Layout, part int) error {
	di, err := layout.DiskFor(part)
	if err != nil {
		return err
	}
	d, err := m.cfg.Array.Disk(di)
	if err != nil {
		return err
	}
	return d.Delete(disk.BlockID{Title: layout.Title, Part: part})
}

// publish swaps in a new immutable view and refreshes the gauges.
func (m *Manager) publish(next map[string]Entry) {
	snap := make(map[string]Entry, len(next))
	var clusters int64
	var bytes int64
	for name, e := range next {
		snap[name] = e
		clusters += int64(e.K)
		for part := 0; part < e.K; part++ {
			if _, length, err := e.Layout.PartRange(part); err == nil {
				bytes += length
			}
		}
	}
	m.view.Store(&snap)
	m.gClusters.Set(float64(clusters))
	m.gBytes.Set(float64(bytes))
	m.gTitles.Set(float64(len(snap)))
}
