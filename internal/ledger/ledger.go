// Package ledger is the gossip-replicated link-reservation ledger that makes
// admission control globally consistent: every server's bandwidth broker
// writes its own link reservations into the ledger and reads every *other*
// server's before granting, so two servers sharing a trunk stop jointly
// oversubscribing it (the failure mode per-server brokers have — ROADMAP
// "Distributed broker state").
//
// The replicated state is a per-(link, class, origin) set of versioned rows:
// each origin stamps its rows with its own monotonic sequence, and replicas
// merge by last-writer-wins per cell — a state-based CRDT, so merges commute
// and replicas converge regardless of exchange order. Anti-entropy runs as
// periodic push-pull gossip over the live transport (Gossiper), exchanging
// version vectors and deltas; a restarted peer advertises an empty vector and
// receives the full state. Liveness is lease-based: every origin's gossip
// round bumps a heartbeat clock, a replica renews an origin's lease only when
// it sees that clock advance, and an origin silent for the TTL has its rows
// expired so a dead server's reservations drain instead of pinning trunk
// headroom forever. See DESIGN.md § "Reservation ledger".
package ledger

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
	"time"

	"dvod/internal/clock"
	"dvod/internal/metrics"
	"dvod/internal/topology"
	"dvod/internal/transport"
)

// DefaultTTL is the lease TTL when Config.TTL is zero. It must comfortably
// exceed the gossip interval times the network diameter, so a healthy origin
// is never expired between rounds.
const DefaultTTL = 10 * time.Second

// Config assembles a Ledger.
type Config struct {
	// Origin is the server this replica writes rows as. Required.
	Origin topology.NodeID
	// TTL is the lease duration: an origin whose heartbeat clock has not
	// advanced for TTL has its rows expired. Zero uses DefaultTTL.
	TTL time.Duration
	// Clock drives lease timestamps; nil is wall time.
	Clock clock.Clock
	// Metrics receives ledger.entries / ledger.stale_expired and the
	// per-link committed-vs-local gauges; nil allocates a private registry.
	Metrics *metrics.Registry
}

// cellKey addresses one replicated reservation cell.
type cellKey struct {
	link   topology.LinkID
	class  string
	origin topology.NodeID
}

// cell is one cell's current value under last-writer-wins.
type cell struct {
	seq      uint64
	rate     float64
	sessions int
}

// Ledger is one server's replica of the shared reservation state. All
// methods are safe for concurrent use.
type Ledger struct {
	origin topology.NodeID
	ttl    time.Duration
	clk    clock.Clock
	reg    *metrics.Registry

	mu sync.Mutex
	// clockSeq is this origin's monotonic sequence: every local mutation and
	// every gossip heartbeat advances it, and every own row is stamped with
	// its value at write time.
	clockSeq uint64
	rows     map[cellKey]cell
	// have is the version vector: the highest row sequence held per origin.
	// It only advances when rows are actually applied (or generated), so
	// advertising it can never cause a peer to withhold rows we lack.
	have map[topology.NodeID]uint64
	// clocks is the newest heartbeat clock known per origin — the lease
	// signal, deliberately separate from have: heartbeats advance it without
	// generating rows.
	clocks    map[topology.NodeID]uint64
	lastHeard map[topology.NodeID]time.Time
	// expired marks origins whose lease ran out; their rows are dropped and
	// stay dropped until the origin's clock advances again, at which point
	// have is reset so the full state is relearned.
	expired map[topology.NodeID]bool
	// peerHave caches each peer's last advertised version vector, used to
	// compute the push delta (nil entry → full state).
	peerHave map[topology.NodeID]map[topology.NodeID]uint64
	// pubLinks tracks which per-link gauges have been published, so a link
	// whose rows disappear is zeroed rather than left stale.
	pubLinks map[topology.LinkID]bool
}

// New validates the configuration and builds a replica.
func New(cfg Config) (*Ledger, error) {
	if cfg.Origin == "" {
		return nil, fmt.Errorf("ledger: empty origin")
	}
	if cfg.TTL < 0 {
		return nil, fmt.Errorf("ledger: negative TTL %v", cfg.TTL)
	}
	if cfg.TTL == 0 {
		cfg.TTL = DefaultTTL
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Wall{}
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	// The origin sequence is seeded from the clock so a restarted replica's
	// fresh writes outrank everything its previous incarnation published —
	// the classic epoch trick that keeps last-writer-wins monotonic across
	// restarts (assumes the clock moves forward between incarnations).
	var seed uint64
	if nano := cfg.Clock.Now().UnixNano(); nano > 0 {
		seed = uint64(nano)
	}
	return &Ledger{
		origin:    cfg.Origin,
		ttl:       cfg.TTL,
		clk:       cfg.Clock,
		reg:       cfg.Metrics,
		clockSeq:  seed,
		rows:      make(map[cellKey]cell),
		have:      make(map[topology.NodeID]uint64),
		clocks:    make(map[topology.NodeID]uint64),
		lastHeard: make(map[topology.NodeID]time.Time),
		expired:   make(map[topology.NodeID]bool),
		peerHave:  make(map[topology.NodeID]map[topology.NodeID]uint64),
		pubLinks:  make(map[topology.LinkID]bool),
	}, nil
}

// Origin returns the replica's own origin node.
func (l *Ledger) Origin() topology.NodeID { return l.origin }

// TTL returns the configured lease duration.
func (l *Ledger) TTL() time.Duration { return l.ttl }

// bumpLocked advances the origin sequence and mirrors it into the clock and
// version vectors. Callers hold l.mu.
func (l *Ledger) bumpLocked() uint64 {
	l.clockSeq++
	l.clocks[l.origin] = l.clockSeq
	l.have[l.origin] = l.clockSeq
	return l.clockSeq
}

// Reserve records rate Mbps of one more session of class on every link —
// called by the admission broker right after it commits a grant.
func (l *Ledger) Reserve(links []topology.LinkID, class string, rate float64) {
	l.adjust(links, class, rate, +1)
}

// Release returns rate Mbps of one session of class on every link. Rows
// drained to zero are kept as tombstones so last-writer-wins cannot
// resurrect the released reservation from a stale replica.
func (l *Ledger) Release(links []topology.LinkID, class string, rate float64) {
	l.adjust(links, class, -rate, -1)
}

func (l *Ledger) adjust(links []topology.LinkID, class string, rateDelta float64, sessionDelta int) {
	if len(links) == 0 {
		return
	}
	l.mu.Lock()
	for _, id := range links {
		k := cellKey{link: id, class: class, origin: l.origin}
		c := l.rows[k]
		c.rate += rateDelta
		if c.rate < 1e-9 {
			c.rate = 0
		}
		c.sessions += sessionDelta
		if c.sessions < 0 {
			c.sessions = 0
		}
		c.seq = l.bumpLocked()
		l.rows[k] = c
	}
	l.publishLocked()
	l.mu.Unlock()
}

// Beat advances the origin's heartbeat clock — the gossiper calls it once per
// round, so peers keep renewing this origin's lease even when no
// reservations change.
func (l *Ledger) Beat() {
	l.mu.Lock()
	l.bumpLocked()
	l.mu.Unlock()
}

// RemoteReservedMbps sums every other origin's committed bandwidth on one
// link — the remote load the local broker must subtract from physical
// headroom.
func (l *Ledger) RemoteReservedMbps(link topology.LinkID) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var sum float64
	for k, c := range l.rows {
		if k.link == link && k.origin != l.origin {
			sum += c.rate
		}
	}
	return sum
}

// RemoteClassReservedMbps sums every other origin's committed bandwidth of
// one class on one link — the remote load against the class's calibrated
// trunk share.
func (l *Ledger) RemoteClassReservedMbps(link topology.LinkID, class string) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var sum float64
	for k, c := range l.rows {
		if k.link == link && k.class == class && k.origin != l.origin {
			sum += c.rate
		}
	}
	return sum
}

// Entries returns the replicated row count (tombstones included).
func (l *Ledger) Entries() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.rows)
}

// Rows returns a sorted snapshot of the replicated state (tests, debugging).
func (l *Ledger) Rows() []transport.LedgerRow {
	l.mu.Lock()
	out := make([]transport.LedgerRow, 0, len(l.rows))
	for k, c := range l.rows {
		out = append(out, transport.LedgerRow{
			Link: k.link, Class: k.class, Origin: k.origin,
			Seq: c.seq, RateMbps: c.rate, Sessions: c.sessions,
		})
	}
	l.mu.Unlock()
	sort.Slice(out, func(a, b int) bool {
		if out[a].Link != out[b].Link {
			return out[a].Link < out[b].Link
		}
		if out[a].Class != out[b].Class {
			return out[a].Class < out[b].Class
		}
		return out[a].Origin < out[b].Origin
	})
	return out
}

// Digest hashes the replicated row set. Two replicas return equal digests
// exactly when they hold identical rows — the convergence check the
// partition-healing tests assert.
func (l *Ledger) Digest() string {
	rows := l.Rows()
	h := sha256.New()
	for _, r := range rows {
		fmt.Fprintf(h, "%s|%s|%s|%d|%.9g|%d\n", r.Link, r.Class, r.Origin, r.Seq, r.RateMbps, r.Sessions)
	}
	return hex.EncodeToString(h.Sum(nil)[:8])
}

// Sync builds the payload to send to peer: the sender's clock and version
// vectors, plus every row newer than the peer's last advertised vector. An
// unknown peer (or one that re-advertised a reset vector — a restart) gets
// the full state.
func (l *Ledger) Sync(peer topology.NodeID) transport.LedgerSyncPayload {
	l.mu.Lock()
	defer l.mu.Unlock()
	p := transport.LedgerSyncPayload{
		From:   l.origin,
		Clocks: copyVector(l.clocks),
		Have:   copyVector(l.have),
	}
	known := l.peerHave[peer]
	for k, c := range l.rows {
		// Rows the peer is missing, plus an unconditional echo of the peer's
		// own-origin rows (cheap: one cell per link×class it touched) — the
		// self-audit that lets a restarted peer spot and tombstone zombie
		// cells its previous incarnation left behind.
		if c.seq > known[k.origin] || k.origin == peer {
			p.Rows = append(p.Rows, transport.LedgerRow{
				Link: k.link, Class: k.class, Origin: k.origin,
				Seq: c.seq, RateMbps: c.rate, Sessions: c.sessions,
			})
		}
	}
	sort.Slice(p.Rows, func(a, b int) bool {
		if p.Rows[a].Origin != p.Rows[b].Origin {
			return p.Rows[a].Origin < p.Rows[b].Origin
		}
		return p.Rows[a].Seq < p.Rows[b].Seq
	})
	return p
}

// Merge folds one received sync leg into the replica: renew leases for
// origins whose heartbeat clock advanced, apply rows by last-writer-wins per
// cell, and cache the sender's version vector for future delta computation.
// Rows claiming this replica's own origin are never applied — they are
// pre-restart zombies, and the replica reasserts its authoritative state at
// fresh sequences above theirs instead.
func (l *Ledger) Merge(p transport.LedgerSyncPayload) {
	now := l.clk.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	if p.From != "" && p.From != l.origin {
		l.peerHave[p.From] = copyVector(p.Have)
	}
	for o, ck := range p.Clocks {
		if o == l.origin {
			if ck > l.clockSeq {
				l.reassertLocked(ck)
			}
			continue
		}
		if ck > l.clocks[o] {
			l.clocks[o] = ck
			l.lastHeard[o] = now
			if l.expired[o] {
				// The origin lives again after a lease expiry: relearn its
				// rows from scratch.
				delete(l.expired, o)
				l.have[o] = 0
			}
		}
	}
	for _, r := range p.Rows {
		if r.Origin == l.origin {
			if r.Seq > l.clockSeq {
				l.reassertLocked(r.Seq)
			}
			// A zombie cell this replica no longer claims: tombstone it at a
			// fresh sequence so the stale value dies everywhere.
			k := cellKey{link: r.Link, class: r.Class, origin: l.origin}
			if _, ok := l.rows[k]; !ok {
				l.rows[k] = cell{seq: l.bumpLocked()}
			}
			continue
		}
		if l.expired[r.Origin] {
			continue // lease ran out; drop until its clock advances again
		}
		k := cellKey{link: r.Link, class: r.Class, origin: r.Origin}
		cur, ok := l.rows[k]
		if ok && r.Seq <= cur.seq {
			continue
		}
		if !ok && r.Seq <= l.have[r.Origin] {
			continue // already seen and deliberately expired
		}
		l.rows[k] = cell{seq: r.Seq, rate: r.RateMbps, sessions: r.Sessions}
		if r.Seq > l.have[r.Origin] {
			l.have[r.Origin] = r.Seq
		}
		if _, heard := l.lastHeard[r.Origin]; !heard {
			l.lastHeard[r.Origin] = now
		}
	}
	l.publishLocked()
}

// HandleSync is the receiving side of one exchange: merge the request, reply
// with the delta the sender is missing. Because Merge cached the sender's
// fresh version vector, the reply delta is exact.
func (l *Ledger) HandleSync(req transport.LedgerSyncPayload) transport.LedgerSyncPayload {
	l.Merge(req)
	return l.Sync(req.From)
}

// reassertLocked jumps the origin sequence above a pre-restart zombie and
// rewrites every own row at fresh sequences, so this replica's authoritative
// values outrank any stale state still circulating. Callers hold l.mu.
func (l *Ledger) reassertLocked(zombieSeq uint64) {
	if zombieSeq > l.clockSeq {
		l.clockSeq = zombieSeq
	}
	for k, c := range l.rows {
		if k.origin == l.origin {
			l.clockSeq++
			c.seq = l.clockSeq
			l.rows[k] = c
		}
	}
	l.clocks[l.origin] = l.clockSeq
	l.have[l.origin] = l.clockSeq
}

// ExpireStale drops every row of origins whose lease ran out — a dead
// server's reservations drain after TTL instead of pinning link headroom
// forever. The expired origin's vectors are kept as high-watermarks so
// replicas still relaying its old rows cannot resurrect them; if the origin
// comes back, its advancing clock resets the watermark and the state is
// relearned. Returns how many origins were expired.
func (l *Ledger) ExpireStale() int {
	now := l.clk.Now()
	l.mu.Lock()
	var dropped []topology.NodeID
	for o, t := range l.lastHeard {
		if o != l.origin && now.Sub(t) > l.ttl {
			dropped = append(dropped, o)
		}
	}
	for _, o := range dropped {
		for k := range l.rows {
			if k.origin == o {
				delete(l.rows, k)
			}
		}
		delete(l.lastHeard, o)
		l.expired[o] = true
		l.reg.Counter("ledger.stale_expired").Inc()
	}
	if len(dropped) > 0 {
		l.publishLocked()
	}
	l.mu.Unlock()
	return len(dropped)
}

// ExpireOrigin drops every row of one origin immediately, without waiting
// for its lease to time out — the event-driven reclaim path: a membership
// fail or leave event lands here so a dead server's reservations release
// link headroom as soon as the failure is detected rather than a full TTL
// later. Semantics match ExpireStale for that origin: the expired
// watermark blocks resurrection by relayed rows, and an actually-returning
// origin relearns its state through its advancing clock. Reports whether
// any state was dropped.
func (l *Ledger) ExpireOrigin(o topology.NodeID) bool {
	if o == l.origin {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	dropped := false
	for k := range l.rows {
		if k.origin == o {
			delete(l.rows, k)
			dropped = true
		}
	}
	if _, heard := l.lastHeard[o]; heard {
		dropped = true
	}
	delete(l.lastHeard, o)
	if !dropped {
		return false
	}
	l.expired[o] = true
	l.reg.Counter("ledger.origin_expired").Inc()
	l.publishLocked()
	return true
}

// publishLocked refreshes the ledger gauges: the replicated entry count and,
// per link, the committed bandwidth split into this origin's share and the
// remote origins'. Callers hold l.mu.
func (l *Ledger) publishLocked() {
	l.reg.Gauge("ledger.entries").Set(float64(len(l.rows)))
	local := make(map[topology.LinkID]float64)
	remote := make(map[topology.LinkID]float64)
	for k, c := range l.rows {
		if k.origin == l.origin {
			local[k.link] += c.rate
		} else {
			remote[k.link] += c.rate
		}
	}
	for link := range l.pubLinks {
		if _, ok := local[link]; !ok {
			if _, ok := remote[link]; !ok {
				l.reg.Gauge("ledger.local_mbps." + string(link)).Set(0)
				l.reg.Gauge("ledger.remote_mbps." + string(link)).Set(0)
				delete(l.pubLinks, link)
			}
		}
	}
	for link := range local {
		l.pubLinks[link] = true
	}
	for link := range remote {
		l.pubLinks[link] = true
	}
	for link := range l.pubLinks {
		l.reg.Gauge("ledger.local_mbps." + string(link)).Set(local[link])
		l.reg.Gauge("ledger.remote_mbps." + string(link)).Set(remote[link])
	}
}

func copyVector(m map[topology.NodeID]uint64) map[topology.NodeID]uint64 {
	if len(m) == 0 {
		return nil
	}
	out := make(map[topology.NodeID]uint64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
