package ledger

import (
	"net"
	"testing"
	"time"

	"dvod/internal/clock"
	"dvod/internal/topology"
	"dvod/internal/transport"
)

func newTestLedger(t *testing.T, origin topology.NodeID, clk clock.Clock) *Ledger {
	t.Helper()
	l, err := New(Config{Origin: origin, TTL: 10 * time.Second, Clock: clk})
	if err != nil {
		t.Fatalf("new ledger %s: %v", origin, err)
	}
	return l
}

// sync runs one full push-pull exchange a→b and folds the reply back into a,
// exactly like one gossip round does over the wire.
func syncPair(a, b *Ledger) {
	reply := b.HandleSync(a.Sync(b.Origin()))
	a.Merge(reply)
}

// TestReserveVisibleAcrossReplicas pins the core property: after one
// exchange, B's broker sees A's reservation as remote load.
func TestReserveVisibleAcrossReplicas(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	a := newTestLedger(t, "A", clk)
	b := newTestLedger(t, "B", clk)

	a.Reserve([]topology.LinkID{"M|O"}, "premium", 1.5)
	if got := b.RemoteReservedMbps("M|O"); got != 0 {
		t.Fatalf("B sees %v Mbps before any gossip", got)
	}
	syncPair(a, b)
	if got := b.RemoteReservedMbps("M|O"); got != 1.5 {
		t.Fatalf("B sees %v Mbps remote, want 1.5", got)
	}
	if got := b.RemoteClassReservedMbps("M|O", "premium"); got != 1.5 {
		t.Fatalf("B sees %v Mbps remote premium, want 1.5", got)
	}
	if got := b.RemoteClassReservedMbps("M|O", "standard"); got != 0 {
		t.Fatalf("B sees %v Mbps remote standard, want 0", got)
	}
	// A's own rows are local, not remote, on A.
	if got := a.RemoteReservedMbps("M|O"); got != 0 {
		t.Fatalf("A counts its own reservation as remote: %v", got)
	}
	if a.Digest() != b.Digest() {
		t.Fatalf("digests diverge after exchange: %s vs %s", a.Digest(), b.Digest())
	}
}

// TestReleaseTombstonePropagates pins that a release cannot be resurrected
// by last-writer-wins: the zero-rate row outranks the old value everywhere.
func TestReleaseTombstonePropagates(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	a := newTestLedger(t, "A", clk)
	b := newTestLedger(t, "B", clk)
	c := newTestLedger(t, "C", clk)

	links := []topology.LinkID{"M|O"}
	a.Reserve(links, "premium", 1.5)
	syncPair(a, b)
	syncPair(b, c) // C learns A's row via B

	a.Release(links, "premium", 1.5)
	syncPair(a, c)
	if got := c.RemoteReservedMbps("M|O"); got != 0 {
		t.Fatalf("C still sees %v Mbps after release", got)
	}
	// B still relays the stale row; C must not regress.
	syncPair(b, c)
	if got := c.RemoteReservedMbps("M|O"); got != 0 {
		t.Fatalf("stale relay resurrected %v Mbps on C", got)
	}
	// Full convergence: everyone equal after a ring of exchanges.
	syncPair(a, b)
	if a.Digest() != b.Digest() || b.Digest() != c.Digest() {
		t.Fatalf("digests diverge: %s %s %s", a.Digest(), b.Digest(), c.Digest())
	}
}

// TestMergeCommutes pins the CRDT property: applying the same payloads in
// different orders yields the same state.
func TestMergeCommutes(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	a := newTestLedger(t, "A", clk)
	b := newTestLedger(t, "B", clk)
	a.Reserve([]topology.LinkID{"M|O", "A|M"}, "premium", 1.5)
	a.Reserve([]topology.LinkID{"M|O"}, "standard", 0.8)
	b.Reserve([]topology.LinkID{"M|O"}, "premium", 2.0)

	pa := a.Sync("X")
	pb := b.Sync("X")

	x := newTestLedger(t, "X", clk)
	y := newTestLedger(t, "Y", clk)
	x.Merge(pa)
	x.Merge(pb)
	y.Merge(pb)
	y.Merge(pa)
	// Digests include origin-distinct rows only; X and Y hold the same set.
	if got, want := x.Rows(), y.Rows(); len(got) != len(want) {
		t.Fatalf("row counts diverge: %d vs %d", len(got), len(want))
	}
	for i, r := range x.Rows() {
		if y.Rows()[i] != r {
			t.Fatalf("row %d diverges: %+v vs %+v", i, r, y.Rows()[i])
		}
	}
	// Idempotent: re-merging changes nothing.
	before := x.Digest()
	x.Merge(pa)
	x.Merge(pb)
	if x.Digest() != before {
		t.Fatal("re-merge changed state")
	}
}

// TestRestartFullStateFallback pins the restart path: a replica that lost
// everything advertises an empty vector and relearns the full state in one
// exchange, within two rounds of digest equality.
func TestRestartFullStateFallback(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	a := newTestLedger(t, "A", clk)
	b := newTestLedger(t, "B", clk)
	a.Reserve([]topology.LinkID{"M|O"}, "premium", 1.5)
	b.Reserve([]topology.LinkID{"M|O"}, "standard", 0.8)
	syncPair(a, b)

	// B restarts empty. The clock moves (a real restart always takes time),
	// which seeds B's new epoch above its old sequences.
	clk.Advance(time.Second)
	b2 := newTestLedger(t, "B", clk)
	syncPair(b2, a)
	if got := b2.RemoteReservedMbps("M|O"); got != 1.5 {
		t.Fatalf("restarted B sees %v Mbps remote, want 1.5", got)
	}
	syncPair(b2, a)
	if a.Digest() != b2.Digest() {
		t.Fatalf("digests diverge after restart resync: %s vs %s", a.Digest(), b2.Digest())
	}
}

// TestRestartReassertsOwnRows pins zombie suppression: after B restarts, the
// old B rows still circulating via A must not be re-adopted as B's state —
// B reasserts at fresher sequences and tombstones cells it no longer claims.
func TestRestartReassertsOwnRows(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	a := newTestLedger(t, "A", clk)
	b := newTestLedger(t, "B", clk)
	b.Reserve([]topology.LinkID{"M|O"}, "premium", 2.0)
	syncPair(a, b) // A now holds B's pre-restart row

	clk.Advance(time.Second)
	b2 := newTestLedger(t, "B", clk)
	// B's only live reservation after restart:
	b2.Reserve([]topology.LinkID{"A|M"}, "premium", 1.0)
	syncPair(b2, a) // A pushes the zombie M|O row back at B
	if got := b2.RemoteReservedMbps("M|O"); got != 0 {
		t.Fatalf("zombie row counted as remote on B: %v", got)
	}
	syncPair(a, b2)
	syncPair(b2, a)
	if a.Digest() != b2.Digest() {
		t.Fatalf("digests diverge after reassert: %s vs %s", a.Digest(), b2.Digest())
	}
	// The zombie cell must be dead on A too: B tombstoned it.
	if got := a.RemoteReservedMbps("M|O"); got != 0 {
		t.Fatalf("A still counts zombie B row: %v Mbps", got)
	}
	if got := a.RemoteReservedMbps("A|M"); got != 1.0 {
		t.Fatalf("A sees %v Mbps on A|M, want B's live 1.0", got)
	}
}

// TestLeaseExpiryFreesReservations pins the dead-origin path: once B falls
// silent past the TTL, A expires B's rows, and stale relays cannot bring
// them back.
func TestLeaseExpiryFreesReservations(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	a := newTestLedger(t, "A", clk)
	b := newTestLedger(t, "B", clk)
	c := newTestLedger(t, "C", clk)
	b.Reserve([]topology.LinkID{"M|O"}, "premium", 2.0)
	syncPair(a, b)
	syncPair(c, b)
	if got := a.RemoteReservedMbps("M|O"); got != 2.0 {
		t.Fatalf("A sees %v before expiry", got)
	}

	// B dies. Its lease runs out on A.
	clk.Advance(11 * time.Second)
	if n := a.ExpireStale(); n != 1 {
		t.Fatalf("expired %d origins, want 1", n)
	}
	if got := a.RemoteReservedMbps("M|O"); got != 0 {
		t.Fatalf("A still sees %v Mbps after expiry", got)
	}
	// C never expired B and still relays the row; A must not re-adopt it.
	a.Merge(c.Sync("A"))
	if got := a.RemoteReservedMbps("M|O"); got != 0 {
		t.Fatalf("stale relay resurrected expired origin: %v Mbps", got)
	}
}

// TestLeaseRevivalRelearnsState pins revival: an expired origin that beats
// again gets its lease back and its rows relearned in full.
func TestLeaseRevivalRelearnsState(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	a := newTestLedger(t, "A", clk)
	b := newTestLedger(t, "B", clk)
	b.Reserve([]topology.LinkID{"M|O"}, "premium", 2.0)
	syncPair(a, b)

	clk.Advance(11 * time.Second)
	a.ExpireStale()
	if got := a.RemoteReservedMbps("M|O"); got != 0 {
		t.Fatalf("A sees %v after expiry", got)
	}

	// B comes back: heartbeat advances its clock, then the next exchange
	// must carry the full row set (A reset its watermark on revival).
	b.Beat()
	syncPair(a, b)
	syncPair(a, b)
	if got := a.RemoteReservedMbps("M|O"); got != 2.0 {
		t.Fatalf("A sees %v after revival, want 2.0", got)
	}
	if a.Digest() != b.Digest() {
		t.Fatalf("digests diverge after revival: %s vs %s", a.Digest(), b.Digest())
	}
}

// TestRelayCannotRenewLease pins that hearing *about* an origin via a relay
// whose clock has not advanced does not renew the lease: only fresh
// heartbeats keep an origin alive.
func TestRelayCannotRenewLease(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	a := newTestLedger(t, "A", clk)
	b := newTestLedger(t, "B", clk)
	c := newTestLedger(t, "C", clk)
	b.Reserve([]topology.LinkID{"M|O"}, "premium", 2.0)
	syncPair(a, b)
	syncPair(c, b)

	// B dies; C keeps gossiping its frozen clock at A every second.
	for i := 0; i < 15; i++ {
		clk.Advance(time.Second)
		a.Merge(c.Sync("A"))
		a.ExpireStale()
		c.Beat()
	}
	if got := a.RemoteReservedMbps("M|O"); got != 0 {
		t.Fatalf("frozen relayed clock kept B alive: %v Mbps", got)
	}
}

// TestExpiredRowsStayGauged pins the ledger.stale_expired counter and entry
// gauge wiring.
func TestMetricsPublished(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	a := newTestLedger(t, "A", clk)
	a.Reserve([]topology.LinkID{"M|O"}, "premium", 1.5)
	if got := a.reg.Gauge("ledger.entries").Value(); got != 1 {
		t.Fatalf("ledger.entries = %v, want 1", got)
	}
	if got := a.reg.Gauge("ledger.local_mbps.M|O").Value(); got != 1.5 {
		t.Fatalf("local gauge = %v, want 1.5", got)
	}
	b := newTestLedger(t, "B", clk)
	b.Merge(a.Sync("B"))
	if got := b.reg.Gauge("ledger.remote_mbps.M|O").Value(); got != 1.5 {
		t.Fatalf("remote gauge on B = %v, want 1.5", got)
	}
}

// TestSyncDeltaOnly pins the anti-entropy efficiency property: after one
// full exchange, the next payload to the same peer carries no rows.
func TestSyncDeltaOnly(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	a := newTestLedger(t, "A", clk)
	b := newTestLedger(t, "B", clk)
	a.Reserve([]topology.LinkID{"M|O"}, "premium", 1.5)
	syncPair(a, b)
	if p := a.Sync("B"); len(p.Rows) != 0 {
		t.Fatalf("second sync resends %d rows", len(p.Rows))
	}
	// A new local write produces exactly the changed rows.
	a.Reserve([]topology.LinkID{"A|M"}, "premium", 1.5)
	if p := a.Sync("B"); len(p.Rows) != 1 {
		t.Fatalf("delta sync carries %d rows, want 1", len(p.Rows))
	}
}

// TestHandleSyncRepliesExactDelta pins the pull half: the responder's reply
// contains exactly what the requester is missing.
func TestHandleSyncRepliesExactDelta(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	a := newTestLedger(t, "A", clk)
	b := newTestLedger(t, "B", clk)
	a.Reserve([]topology.LinkID{"M|O"}, "premium", 1.5)
	b.Reserve([]topology.LinkID{"M|O"}, "standard", 0.8)

	// The reply carries what A is missing (B's row) plus the self-audit echo
	// of A's own rows — nothing else.
	reply := b.HandleSync(a.Sync("B"))
	var fromB, echoA int
	for _, r := range reply.Rows {
		switch r.Origin {
		case "B":
			fromB++
		case "A":
			echoA++
		default:
			t.Fatalf("reply carries foreign row %+v", r)
		}
	}
	if fromB != 1 || echoA != 1 {
		t.Fatalf("reply carries %d B rows and %d A echoes, want 1 and 1", fromB, echoA)
	}
	a.Merge(reply)
	if a.Digest() != b.Digest() {
		t.Fatal("digests diverge after one push-pull")
	}
}

// TestGossiperRunOnceConverges drives two gossipers over an in-memory wire
// (JSON control-frame path) and checks digest convergence.
func TestGossiperRunOnceConverges(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	a := newTestLedger(t, "A", clk)
	b := newTestLedger(t, "B", clk)
	a.Reserve([]topology.LinkID{"M|O"}, "premium", 1.5)
	b.Reserve([]topology.LinkID{"M|O"}, "standard", 0.8)

	// loopback "dial": the server side answers exactly one exchange against
	// the target ledger, mirroring Server.handleLedgerSync.
	dialTo := func(target *Ledger) func(topology.NodeID, string) (*transport.Conn, error) {
		return func(topology.NodeID, string) (*transport.Conn, error) {
			cp, sp := net.Pipe()
			client, server := transport.NewConn(cp), transport.NewConn(sp)
			go func() {
				defer server.Close()
				hello, _, err := server.ReadFrameOrMessage(nil)
				if err != nil || hello.Type != transport.TypeHello {
					return
				}
				if err := server.AcceptHello(hello); err != nil {
					return
				}
				m, fr, err := server.ReadFrameOrMessage(nil)
				if err != nil {
					return
				}
				var req transport.LedgerSyncPayload
				binary := fr != nil
				if binary {
					if fr.Type != transport.FrameLedgerSync {
						fr.Release()
						return
					}
					req, err = transport.DecodeLedgerSyncFrame(fr)
					fr.Release()
					if err != nil {
						return
					}
				} else {
					if m.Type != transport.TypeLedgerSync {
						return
					}
					if req, err = transport.Decode[transport.LedgerSyncPayload](m); err != nil {
						return
					}
				}
				resp := target.HandleSync(req)
				if binary {
					server.WriteLedgerSyncFrame(resp, true)
					return
				}
				reply, err := transport.Encode(transport.TypeLedgerSyncOK, resp)
				if err != nil {
					return
				}
				server.WriteMessage(reply)
			}()
			return client, nil
		}
	}
	lookup := func(topology.NodeID) (string, error) { return "mem", nil }
	ga, err := NewGossiper(GossipConfig{
		Ledger: a, Peers: []topology.NodeID{"B"},
		Lookup: lookup, Dial: dialTo(b), Clock: clk,
	})
	if err != nil {
		t.Fatalf("gossiper: %v", err)
	}
	ga.RunOnce()
	if a.Digest() != b.Digest() {
		t.Fatalf("digests diverge after gossip round: %s vs %s", a.Digest(), b.Digest())
	}
	if got := b.RemoteReservedMbps("M|O"); got != 1.5 {
		t.Fatalf("B sees %v Mbps remote after gossip, want 1.5", got)
	}
}
