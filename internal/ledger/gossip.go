package ledger

import (
	"fmt"
	"sync"
	"time"

	"dvod/internal/clock"
	"dvod/internal/metrics"
	"dvod/internal/topology"
	"dvod/internal/transport"
)

// DefaultGossipInterval is the anti-entropy cadence when Config.Interval is
// zero: fast enough that a reservation is cluster-visible well inside a
// session's lifetime, slow enough to stay a background whisper.
const DefaultGossipInterval = 250 * time.Millisecond

// DefaultFanout is the rumor-mongering width: how many peers one round
// push-pulls with. One peer per round converges in O(N) rounds on a fleet of
// N replicas; fanning out to two cuts that to O(log N) — the difference that
// matters once the fleet grows past the fixture's six nodes — while keeping
// per-round cost constant.
const DefaultFanout = 2

// GossipConfig assembles a Gossiper.
type GossipConfig struct {
	// Ledger is the replica this gossiper feeds. Required.
	Ledger *Ledger
	// Peers are the other replicas, visited round-robin. May be empty (the
	// gossiper then only beats the heartbeat and expires stale origins).
	Peers []topology.NodeID
	// PeersFn, when set, supplies the peer set dynamically each round and
	// takes precedence over Peers — the elastic-membership hook: the facade
	// wires it to the live membership view so joiners are gossiped to and
	// failed or departed replicas stop being dialed. The returned slice may
	// include the local origin; it is filtered out.
	PeersFn func() []topology.NodeID
	// Fanout is how many peers each round exchanges with (rumor-mongering
	// width). Zero uses DefaultFanout; one reproduces the historical
	// single-peer walk.
	Fanout int
	// Lookup resolves a peer to a dialable address. Required when Peers is
	// non-empty.
	Lookup func(topology.NodeID) (string, error)
	// Dial opens a connection to peer at addr. Nil uses transport.Dial; the
	// facade injects a fault-wrapped dialer here so partitions cut gossip
	// exactly like they cut the delivery plane.
	Dial func(peer topology.NodeID, addr string) (*transport.Conn, error)
	// Interval is the gossip cadence. Zero uses DefaultGossipInterval.
	Interval time.Duration
	// Clock paces rounds; nil is wall time.
	Clock clock.Clock
	// Metrics receives ledger.gossip_rounds / ledger.gossip_errors; nil
	// falls back to the ledger's registry.
	Metrics *metrics.Registry
}

// Gossiper runs the anti-entropy loop: every interval it beats the local
// heartbeat, expires origins whose lease ran out, and push-pulls with the
// next peer in round-robin order. One exchange is a fresh dial, a
// capability-negotiated hello, one ledger.sync request carrying this
// replica's delta for the peer, and one reply carrying the peer's delta
// back — after which both sides hold the union.
type Gossiper struct {
	cfg GossipConfig

	// runMu serializes rounds: the background loop and direct RunOnce
	// callers (deterministic tests) may overlap.
	runMu sync.Mutex
	next  int

	mu      sync.Mutex
	stop    chan struct{}
	done    chan struct{}
	started bool
}

// NewGossiper validates the configuration and builds a gossiper.
func NewGossiper(cfg GossipConfig) (*Gossiper, error) {
	if cfg.Ledger == nil {
		return nil, fmt.Errorf("ledger: gossiper needs a ledger")
	}
	if (len(cfg.Peers) > 0 || cfg.PeersFn != nil) && cfg.Lookup == nil {
		return nil, fmt.Errorf("ledger: gossiper has peers but no lookup")
	}
	if cfg.Fanout < 0 {
		return nil, fmt.Errorf("ledger: negative fanout %d", cfg.Fanout)
	}
	if cfg.Fanout == 0 {
		cfg.Fanout = DefaultFanout
	}
	if cfg.Interval < 0 {
		return nil, fmt.Errorf("ledger: negative gossip interval %v", cfg.Interval)
	}
	if cfg.Interval == 0 {
		cfg.Interval = DefaultGossipInterval
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Wall{}
	}
	if cfg.Metrics == nil {
		cfg.Metrics = cfg.Ledger.reg
	}
	if cfg.Dial == nil {
		cfg.Dial = func(_ topology.NodeID, addr string) (*transport.Conn, error) {
			return transport.Dial(addr)
		}
	}
	peers := make([]topology.NodeID, 0, len(cfg.Peers))
	for _, p := range cfg.Peers {
		if p != cfg.Ledger.Origin() {
			peers = append(peers, p)
		}
	}
	cfg.Peers = peers
	return &Gossiper{cfg: cfg}, nil
}

// Interval returns the configured gossip cadence.
func (g *Gossiper) Interval() time.Duration { return g.cfg.Interval }

// Start launches the background loop. Safe to call once.
func (g *Gossiper) Start() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.started {
		return
	}
	g.started = true
	g.stop = make(chan struct{})
	g.done = make(chan struct{})
	go g.loop(g.stop, g.done)
}

// Stop halts the loop and waits for it to exit. Safe to call repeatedly.
func (g *Gossiper) Stop() {
	g.mu.Lock()
	if !g.started {
		g.mu.Unlock()
		return
	}
	g.started = false
	stop, done := g.stop, g.done
	g.mu.Unlock()
	close(stop)
	<-done
}

func (g *Gossiper) loop(stop, done chan struct{}) {
	defer close(done)
	for {
		select {
		case <-stop:
			return
		case <-g.cfg.Clock.After(g.cfg.Interval):
		}
		g.RunOnce()
	}
}

// RunOnce executes one gossip round synchronously: heartbeat, lease expiry,
// and Fanout peer exchanges (round-robin over the current peer set). Tests
// drive convergence deterministically by calling it directly instead of
// Start.
func (g *Gossiper) RunOnce() {
	g.runMu.Lock()
	defer g.runMu.Unlock()
	g.cfg.Ledger.Beat()
	g.cfg.Ledger.ExpireStale()
	g.cfg.Metrics.Counter("ledger.gossip_rounds").Inc()
	peers := g.peers()
	if len(peers) == 0 {
		return
	}
	fanout := g.cfg.Fanout
	if fanout > len(peers) {
		fanout = len(peers)
	}
	for i := 0; i < fanout; i++ {
		peer := peers[g.next%len(peers)]
		g.next++
		if err := g.exchange(peer); err != nil {
			g.cfg.Metrics.Counter("ledger.gossip_errors").Inc()
		}
	}
}

// peers resolves this round's peer set: the dynamic source when wired, the
// static list otherwise, with the local origin filtered either way.
func (g *Gossiper) peers() []topology.NodeID {
	if g.cfg.PeersFn == nil {
		return g.cfg.Peers
	}
	dynamic := g.cfg.PeersFn()
	out := make([]topology.NodeID, 0, len(dynamic))
	for _, p := range dynamic {
		if p != g.cfg.Ledger.Origin() {
			out = append(out, p)
		}
	}
	return out
}

// exchange performs one push-pull with peer.
func (g *Gossiper) exchange(peer topology.NodeID) error {
	addr, err := g.cfg.Lookup(peer)
	if err != nil {
		return fmt.Errorf("lookup %s: %w", peer, err)
	}
	conn, err := g.cfg.Dial(peer, addr)
	if err != nil {
		return fmt.Errorf("dial %s: %w", peer, err)
	}
	defer conn.Close()
	// Wall time deliberately: the deadline guards a real socket even when the
	// gossip cadence runs on a virtual clock.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	granted, err := conn.NegotiateCaps(transport.CapLedgerSync, transport.CapClusterFrames)
	if err != nil {
		return fmt.Errorf("negotiate with %s: %w", peer, err)
	}
	req := g.cfg.Ledger.Sync(peer)
	binary := granted[transport.CapLedgerSync] && granted[transport.CapClusterFrames]
	if binary {
		if err := conn.WriteLedgerSyncFrame(req, false); err != nil {
			return fmt.Errorf("send sync to %s: %w", peer, err)
		}
	} else {
		m, err := transport.Encode(transport.TypeLedgerSync, req)
		if err != nil {
			return fmt.Errorf("encode sync for %s: %w", peer, err)
		}
		if err := conn.WriteMessage(m); err != nil {
			return fmt.Errorf("send sync to %s: %w", peer, err)
		}
	}
	m, f, err := conn.ReadFrameOrMessage(nil)
	if err != nil {
		return fmt.Errorf("read reply from %s: %w", peer, err)
	}
	var reply transport.LedgerSyncPayload
	if f != nil {
		defer f.Release()
		if f.Type != transport.FrameLedgerSync {
			return fmt.Errorf("reply from %s: unexpected frame 0x%02x", peer, f.Type)
		}
		reply, err = transport.DecodeLedgerSyncFrame(f)
		if err != nil {
			return fmt.Errorf("reply from %s: %w", peer, err)
		}
	} else {
		if m.Type == transport.TypeError {
			return fmt.Errorf("reply from %s: remote error", peer)
		}
		if m.Type != transport.TypeLedgerSyncOK {
			return fmt.Errorf("reply from %s: unexpected %q", peer, m.Type)
		}
		reply, err = transport.Decode[transport.LedgerSyncPayload](m)
		if err != nil {
			return fmt.Errorf("reply from %s: %w", peer, err)
		}
	}
	g.cfg.Ledger.Merge(reply)
	return nil
}
