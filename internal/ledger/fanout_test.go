package ledger

import (
	"fmt"
	"net"
	"testing"
	"time"

	"dvod/internal/clock"
	"dvod/internal/topology"
	"dvod/internal/transport"
)

// buildFleet wires n ledger replicas with loopback gossipers at the given
// fan-out. Each replica holds one distinct reservation, so convergence means
// full dissemination of every rumor to every replica.
func buildFleet(t *testing.T, n, fanout int) ([]*Ledger, []*Gossiper) {
	t.Helper()
	clk := clock.NewVirtual(time.Unix(0, 0))
	nodes := make([]topology.NodeID, n)
	ledgers := make([]*Ledger, n)
	byNode := make(map[topology.NodeID]*Ledger, n)
	for i := range nodes {
		nodes[i] = topology.NodeID(fmt.Sprintf("N%02d", i))
		ledgers[i] = newTestLedger(t, nodes[i], clk)
		byNode[nodes[i]] = ledgers[i]
		ledgers[i].Reserve([]topology.LinkID{topology.LinkID(fmt.Sprintf("L|%02d", i))}, "standard", 1.0)
	}
	gossipers := make([]*Gossiper, n)
	for i := range nodes {
		led := ledgers[i]
		peers := make([]topology.NodeID, 0, n-1)
		for _, p := range nodes {
			if p != nodes[i] {
				peers = append(peers, p)
			}
		}
		g, err := NewGossiper(GossipConfig{
			Ledger: led,
			Peers:  peers,
			Fanout: fanout,
			Lookup: func(topology.NodeID) (string, error) { return "mem", nil },
			Dial: func(peer topology.NodeID, _ string) (*transport.Conn, error) {
				return dialToLedger(byNode[peer])(peer, "mem")
			},
			Clock: clk,
		})
		if err != nil {
			t.Fatalf("gossiper %s: %v", nodes[i], err)
		}
		gossipers[i] = g
	}
	return ledgers, gossipers
}

// roundsToConverge drives synchronous rounds until every digest matches,
// returning the round count (or failing past the cap).
func roundsToConverge(t *testing.T, ledgers []*Ledger, gossipers []*Gossiper, cap int) int {
	t.Helper()
	converged := func() bool {
		d := ledgers[0].Digest()
		for _, l := range ledgers[1:] {
			if l.Digest() != d {
				return false
			}
		}
		return true
	}
	for round := 1; round <= cap; round++ {
		for _, g := range gossipers {
			g.RunOnce()
		}
		if converged() {
			return round
		}
	}
	t.Fatalf("no convergence within %d rounds", cap)
	return 0
}

// TestFanoutConvergenceRegression pins the satellite claim: rumor-mongering
// fan-out 2 converges a 10-replica fleet in no more rounds than the
// historical one-peer walk — and within a fixed small bound, so a regression
// that slows dissemination (or a fan-out that silently stops honoring its
// width) fails loudly.
func TestFanoutConvergenceRegression(t *testing.T) {
	const n = 10
	l1, g1 := buildFleet(t, n, 1)
	rounds1 := roundsToConverge(t, l1, g1, 4*n)
	l2, g2 := buildFleet(t, n, 2)
	rounds2 := roundsToConverge(t, l2, g2, 4*n)
	t.Logf("convergence rounds over %d replicas: fanout1=%d fanout2=%d", n, rounds1, rounds2)
	if rounds2 > rounds1 {
		t.Fatalf("fanout 2 needed %d rounds, more than fanout 1's %d", rounds2, rounds1)
	}
	// Full push-pull at fan-out 2 disseminates everything across 10 replicas
	// within a handful of rounds; 6 leaves slack without hiding regressions.
	if rounds2 > 6 {
		t.Fatalf("fanout 2 needed %d rounds over %d replicas, want ≤ 6", rounds2, n)
	}
}

// dialToLedger answers exactly one exchange against the target ledger over an
// in-memory pipe (JSON framing path), mirroring Server.handleLedgerSync.
// A twin of the closure in TestGossiperRunOnceConverges, reusable per target.
func dialToLedger(target *Ledger) func(topology.NodeID, string) (*transport.Conn, error) {
	return func(topology.NodeID, string) (*transport.Conn, error) {
		cp, sp := net.Pipe()
		client, server := transport.NewConn(cp), transport.NewConn(sp)
		go func() {
			defer server.Close()
			hello, _, err := server.ReadFrameOrMessage(nil)
			if err != nil || hello.Type != transport.TypeHello {
				return
			}
			if err := server.AcceptHello(hello); err != nil {
				return
			}
			m, fr, err := server.ReadFrameOrMessage(nil)
			if err != nil {
				return
			}
			var req transport.LedgerSyncPayload
			binary := fr != nil
			if binary {
				if fr.Type != transport.FrameLedgerSync {
					fr.Release()
					return
				}
				req, err = transport.DecodeLedgerSyncFrame(fr)
				fr.Release()
				if err != nil {
					return
				}
			} else {
				if m.Type != transport.TypeLedgerSync {
					return
				}
				if req, err = transport.Decode[transport.LedgerSyncPayload](m); err != nil {
					return
				}
			}
			resp := target.HandleSync(req)
			if binary {
				server.WriteLedgerSyncFrame(resp, true)
				return
			}
			reply, err := transport.Encode(transport.TypeLedgerSyncOK, resp)
			if err != nil {
				return
			}
			server.WriteMessage(reply)
		}()
		return client, nil
	}
}

// TestExpireOriginReclaimsImmediately pins the event-driven reclaim path: a
// fail event expires a dead origin's rows at once, the expiry watermark
// blocks relayed resurrection, and a genuinely returning origin relearns.
func TestExpireOriginReclaimsImmediately(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	a := newTestLedger(t, "A", clk)
	b := newTestLedger(t, "B", clk)
	b.Reserve([]topology.LinkID{"M|O"}, "premium", 2.0)
	syncPair(a, b)
	if got := a.RemoteReservedMbps("M|O"); got != 2.0 {
		t.Fatalf("A sees %v Mbps remote, want 2.0", got)
	}

	if !a.ExpireOrigin("B") {
		t.Fatal("ExpireOrigin reported nothing dropped")
	}
	if got := a.RemoteReservedMbps("M|O"); got != 0 {
		t.Fatalf("A still sees %v Mbps after event-driven reclaim", got)
	}
	// A third replica relaying B's old rows cannot resurrect them.
	c := newTestLedger(t, "C", clk)
	syncPair(c, b)
	syncPair(a, c)
	if got := a.RemoteReservedMbps("M|O"); got != 0 {
		t.Fatalf("relay resurrected %v Mbps of an expired origin", got)
	}
	// B itself comes back: its heartbeat advances the clock, resetting A's
	// watermark on the first exchange; the second relearns the full state.
	b.Beat()
	syncPair(a, b)
	syncPair(a, b)
	if got := a.RemoteReservedMbps("M|O"); got != 2.0 {
		t.Fatalf("A sees %v Mbps after B reasserted, want 2.0", got)
	}
	// Expiring the local origin is refused.
	if a.ExpireOrigin("A") {
		t.Fatal("expired the local origin")
	}
}
