package membership

import (
	"errors"
	"net"
	"testing"
	"time"

	"dvod/internal/clock"
	"dvod/internal/topology"
	"dvod/internal/transport"
)

func newTestTracker(t *testing.T, self topology.NodeID, seeds ...topology.NodeID) *Tracker {
	t.Helper()
	tr, err := New(Config{Self: self, Seeds: seeds})
	if err != nil {
		t.Fatalf("new tracker %s: %v", self, err)
	}
	return tr
}

// syncPair runs one full push-pull exchange a→b and folds the reply back
// into a, exactly like one gossip round does over the wire.
func syncPair(a, b *Tracker) {
	reply := b.HandleSync(a.Sync())
	a.Merge(reply)
}

func stateOf(t *testing.T, tr *Tracker, n topology.NodeID) State {
	t.Helper()
	m, ok := tr.Member(n)
	if !ok {
		t.Fatalf("%s unknown to %s", n, tr.Self())
	}
	return m.State
}

func TestSeedsStartAlive(t *testing.T) {
	tr := newTestTracker(t, "A", "A", "B", "C", "")
	ms := tr.Members()
	if len(ms) != 3 {
		t.Fatalf("got %d members, want 3 (self + 2 seeds, blanks and self-seed dropped)", len(ms))
	}
	self, _ := tr.Member("A")
	if self.Incarnation != 1 || self.State != Alive {
		t.Fatalf("self entry %+v, want incarnation 1 alive", self)
	}
	seed, _ := tr.Member("B")
	if seed.Incarnation != 0 {
		t.Fatalf("seed incarnation %d, want 0 so self-announcements outrank it", seed.Incarnation)
	}
}

func TestMergePrecedence(t *testing.T) {
	tr := newTestTracker(t, "A", "B")

	// Higher incarnation replaces everything.
	tr.Merge(transport.MemberSyncPayload{From: "B", Members: []transport.MemberEntry{
		{Node: "B", Incarnation: 3, Heartbeat: 5, State: "alive"},
	}})
	if got, _ := tr.Member("B"); got.Incarnation != 3 || got.Heartbeat != 5 {
		t.Fatalf("B after higher-incarnation merge: %+v", got)
	}

	// Equal incarnation: the worse state wins…
	tr.Merge(transport.MemberSyncPayload{From: "C", Members: []transport.MemberEntry{
		{Node: "B", Incarnation: 3, Heartbeat: 4, State: "suspect"},
	}})
	if got := stateOf(t, tr, "B"); got != Suspect {
		t.Fatalf("B state %v after worse-state merge, want suspect", got)
	}
	// …and a better state at the same incarnation cannot undo it.
	tr.Merge(transport.MemberSyncPayload{From: "C", Members: []transport.MemberEntry{
		{Node: "B", Incarnation: 3, Heartbeat: 9, State: "alive"},
	}})
	if got := stateOf(t, tr, "B"); got != Suspect {
		t.Fatalf("B state %v after better-state merge at equal incarnation, want suspect", got)
	}

	// A higher incarnation from B itself (refutation) revives it.
	tr.Merge(transport.MemberSyncPayload{From: "B", Members: []transport.MemberEntry{
		{Node: "B", Incarnation: 4, Heartbeat: 1, State: "alive"},
	}})
	if got := stateOf(t, tr, "B"); got != Alive {
		t.Fatalf("B state %v after refutation, want alive", got)
	}

	// Stale lower incarnation is ignored entirely.
	tr.Merge(transport.MemberSyncPayload{From: "C", Members: []transport.MemberEntry{
		{Node: "B", Incarnation: 2, Heartbeat: 100, State: "failed"},
	}})
	if got, _ := tr.Member("B"); got.State != Alive || got.Incarnation != 4 {
		t.Fatalf("B after stale merge: %+v, want alive at incarnation 4", got)
	}
}

func TestMergeCommutes(t *testing.T) {
	views := []transport.MemberSyncPayload{
		{From: "X", Members: []transport.MemberEntry{
			{Node: "B", Incarnation: 2, Heartbeat: 7, State: "alive"},
			{Node: "C", Incarnation: 1, Heartbeat: 3, State: "suspect"},
		}},
		{From: "Y", Members: []transport.MemberEntry{
			{Node: "B", Incarnation: 2, Heartbeat: 4, State: "suspect"},
			{Node: "C", Incarnation: 2, Heartbeat: 1, State: "alive"},
		}},
	}
	ab := newTestTracker(t, "A")
	ba := newTestTracker(t, "A")
	ab.Merge(views[0])
	ab.Merge(views[1])
	ba.Merge(views[1])
	ba.Merge(views[0])
	for _, n := range []topology.NodeID{"B", "C"} {
		x, _ := ab.Member(n)
		y, _ := ba.Member(n)
		if x != y {
			t.Fatalf("merge order changed %s: %+v vs %+v", n, x, y)
		}
	}
}

func TestRoundCountedFailureDetection(t *testing.T) {
	var events []Event
	tr, err := New(Config{Self: "A", Seeds: []topology.NodeID{"B"},
		OnEvent: func(ev Event) { events = append(events, ev) }})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	for i := 0; i < DefaultSuspectRounds-1; i++ {
		tr.Beat()
	}
	if got := stateOf(t, tr, "B"); got != Alive {
		t.Fatalf("B %v after %d quiet rounds, want alive", got, DefaultSuspectRounds-1)
	}
	tr.Beat()
	if got := stateOf(t, tr, "B"); got != Suspect {
		t.Fatalf("B %v after %d quiet rounds, want suspect", got, DefaultSuspectRounds)
	}
	for i := DefaultSuspectRounds; i < DefaultFailRounds; i++ {
		tr.Beat()
	}
	if got := stateOf(t, tr, "B"); got != Failed {
		t.Fatalf("B %v after %d quiet rounds, want failed", got, DefaultFailRounds)
	}
	var kinds []EventKind
	for _, ev := range events {
		kinds = append(kinds, ev.Kind)
	}
	if len(kinds) != 2 || kinds[0] != EventSuspect || kinds[1] != EventFail {
		t.Fatalf("event kinds %v, want [suspect fail]", kinds)
	}
	// A failed member STAYS in the gossip peer set — the periodic dial is
	// its refutation channel, without which two sides of a healed partition
	// that failed each other could never reconnect.
	found := false
	for _, p := range tr.GossipPeers() {
		if p == "B" {
			found = true
		}
	}
	if !found {
		t.Fatal("failed member dropped from the gossip peer set")
	}
}

// TestFailedVerdictIsRefutable pins partition healing: after A fails B, an
// exchange finally reaching the live B lets it refute at a higher
// incarnation, A emits a recover event, and the verdict is undone.
func TestFailedVerdictIsRefutable(t *testing.T) {
	var events []Event
	a, err := New(Config{Self: "A", Seeds: []topology.NodeID{"B"},
		OnEvent: func(ev Event) { events = append(events, ev) }})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	b := newTestTracker(t, "B", "A")
	syncPair(a, b)
	for i := 0; i < DefaultFailRounds; i++ {
		a.Beat()
	}
	if got := stateOf(t, a, "B"); got != Failed {
		t.Fatalf("B %v on A, want failed", got)
	}
	// The partition heals: one full exchange carries the verdict to B, B
	// refutes, and the reply revives it on A.
	syncPair(a, b)
	if got := stateOf(t, a, "B"); got != Alive {
		t.Fatalf("B %v on A after refutation, want alive", got)
	}
	m, _ := a.Member("B")
	if m.Incarnation < 2 {
		t.Fatalf("B refuted at incarnation %d, want ≥ 2", m.Incarnation)
	}
	var sawRecover bool
	for _, ev := range events {
		if ev.Kind == EventRecover && ev.Node == "B" {
			sawRecover = true
		}
	}
	if !sawRecover {
		t.Fatal("no recover event for the revived member")
	}
}

func TestHeartbeatAdvanceResetsDetection(t *testing.T) {
	a := newTestTracker(t, "A", "B")
	b := newTestTracker(t, "B", "A")
	for round := 0; round < 5*DefaultFailRounds; round++ {
		a.Beat()
		b.Beat()
		syncPair(a, b)
		syncPair(b, a)
	}
	if got := stateOf(t, a, "B"); got != Alive {
		t.Fatalf("B %v on A after steady gossip, want alive", got)
	}
	if got := stateOf(t, b, "A"); got != Alive {
		t.Fatalf("A %v on B after steady gossip, want alive", got)
	}
}

func TestRefutationSpreads(t *testing.T) {
	a := newTestTracker(t, "A", "B")
	b := newTestTracker(t, "B", "A")
	// A learns B's real (incarnation 1) entry, so the later fail verdict is
	// at an incarnation B must actually outbid to refute.
	syncPair(a, b)
	// B's gossip stops reaching A long enough for a fail verdict.
	for i := 0; i < DefaultFailRounds; i++ {
		a.Beat()
	}
	if got := stateOf(t, a, "B"); got != Failed {
		t.Fatalf("B %v on A, want failed", got)
	}
	// The partition heals: one exchange B→A carries the fail rumor to B,
	// which refutes with a higher incarnation; the reply revives B on A.
	before, _ := b.Member("B")
	syncPair(b, a)
	after, _ := b.Member("B")
	if after.Incarnation <= before.Incarnation {
		t.Fatalf("B did not bump incarnation refuting (%d → %d)", before.Incarnation, after.Incarnation)
	}
	syncPair(a, b)
	if got := stateOf(t, a, "B"); got != Alive {
		t.Fatalf("B %v on A after refutation round-trip, want alive", got)
	}
}

func TestDrainAndLeaveAnnouncements(t *testing.T) {
	a := newTestTracker(t, "A", "B")
	b := newTestTracker(t, "B", "A")
	var kinds []EventKind
	c, err := New(Config{Self: "C", Seeds: []topology.NodeID{"A", "B"},
		OnEvent: func(ev Event) { kinds = append(kinds, ev.Kind) }})
	if err != nil {
		t.Fatalf("new: %v", err)
	}

	b.SetLocalState(Draining)
	syncPair(a, b)
	if got := stateOf(t, a, "B"); got != Draining {
		t.Fatalf("B %v on A after drain announcement, want draining", got)
	}
	// The drain event reaches a third party transitively through A.
	syncPair(c, a)
	if got := stateOf(t, c, "B"); got != Draining {
		t.Fatalf("B %v on C, want draining", got)
	}
	sawDrain := false
	for _, k := range kinds {
		if k == EventDrain {
			sawDrain = true
		}
	}
	if !sawDrain {
		t.Fatalf("C events %v, want a drain event", kinds)
	}

	b.SetLocalState(Left)
	syncPair(a, b)
	if got := stateOf(t, a, "B"); got != Left {
		t.Fatalf("B %v on A after leave announcement, want left", got)
	}
	for _, p := range a.GossipPeers() {
		if p == "B" {
			t.Fatal("departed member still a gossip peer")
		}
	}
}

// dialTo answers exactly one member.sync exchange against the target
// tracker, mirroring Server.handleMemberSync over an in-memory pipe.
func dialTo(target *Tracker) func(topology.NodeID, string) (*transport.Conn, error) {
	return func(topology.NodeID, string) (*transport.Conn, error) {
		cp, sp := net.Pipe()
		client, server := transport.NewConn(cp), transport.NewConn(sp)
		go func() {
			defer server.Close()
			m, err := server.ReadMessage()
			if err != nil || m.Type != transport.TypeMemberSync {
				return
			}
			req, err := transport.Decode[transport.MemberSyncPayload](m)
			if err != nil {
				return
			}
			reply, err := transport.Encode(transport.TypeMemberSyncOK, target.HandleSync(req))
			if err != nil {
				return
			}
			server.WriteMessage(reply)
		}()
		return client, nil
	}
}

func TestGossiperConvergesAndDetects(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	nodes := []topology.NodeID{"A", "B", "C"}
	trackers := map[topology.NodeID]*Tracker{}
	for _, n := range nodes {
		trackers[n] = newTestTracker(t, n, nodes...)
	}
	alive := map[topology.NodeID]bool{"A": true, "B": true, "C": true}
	gossipers := map[topology.NodeID]*Gossiper{}
	for _, n := range nodes {
		tr := trackers[n]
		g, err := NewGossiper(GossipConfig{
			Tracker: tr,
			Lookup:  func(p topology.NodeID) (string, error) { return "mem", nil },
			Dial: func(peer topology.NodeID, _ string) (*transport.Conn, error) {
				if !alive[peer] {
					return nil, errors.New("connection refused")
				}
				return dialTo(trackers[peer])(peer, "mem")
			},
			Clock: clk,
		})
		if err != nil {
			t.Fatalf("gossiper %s: %v", n, err)
		}
		gossipers[n] = g
	}
	round := func() {
		for _, n := range nodes {
			if alive[n] {
				gossipers[n].RunOnce()
			}
		}
	}
	for i := 0; i < 3; i++ {
		round()
	}
	for _, n := range nodes {
		for _, m := range nodes {
			if got := stateOf(t, trackers[n], m); got != Alive {
				t.Fatalf("%s sees %s as %v after steady rounds, want alive", n, m, got)
			}
		}
	}

	// Kill C: its gossiper stops and dials toward it refuse. Survivors mark
	// it suspect and then failed after the round-counted windows.
	alive["C"] = false
	for i := 0; i < DefaultFailRounds; i++ {
		round()
	}
	for _, n := range []topology.NodeID{"A", "B"} {
		if got := stateOf(t, trackers[n], "C"); got != Failed {
			t.Fatalf("%s sees C as %v after kill, want failed", n, got)
		}
	}
	if got := trackers["A"].Alive(); len(got) != 2 {
		t.Fatalf("A's alive set %v, want 2 members", got)
	}
}
