package membership

import (
	"testing"

	"dvod/internal/metrics"
	"dvod/internal/topology"
	"dvod/internal/transport"
)

func newTestTracker(t *testing.T, self topology.NodeID, seeds ...topology.NodeID) *Tracker {
	t.Helper()
	// Local health is disabled in unit trackers so detection windows are the
	// configured constants; TestLocalHealthStretchesWindows covers the LHM.
	tr, err := New(Config{Self: self, Seeds: seeds, DisableLocalHealth: true})
	if err != nil {
		t.Fatalf("new tracker %s: %v", self, err)
	}
	return tr
}

// syncPair runs one full push-pull exchange a→b and folds the reply back
// into a, exactly like one gossip round does over the wire.
func syncPair(a, b *Tracker) {
	reply := b.HandleSync(a.Sync())
	a.Merge(reply)
}

// failNode drives tr's failure detector against n exactly like rounds of
// failed dials would: pending contacts to the suspect threshold, a failed
// indirect probe, then the suspect-age sweep to the fail verdict.
func failNode(t *testing.T, tr *Tracker, n topology.NodeID) {
	t.Helper()
	for i := 0; i < DefaultSuspectRounds; i++ {
		tr.Beat()
		tr.ReportContactFailed(n)
	}
	probed := false
	for _, p := range tr.StartProbes() {
		if p.Target == n {
			probed = true
			tr.ReportIndirect(n, false)
		}
	}
	if !probed {
		t.Fatalf("no indirect probe for %s after %d failed contacts", n, DefaultSuspectRounds)
	}
	for i := DefaultSuspectRounds; i < DefaultFailRounds; i++ {
		tr.Beat()
	}
}

func stateOf(t *testing.T, tr *Tracker, n topology.NodeID) State {
	t.Helper()
	m, ok := tr.Member(n)
	if !ok {
		t.Fatalf("%s unknown to %s", n, tr.Self())
	}
	return m.State
}

func TestSeedsStartAlive(t *testing.T) {
	tr := newTestTracker(t, "A", "A", "B", "C", "")
	ms := tr.Members()
	if len(ms) != 3 {
		t.Fatalf("got %d members, want 3 (self + 2 seeds, blanks and self-seed dropped)", len(ms))
	}
	self, _ := tr.Member("A")
	if self.Incarnation != 1 || self.State != Alive {
		t.Fatalf("self entry %+v, want incarnation 1 alive", self)
	}
	seed, _ := tr.Member("B")
	if seed.Incarnation != 0 {
		t.Fatalf("seed incarnation %d, want 0 so self-announcements outrank it", seed.Incarnation)
	}
}

func TestMergePrecedence(t *testing.T) {
	tr := newTestTracker(t, "A", "B")

	// Higher incarnation replaces everything.
	tr.Merge(transport.MemberSyncPayload{From: "B", Members: []transport.MemberEntry{
		{Node: "B", Incarnation: 3, Heartbeat: 5, State: "alive"},
	}})
	if got, _ := tr.Member("B"); got.Incarnation != 3 || got.Heartbeat != 5 {
		t.Fatalf("B after higher-incarnation merge: %+v", got)
	}

	// Equal incarnation: the worse state wins…
	tr.Merge(transport.MemberSyncPayload{From: "C", Members: []transport.MemberEntry{
		{Node: "B", Incarnation: 3, Heartbeat: 4, State: "suspect"},
	}})
	if got := stateOf(t, tr, "B"); got != Suspect {
		t.Fatalf("B state %v after worse-state merge, want suspect", got)
	}
	// …and a better state at the same incarnation cannot undo it.
	tr.Merge(transport.MemberSyncPayload{From: "C", Members: []transport.MemberEntry{
		{Node: "B", Incarnation: 3, Heartbeat: 9, State: "alive"},
	}})
	if got := stateOf(t, tr, "B"); got != Suspect {
		t.Fatalf("B state %v after better-state merge at equal incarnation, want suspect", got)
	}

	// A higher incarnation from B itself (refutation) revives it.
	tr.Merge(transport.MemberSyncPayload{From: "B", Members: []transport.MemberEntry{
		{Node: "B", Incarnation: 4, Heartbeat: 1, State: "alive"},
	}})
	if got := stateOf(t, tr, "B"); got != Alive {
		t.Fatalf("B state %v after refutation, want alive", got)
	}

	// Stale lower incarnation is ignored entirely.
	tr.Merge(transport.MemberSyncPayload{From: "C", Members: []transport.MemberEntry{
		{Node: "B", Incarnation: 2, Heartbeat: 100, State: "failed"},
	}})
	if got, _ := tr.Member("B"); got.State != Alive || got.Incarnation != 4 {
		t.Fatalf("B after stale merge: %+v, want alive at incarnation 4", got)
	}
}

func TestMergeCommutes(t *testing.T) {
	views := []transport.MemberSyncPayload{
		{From: "X", Members: []transport.MemberEntry{
			{Node: "B", Incarnation: 2, Heartbeat: 7, State: "alive"},
			{Node: "C", Incarnation: 1, Heartbeat: 3, State: "suspect"},
		}},
		{From: "Y", Members: []transport.MemberEntry{
			{Node: "B", Incarnation: 2, Heartbeat: 4, State: "suspect"},
			{Node: "C", Incarnation: 2, Heartbeat: 1, State: "alive"},
		}},
	}
	ab := newTestTracker(t, "A")
	ba := newTestTracker(t, "A")
	ab.Merge(views[0])
	ab.Merge(views[1])
	ba.Merge(views[1])
	ba.Merge(views[0])
	for _, n := range []topology.NodeID{"B", "C"} {
		x, _ := ab.Member(n)
		y, _ := ba.Member(n)
		if x != y {
			t.Fatalf("merge order changed %s: %+v vs %+v", n, x, y)
		}
	}
}

// TestMixedVersionStateDegradesToSuspect pins parseState's safety rule: a
// state string minted by a newer build must degrade to Suspect (never count
// as healthy) when an older node merges it — the JSON-path twin of the
// binary codec's memberStateByte degradation.
func TestMixedVersionStateDegradesToSuspect(t *testing.T) {
	for _, unknown := range []string{"quarantined-v9", "ALIVE", ""} {
		if got := parseState(unknown); got != Suspect {
			t.Fatalf("parseState(%q) = %v, want suspect", unknown, got)
		}
	}
	tr := newTestTracker(t, "A", "B")
	tr.Merge(transport.MemberSyncPayload{From: "C", Members: []transport.MemberEntry{
		{Node: "B", Incarnation: 7, Heartbeat: 1, State: "quarantined-v9"},
	}})
	if got := stateOf(t, tr, "B"); got != Suspect {
		t.Fatalf("B %v after merging an unknown future state, want the suspect degradation", got)
	}
	// And the degraded entry still obeys the usual refutation rules.
	tr.Merge(transport.MemberSyncPayload{From: "B", Members: []transport.MemberEntry{
		{Node: "B", Incarnation: 8, Heartbeat: 1, State: "alive"},
	}})
	if got := stateOf(t, tr, "B"); got != Alive {
		t.Fatalf("B %v after refuting the degraded state, want alive", got)
	}
}

// TestProbeDrivenFailureDetection pins the detection pipeline: consecutive
// failed contacts alone do not convict — the verdict needs the failed
// indirect probe, and the fail verdict needs the suspect-age sweep.
func TestProbeDrivenFailureDetection(t *testing.T) {
	var events []Event
	reg := metrics.NewRegistry()
	tr, err := New(Config{Self: "A", Seeds: []topology.NodeID{"B", "C", "D"},
		DisableLocalHealth: true, Metrics: reg,
		OnEvent: func(ev Event) { events = append(events, ev) }})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	for i := 0; i < DefaultSuspectRounds-1; i++ {
		tr.Beat()
		tr.ReportContactFailed("B")
	}
	if probes := tr.StartProbes(); len(probes) != 0 {
		t.Fatalf("probe fired after %d failures, want none before the threshold", DefaultSuspectRounds-1)
	}
	tr.Beat()
	tr.ReportContactFailed("B")
	if got := stateOf(t, tr, "B"); got != Alive {
		t.Fatalf("B %v before the indirect probe resolved, want alive (no verdict on direct evidence alone)", got)
	}
	probes := tr.StartProbes()
	if len(probes) != 1 || probes[0].Target != "B" {
		t.Fatalf("probes %+v, want exactly one for B", probes)
	}
	if len(probes[0].Helpers) == 0 {
		t.Fatalf("probe for B got no helpers with C and D alive")
	}
	for _, h := range probes[0].Helpers {
		if h == "A" || h == "B" {
			t.Fatalf("helper set %v includes self or the target", probes[0].Helpers)
		}
	}
	// A rescue clears the streak: the fault was on our path, not the member.
	tr.ReportIndirect("B", true)
	if got := stateOf(t, tr, "B"); got != Alive {
		t.Fatalf("B %v after an indirect rescue, want alive", got)
	}
	if got := reg.Counter("membership.indirect_rescues").Value(); got != 1 {
		t.Fatalf("indirect_rescues %d, want 1", got)
	}

	// A fresh streak plus a failed probe convicts.
	for i := 0; i < DefaultSuspectRounds; i++ {
		tr.Beat()
		tr.ReportContactFailed("B")
	}
	probes = tr.StartProbes()
	if len(probes) != 1 {
		t.Fatalf("probes %+v, want one for the fresh streak", probes)
	}
	tr.ReportIndirect("B", false)
	if got := stateOf(t, tr, "B"); got != Suspect {
		t.Fatalf("B %v after the failed indirect probe, want suspect", got)
	}
	for i := DefaultSuspectRounds; i < DefaultFailRounds; i++ {
		tr.Beat()
	}
	if got := stateOf(t, tr, "B"); got != Failed {
		t.Fatalf("B %v after the suspect-age sweep, want failed", got)
	}
	var kinds []EventKind
	for _, ev := range events {
		kinds = append(kinds, ev.Kind)
	}
	if len(kinds) != 2 || kinds[0] != EventSuspect || kinds[1] != EventFail {
		t.Fatalf("event kinds %v, want [suspect fail]", kinds)
	}
	if got := reg.Counter("membership.indirect_probes").Value(); got != 2 {
		t.Fatalf("indirect_probes %d, want 2", got)
	}
	// A failed member STAYS in the gossip peer set — the periodic dial is
	// its refutation channel, without which two sides of a healed partition
	// that failed each other could never reconnect.
	found := false
	for _, p := range tr.GossipPeers() {
		if p == "B" {
			found = true
		}
	}
	if !found {
		t.Fatal("failed member dropped from the gossip peer set")
	}
}

// TestFailedVerdictIsRefutable pins partition healing: after A fails B, an
// exchange finally reaching the live B lets it refute at a higher
// incarnation, A emits a recover event plus the false-suspect accounting,
// and the verdict is undone.
func TestFailedVerdictIsRefutable(t *testing.T) {
	var events []Event
	reg := metrics.NewRegistry()
	a, err := New(Config{Self: "A", Seeds: []topology.NodeID{"B"},
		DisableLocalHealth: true, Metrics: reg,
		OnEvent: func(ev Event) { events = append(events, ev) }})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	b := newTestTracker(t, "B", "A")
	syncPair(a, b)
	failNode(t, a, "B")
	if got := stateOf(t, a, "B"); got != Failed {
		t.Fatalf("B %v on A, want failed", got)
	}
	// The partition heals: one full exchange carries the verdict to B, B
	// refutes, and the reply revives it on A.
	syncPair(a, b)
	if got := stateOf(t, a, "B"); got != Alive {
		t.Fatalf("B %v on A after refutation, want alive", got)
	}
	m, _ := a.Member("B")
	if m.Incarnation < 2 {
		t.Fatalf("B refuted at incarnation %d, want ≥ 2", m.Incarnation)
	}
	var sawRecover bool
	for _, ev := range events {
		if ev.Kind == EventRecover && ev.Node == "B" {
			sawRecover = true
		}
	}
	if !sawRecover {
		t.Fatal("no recover event for the revived member")
	}
	// A originated this suspicion and it proved wrong: the false-suspect
	// counter (the study's false-positive measure) must record it.
	if got := reg.Counter("membership.false_suspects").Value(); got != 1 {
		t.Fatalf("false_suspects %d, want 1", got)
	}
}

// TestSteadyGossipKeepsAlive pins that successful contacts reset detection:
// two nodes exchanging every round never suspect each other, however many
// rounds pass.
func TestSteadyGossipKeepsAlive(t *testing.T) {
	a := newTestTracker(t, "A", "B")
	b := newTestTracker(t, "B", "A")
	for round := 0; round < 5*DefaultFailRounds; round++ {
		a.Beat()
		b.Beat()
		syncPair(a, b)
		syncPair(b, a)
	}
	if got := stateOf(t, a, "B"); got != Alive {
		t.Fatalf("B %v on A after steady gossip, want alive", got)
	}
	if got := stateOf(t, b, "A"); got != Alive {
		t.Fatalf("A %v on B after steady gossip, want alive", got)
	}
}

func TestRefutationSpreads(t *testing.T) {
	a := newTestTracker(t, "A", "B")
	b := newTestTracker(t, "B", "A")
	// A learns B's real (incarnation 1) entry, so the later fail verdict is
	// at an incarnation B must actually outbid to refute.
	syncPair(a, b)
	failNode(t, a, "B")
	if got := stateOf(t, a, "B"); got != Failed {
		t.Fatalf("B %v on A, want failed", got)
	}
	// The partition heals: one exchange B→A carries the fail rumor to B,
	// which refutes with a higher incarnation; the reply revives B on A.
	before, _ := b.Member("B")
	syncPair(b, a)
	after, _ := b.Member("B")
	if after.Incarnation <= before.Incarnation {
		t.Fatalf("B did not bump incarnation refuting (%d → %d)", before.Incarnation, after.Incarnation)
	}
	syncPair(a, b)
	if got := stateOf(t, a, "B"); got != Alive {
		t.Fatalf("B %v on A after refutation round-trip, want alive", got)
	}
}

// TestLocalHealthStretchesWindows pins the Lifeguard multiplier: an observer
// whose own rounds are erroring takes proportionally longer to suspect
// anyone, and recovers its normal windows once its rounds go clean.
func TestLocalHealthStretchesWindows(t *testing.T) {
	tr, err := New(Config{Self: "A", Seeds: []topology.NodeID{"B", "C"}})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	// Every contact fails: the node itself is unhealthy. The multiplier
	// climbs and the suspect threshold stretches past the default.
	for i := 0; i < DefaultSuspectRounds; i++ {
		tr.Beat()
		tr.ReportContactFailed("B")
		tr.ReportContactFailed("C")
	}
	if tr.LocalHealth() == 0 {
		t.Fatal("local health multiplier stayed 0 through all-failing rounds")
	}
	if probes := tr.StartProbes(); len(probes) != 0 {
		t.Fatalf("probes %+v fired at the unstretched threshold despite degraded local health", probes)
	}
	// Clean rounds drain the multiplier back to zero.
	for i := 0; i < 2*maxLocalHealth; i++ {
		tr.Beat()
		tr.ReportContact("B")
		tr.ReportContact("C")
	}
	if got := tr.LocalHealth(); got != 0 {
		t.Fatalf("local health %d after clean rounds, want 0", got)
	}

	// Control: with local health disabled the same failure pattern probes
	// right at the default threshold.
	ctl := newTestTracker(t, "A", "B", "C")
	for i := 0; i < DefaultSuspectRounds; i++ {
		ctl.Beat()
		ctl.ReportContactFailed("B")
		ctl.ReportContactFailed("C")
	}
	if probes := ctl.StartProbes(); len(probes) != 2 {
		t.Fatalf("control probes %+v, want both members at the unstretched threshold", probes)
	}
}

// TestDeltaSyncProtocol pins the ack-driven delta exchange: first contact is
// full both ways, a steady pair converges to empty deltas, a local change
// travels as a one-row delta, and a peer restart (new epoch) forces a full
// resync.
func TestDeltaSyncProtocol(t *testing.T) {
	a := newTestTracker(t, "A", "B")
	b := newTestTracker(t, "B", "A")

	exchange := func(x, y *Tracker, peerOfX, peerOfY topology.NodeID) transport.MemberSyncPayload {
		req := x.SyncFor(peerOfX)
		reply := y.HandleSync(req)
		x.MergeReply(peerOfX, reply)
		return req
	}

	first := a.SyncFor("B")
	if !first.Full || len(first.Members) != 2 {
		t.Fatalf("first leg %+v, want a full 2-row view", first)
	}
	reply := b.HandleSync(first)
	if !reply.Full {
		t.Fatalf("first reply %+v, want full (B never heard from A either)", reply)
	}
	a.MergeReply("B", reply)

	// A few steady exchanges: the pair settles into empty deltas.
	for i := 0; i < 3; i++ {
		exchange(a, b, "B", "A")
	}
	steady := a.SyncFor("B")
	if steady.Full {
		t.Fatalf("steady leg still full: %+v", steady)
	}
	if len(steady.Members) != 0 {
		t.Fatalf("steady delta carries %d rows, want 0 (nothing changed)", len(steady.Members))
	}
	b.HandleSync(steady)

	// One local change on B travels as a one-row delta to A.
	b.SetLocalState(Draining)
	req := a.SyncFor("B")
	reply = b.HandleSync(req)
	if reply.Full {
		t.Fatalf("post-change reply went full: %+v", reply)
	}
	if len(reply.Members) != 1 || reply.Members[0].Node != "B" || reply.Members[0].State != "draining" {
		t.Fatalf("post-change delta %+v, want exactly B's draining row", reply.Members)
	}
	a.MergeReply("B", reply)
	if got := stateOf(t, a, "B"); got != Draining {
		t.Fatalf("B %v on A after the delta, want draining", got)
	}

	// A view-count mismatch triggers the want-full fallback.
	mismatch := transport.MemberSyncPayload{From: "A", Epoch: a.Epoch(), Seq: 1, Known: 5}
	if got := b.HandleSync(mismatch); !got.WantFull {
		t.Fatalf("reply %+v, want WantFull after a larger-view claim", got)
	}

	// B restarts with a new epoch: A's next leg after hearing it must be a
	// full view again (the restarted B lost all its acks).
	b2, err := New(Config{Self: "B", Seeds: []topology.NodeID{"A"}, Epoch: 2, DisableLocalHealth: true})
	if err != nil {
		t.Fatalf("restart B: %v", err)
	}
	a.MergeReply("B", b2.HandleSync(a.SyncFor("B")))
	if leg := a.SyncFor("B"); !leg.Full {
		t.Fatalf("leg after B's epoch change %+v, want full", leg)
	}
}

// TestLegacyPeerGetsFullViews pins the mixed-fleet fallback: a peer whose
// payloads carry no epoch (an old build) is served full views forever, and
// merging its full view still works.
func TestLegacyPeerGetsFullViews(t *testing.T) {
	a := newTestTracker(t, "A", "B")
	legacy := transport.MemberSyncPayload{From: "B", Members: []transport.MemberEntry{
		{Node: "A", Incarnation: 1, Heartbeat: 1, State: "alive"},
		{Node: "B", Incarnation: 1, Heartbeat: 5, State: "alive"},
	}}
	for i := 0; i < 3; i++ {
		reply := a.HandleSync(legacy)
		if !reply.Full || len(reply.Members) != 2 {
			t.Fatalf("reply %d to a legacy peer: %+v, want a full view every time", i, reply)
		}
	}
	if got, _ := a.Member("B"); got.Heartbeat != 5 {
		t.Fatalf("legacy view not merged: %+v", got)
	}
}

func TestDrainAndLeaveAnnouncements(t *testing.T) {
	a := newTestTracker(t, "A", "B")
	b := newTestTracker(t, "B", "A")
	var kinds []EventKind
	c, err := New(Config{Self: "C", Seeds: []topology.NodeID{"A", "B"}, DisableLocalHealth: true,
		OnEvent: func(ev Event) { kinds = append(kinds, ev.Kind) }})
	if err != nil {
		t.Fatalf("new: %v", err)
	}

	b.SetLocalState(Draining)
	syncPair(a, b)
	if got := stateOf(t, a, "B"); got != Draining {
		t.Fatalf("B %v on A after drain announcement, want draining", got)
	}
	// The drain event reaches a third party transitively through A.
	syncPair(c, a)
	if got := stateOf(t, c, "B"); got != Draining {
		t.Fatalf("B %v on C, want draining", got)
	}
	sawDrain := false
	for _, k := range kinds {
		if k == EventDrain {
			sawDrain = true
		}
	}
	if !sawDrain {
		t.Fatalf("C events %v, want a drain event", kinds)
	}

	b.SetLocalState(Left)
	syncPair(a, b)
	if got := stateOf(t, a, "B"); got != Left {
		t.Fatalf("B %v on A after leave announcement, want left", got)
	}
	for _, p := range a.GossipPeers() {
		if p == "B" {
			t.Fatal("departed member still a gossip peer")
		}
	}
}

// TestRotationFairness pins the stable-cursor rotation: with a fixed
// membership every peer is visited exactly once per cycle, and a member
// joining mid-cycle slots into the rotation without starving anyone — the
// failure mode of the old index-modulo rotation over a re-fetched slice.
func TestRotationFairness(t *testing.T) {
	tr := newTestTracker(t, "M", "B", "C", "D", "E", "F")
	var picks []topology.NodeID
	for i := 0; i < 10; i++ {
		got := tr.PlanContacts(1)
		if len(got) != 1 {
			t.Fatalf("plan %v, want exactly one rotation pick", got)
		}
		picks = append(picks, got[0])
	}
	want := []topology.NodeID{"B", "C", "D", "E", "F", "B", "C", "D", "E", "F"}
	for i := range want {
		if picks[i] != want[i] {
			t.Fatalf("rotation %v, want %v", picks, want)
		}
	}

	// A new member whose ID sorts before the whole pool joins mid-cycle
	// (after the cursor passed "C"): the next full cycle must still visit
	// all six peers exactly once each.
	tr.Merge(transport.MemberSyncPayload{From: "AA", Members: []transport.MemberEntry{
		{Node: "AA", Incarnation: 1, Heartbeat: 1, State: "alive"},
	}})
	tr.PlanContacts(1) // advance to D
	seen := map[topology.NodeID]int{}
	for i := 0; i < 6; i++ {
		got := tr.PlanContacts(1)
		seen[got[0]]++
	}
	for _, n := range []topology.NodeID{"AA", "B", "C", "D", "E", "F"} {
		if seen[n] != 1 {
			t.Fatalf("churned rotation visited %v; %s seen %d times, want exactly once each", seen, n, seen[n])
		}
	}
}

// TestPlanContactsSections pins the plan's composition: detection retries
// ride on top of the rotation every round, and Failed members are dialed on
// the decaying schedule with the skipped dials counted.
func TestPlanContactsSections(t *testing.T) {
	reg := metrics.NewRegistry()
	tr, err := New(Config{Self: "A", Seeds: []topology.NodeID{"B", "C", "D", "E"},
		DisableLocalHealth: true, Metrics: reg})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	// A pending streak on E keeps it in every plan regardless of rotation.
	tr.Beat()
	tr.ReportContactFailed("E")
	for i := 0; i < 3; i++ {
		plan := tr.PlanContacts(1)
		found := false
		for _, n := range plan {
			if n == "E" {
				found = true
			}
		}
		if !found {
			t.Fatalf("plan %v on round %d omits the pending member E", plan, i)
		}
	}

	// Fail E, then count its redials over the next 40 rounds: the decaying
	// 2^n schedule allows ~5, versus 40 under every-round dialing, and the
	// saved dials are accounted.
	failNode(t, tr, "E")
	if got := stateOf(t, tr, "E"); got != Failed {
		t.Fatalf("E %v, want failed", got)
	}
	redials := 0
	for i := 0; i < 40; i++ {
		tr.Beat()
		for _, n := range tr.PlanContacts(2) {
			if n == "E" {
				redials++
			}
		}
	}
	if redials == 0 || redials > 7 {
		t.Fatalf("failed member redialed %d times in 40 rounds, want a handful on the decaying schedule", redials)
	}
	saved := reg.Counter("membership.failed_dials_saved").Value()
	if saved < 30 {
		t.Fatalf("failed_dials_saved %d, want ≥ 30 of the 40 rounds skipped", saved)
	}
}
