// Package membership is the elastic-fleet layer: a SWIM-style gossip
// membership tracker (join / drain / suspect / fail / leave transitions with
// incarnation numbers), a gossiper that disseminates the view over the live
// transport on the same cadence pattern as the reservation-ledger gossiper,
// and a redirect director that turns any node into a stateless front door for
// watch requests.
//
// Failure detection is heartbeat-based and round-counted rather than
// wall-clock-timed, so it is fully deterministic under the virtual clock: each
// local gossip round bumps the tracker's own heartbeat counter, exchanges
// carry every member's (incarnation, heartbeat, state) triple, and a member
// whose heartbeat has not advanced for SuspectRounds local rounds is marked
// suspect — FailRounds rounds and it is failed. A live node that sees itself
// suspected refutes by bumping its incarnation and reasserting its state
// (classic SWIM); a dead node never refutes, so the failure verdict spreads.
//
// Merge rules (per member, commutative, so replicas converge regardless of
// exchange order):
//
//   - a higher incarnation always wins;
//   - at equal incarnation the "worse" state wins
//     (alive < draining < suspect < failed < left);
//   - at equal incarnation and state, the higher heartbeat wins.
package membership

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"dvod/internal/metrics"
	"dvod/internal/topology"
	"dvod/internal/transport"
)

// State is one member's lifecycle state.
type State int

// The membership states, ordered by merge precedence: at equal incarnation a
// numerically larger state overrides a smaller one.
const (
	// Alive: heartbeats observed recently; full participant.
	Alive State = iota
	// Draining: the member announced a graceful drain — it still serves
	// in-flight sessions but redirects new watches and takes no new load.
	Draining
	// Suspect: heartbeats stopped for SuspectRounds local rounds. Routing
	// avoids suspects; the member can refute by bumping its incarnation.
	Suspect
	// Failed: heartbeats stopped for FailRounds rounds. Consumers reclaim
	// the member's leases and penalize its routes; only a higher incarnation
	// (a restart) revives it.
	Failed
	// Left: the member announced a completed drain. Terminal for this
	// incarnation.
	Left
)

// String names the state (also the wire encoding).
func (s State) String() string {
	switch s {
	case Alive:
		return "alive"
	case Draining:
		return "draining"
	case Suspect:
		return "suspect"
	case Failed:
		return "failed"
	case Left:
		return "left"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// parseState decodes a wire state; unknown strings degrade to Suspect so a
// newer peer's states never silently count as healthy.
func parseState(s string) State {
	switch s {
	case "alive":
		return Alive
	case "draining":
		return Draining
	case "suspect":
		return Suspect
	case "failed":
		return Failed
	case "left":
		return Left
	default:
		return Suspect
	}
}

// Member is one member's view entry.
type Member struct {
	Node        topology.NodeID
	Incarnation uint64
	Heartbeat   uint64
	State       State
}

// EventKind labels membership transitions observed by one tracker.
type EventKind int

// The event kinds.
const (
	// EventJoin: a previously unknown member appeared in the view.
	EventJoin EventKind = iota + 1
	// EventSuspect: a member transitioned into Suspect.
	EventSuspect
	// EventRecover: a suspect refuted and is Alive again.
	EventRecover
	// EventFail: a member transitioned into Failed.
	EventFail
	// EventDrain: a member announced a graceful drain.
	EventDrain
	// EventLeave: a member completed its drain (Left).
	EventLeave
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EventJoin:
		return "join"
	case EventSuspect:
		return "suspect"
	case EventRecover:
		return "recover"
	case EventFail:
		return "fail"
	case EventDrain:
		return "drain"
	case EventLeave:
		return "leave"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one observed transition.
type Event struct {
	Kind   EventKind
	Node   topology.NodeID
	Member Member
}

// Default detection windows, in local gossip rounds. With fan-out 2 a
// heartbeat reaches every replica of a small fleet within a round or two, so
// three quiet rounds is decisively abnormal and six is a verdict.
const (
	DefaultSuspectRounds = 3
	DefaultFailRounds    = 6
)

// Config assembles a Tracker.
type Config struct {
	// Self is the member this tracker runs on. Required.
	Self topology.NodeID
	// Seeds are the initially known members (usually the boot topology).
	Seeds []topology.NodeID
	// SuspectRounds / FailRounds are the detection windows in local gossip
	// rounds; zero uses the defaults.
	SuspectRounds int
	FailRounds    int
	// OnEvent receives transitions observed by this tracker. Called outside
	// the tracker lock, in deterministic (node-sorted) order per merge.
	// May be nil.
	OnEvent func(Event)
	// Metrics receives membership.* counters and per-peer state gauges; nil
	// allocates a private registry.
	Metrics *metrics.Registry
}

// Tracker is one node's replica of the cluster membership view. All methods
// are safe for concurrent use.
type Tracker struct {
	self          topology.NodeID
	suspectRounds int
	failRounds    int
	onEvent       func(Event)
	reg           *metrics.Registry

	mu      sync.Mutex
	members map[topology.NodeID]*Member
	// quiet counts local Beat rounds since each member's heartbeat last
	// advanced — the deterministic stand-in for a failure-detector timeout.
	quiet map[topology.NodeID]int
}

// New validates the configuration and builds a tracker. Self starts Alive at
// incarnation 1; seeds start Alive at incarnation 0 so any state they
// announce about themselves immediately outranks the placeholder.
func New(cfg Config) (*Tracker, error) {
	if cfg.Self == "" {
		return nil, errors.New("membership: empty self")
	}
	if cfg.SuspectRounds == 0 {
		cfg.SuspectRounds = DefaultSuspectRounds
	}
	if cfg.FailRounds == 0 {
		cfg.FailRounds = DefaultFailRounds
	}
	if cfg.SuspectRounds < 1 || cfg.FailRounds <= cfg.SuspectRounds {
		return nil, fmt.Errorf("membership: bad detection windows suspect=%d fail=%d",
			cfg.SuspectRounds, cfg.FailRounds)
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	t := &Tracker{
		self:          cfg.Self,
		suspectRounds: cfg.SuspectRounds,
		failRounds:    cfg.FailRounds,
		onEvent:       cfg.OnEvent,
		reg:           cfg.Metrics,
		members:       make(map[topology.NodeID]*Member),
		quiet:         make(map[topology.NodeID]int),
	}
	t.members[cfg.Self] = &Member{Node: cfg.Self, Incarnation: 1, Heartbeat: 1, State: Alive}
	for _, s := range cfg.Seeds {
		if s == cfg.Self || s == "" {
			continue
		}
		t.members[s] = &Member{Node: s, Incarnation: 0, Heartbeat: 0, State: Alive}
	}
	t.publishLocked()
	return t, nil
}

// Self returns the tracker's own node.
func (t *Tracker) Self() topology.NodeID { return t.self }

// Member returns one member's current view entry.
func (t *Tracker) Member(n topology.NodeID) (Member, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	m, ok := t.members[n]
	if !ok {
		return Member{}, false
	}
	return *m, true
}

// Members returns the full view, sorted by node ID.
func (t *Tracker) Members() []Member {
	t.mu.Lock()
	out := make([]Member, 0, len(t.members))
	for _, m := range t.members {
		out = append(out, *m)
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// Alive returns the members currently routable for new sessions: state Alive
// only (draining and suspect members take no new load), sorted.
func (t *Tracker) Alive() []topology.NodeID {
	t.mu.Lock()
	out := make([]topology.NodeID, 0, len(t.members))
	for n, m := range t.members {
		if m.State == Alive {
			out = append(out, n)
		}
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// GossipPeers returns the members worth gossiping with: everyone but self
// that has not announced Left. Suspect and even Failed members stay dialed —
// the exchange reaching a live "failed" node is its only refutation channel,
// and without one a healed partition whose two sides failed each other would
// never reconnect (both would drop the other from their peer sets forever).
// Dials to genuinely dead members fail fast and count as gossip errors.
func (t *Tracker) GossipPeers() []topology.NodeID {
	t.mu.Lock()
	out := make([]topology.NodeID, 0, len(t.members))
	for n, m := range t.members {
		if n != t.self && m.State != Left {
			out = append(out, n)
		}
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Beat advances the local heartbeat and runs one failure-detection sweep:
// every non-terminal member that stayed quiet another round moves toward
// Suspect and then Failed. The gossiper calls it once per round.
func (t *Tracker) Beat() {
	var events []Event
	t.mu.Lock()
	self := t.members[t.self]
	self.Heartbeat++
	for n, m := range t.members {
		if n == t.self || m.State == Failed || m.State == Left {
			continue
		}
		t.quiet[n]++
		switch {
		case t.quiet[n] >= t.failRounds && m.State != Failed:
			m.State = Failed
			events = append(events, Event{Kind: EventFail, Node: n, Member: *m})
		case t.quiet[n] >= t.suspectRounds && m.State == Alive:
			m.State = Suspect
			events = append(events, Event{Kind: EventSuspect, Node: n, Member: *m})
		}
	}
	t.publishLocked()
	t.mu.Unlock()
	t.emit(events)
}

// SetLocalState announces a new local state (Draining for a graceful drain,
// Left at its completion, Alive to rejoin). The incarnation is bumped so the
// announcement outranks everything previously gossiped about this node.
func (t *Tracker) SetLocalState(s State) {
	t.mu.Lock()
	self := t.members[t.self]
	self.Incarnation++
	self.Heartbeat++
	self.State = s
	t.publishLocked()
	t.mu.Unlock()
}

// Sync builds the full-view payload for one gossip exchange. Views are a
// handful of entries, so full-state exchange converges in O(log N) rounds
// without delta bookkeeping.
func (t *Tracker) Sync() transport.MemberSyncPayload {
	t.mu.Lock()
	p := transport.MemberSyncPayload{From: t.self}
	for _, m := range t.members {
		p.Members = append(p.Members, transport.MemberEntry{
			Node:        m.Node,
			Incarnation: m.Incarnation,
			Heartbeat:   m.Heartbeat,
			State:       m.State.String(),
		})
	}
	t.mu.Unlock()
	sort.Slice(p.Members, func(i, j int) bool { return p.Members[i].Node < p.Members[j].Node })
	return p
}

// Merge folds one received view into the local one under the precedence
// rules, emitting events for every transition it causes. Entries about self
// with a bad state and an incarnation at least ours trigger refutation: the
// incarnation jumps past the rumor and the current local state is reasserted.
func (t *Tracker) Merge(p transport.MemberSyncPayload) {
	var events []Event
	t.mu.Lock()
	// Deterministic application order: the payload arrives node-sorted from
	// Sync, but sort defensively — event order must not depend on map order.
	entries := append([]transport.MemberEntry(nil), p.Members...)
	sort.Slice(entries, func(i, j int) bool { return entries[i].Node < entries[j].Node })
	for _, e := range entries {
		if e.Node == "" {
			continue
		}
		st := parseState(e.State)
		if e.Node == t.self {
			self := t.members[t.self]
			if st >= Suspect && e.Incarnation >= self.Incarnation && self.State != Left {
				// Refute: a rumor says we are suspect/failed but we are
				// demonstrably running. Jump past it and reassert.
				self.Incarnation = e.Incarnation + 1
				self.Heartbeat++
			}
			continue
		}
		cur, known := t.members[e.Node]
		if !known {
			m := &Member{Node: e.Node, Incarnation: e.Incarnation, Heartbeat: e.Heartbeat, State: st}
			t.members[e.Node] = m
			t.quiet[e.Node] = 0
			events = append(events, Event{Kind: EventJoin, Node: e.Node, Member: *m})
			events = t.appendTransitionLocked(events, e.Node, Alive, st, *m)
			continue
		}
		prev := cur.State
		switch {
		case e.Incarnation > cur.Incarnation:
			cur.Incarnation = e.Incarnation
			cur.Heartbeat = e.Heartbeat
			cur.State = st
			t.quiet[e.Node] = 0
		case e.Incarnation == cur.Incarnation:
			// At equal incarnation, state and heartbeat join independently
			// (max each), so merges commute regardless of exchange order.
			if st > cur.State {
				cur.State = st
			}
			if e.Heartbeat > cur.Heartbeat {
				cur.Heartbeat = e.Heartbeat
				t.quiet[e.Node] = 0
			}
		}
		events = t.appendTransitionLocked(events, e.Node, prev, cur.State, *cur)
	}
	t.publishLocked()
	t.mu.Unlock()
	t.emit(events)
}

// appendTransitionLocked records the event (if any) for a prev→next state
// change. Callers hold t.mu.
func (t *Tracker) appendTransitionLocked(events []Event, n topology.NodeID, prev, next State, m Member) []Event {
	if prev == next {
		return events
	}
	switch next {
	case Alive:
		if prev == Suspect || prev == Failed {
			return append(events, Event{Kind: EventRecover, Node: n, Member: m})
		}
	case Suspect:
		return append(events, Event{Kind: EventSuspect, Node: n, Member: m})
	case Failed:
		return append(events, Event{Kind: EventFail, Node: n, Member: m})
	case Draining:
		return append(events, Event{Kind: EventDrain, Node: n, Member: m})
	case Left:
		return append(events, Event{Kind: EventLeave, Node: n, Member: m})
	}
	return events
}

// HandleSync is the receiving side of one exchange: merge the sender's view,
// reply with ours (now the union).
func (t *Tracker) HandleSync(req transport.MemberSyncPayload) transport.MemberSyncPayload {
	t.Merge(req)
	return t.Sync()
}

// emit delivers events to the subscriber and charges the event counters.
func (t *Tracker) emit(events []Event) {
	for _, ev := range events {
		t.reg.Counter("membership.events_" + ev.Kind.String()).Inc()
		if t.onEvent != nil {
			t.onEvent(ev)
		}
	}
}

// publishLocked refreshes the membership gauges: total and alive member
// counts plus one numeric state gauge per peer (0 alive, 1 draining,
// 2 suspect, 3 failed, 4 left). Callers hold t.mu.
func (t *Tracker) publishLocked() {
	alive := 0
	for _, m := range t.members {
		if m.State == Alive {
			alive++
		}
		t.reg.Gauge("membership.state." + string(m.Node)).Set(float64(m.State))
	}
	t.reg.Gauge("membership.members").Set(float64(len(t.members)))
	t.reg.Gauge("membership.alive").Set(float64(alive))
}
