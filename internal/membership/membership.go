// Package membership is the elastic-fleet layer: a SWIM-style gossip
// membership tracker (join / drain / suspect / fail / leave transitions with
// incarnation numbers), a gossiper that disseminates the view over the live
// transport on the same cadence pattern as the reservation-ledger gossiper,
// and a redirect director that turns any node into a stateless front door for
// watch requests.
//
// Failure detection is contact-driven and round-counted rather than
// wall-clock-timed, so it is fully deterministic under the virtual clock:
// every gossip round dials a rotation of peers, a dial or exchange failure
// charges the peer's pending counter, and SuspectRounds consecutive failures
// trigger an *indirect* probe — k live helpers are asked to reach the peer
// via member.ping-req — before any verdict. Only when direct and indirect
// probes all fail is the member marked Suspect; FailRounds−SuspectRounds
// further rounds without a refutation and it is Failed. A live node that
// sees itself suspected refutes by bumping its incarnation and reasserting
// its state (classic SWIM); a dead node never refutes, so the failure
// verdict spreads. A Lifeguard-style local-health multiplier stretches the
// observer's own windows while its recent gossip rounds are mostly erroring,
// so a struggling observer does not condemn healthy peers.
//
// Dissemination is delta-synced for WAN scale: rows carry a local update
// sequence, each peer's acknowledged sequence is tracked, and an exchange
// piggybacks only the rows the peer has not confirmed — with full-view
// fallbacks on first contact, peer restart (epoch change), ack mismatch, and
// a periodic anti-entropy safety net. In steady state an exchange is a few
// dozen bytes regardless of fleet size.
//
// Merge rules (per member, commutative, so replicas converge regardless of
// exchange order):
//
//   - a higher incarnation always wins;
//   - at equal incarnation the "worse" state wins
//     (alive < draining < suspect < failed < left);
//   - at equal incarnation and state, the higher heartbeat wins.
package membership

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"dvod/internal/metrics"
	"dvod/internal/topology"
	"dvod/internal/transport"
)

// State is one member's lifecycle state.
type State int

// The membership states, ordered by merge precedence: at equal incarnation a
// numerically larger state overrides a smaller one.
const (
	// Alive: contact succeeds (or no evidence against); full participant.
	Alive State = iota
	// Draining: the member announced a graceful drain — it still serves
	// in-flight sessions but redirects new watches and takes no new load.
	Draining
	// Suspect: direct and indirect probes both failed for SuspectRounds
	// rounds. Routing avoids suspects; the member can refute by bumping its
	// incarnation.
	Suspect
	// Failed: a suspect that stayed unrefuted through FailRounds rounds.
	// Consumers reclaim the member's leases and penalize its routes; only a
	// higher incarnation (a restart or refutation) revives it.
	Failed
	// Left: the member announced a completed drain. Terminal for this
	// incarnation.
	Left
)

// String names the state (also the wire encoding).
func (s State) String() string {
	switch s {
	case Alive:
		return "alive"
	case Draining:
		return "draining"
	case Suspect:
		return "suspect"
	case Failed:
		return "failed"
	case Left:
		return "left"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// parseState decodes a wire state; unknown strings degrade to Suspect so a
// newer peer's states never silently count as healthy.
func parseState(s string) State {
	switch s {
	case "alive":
		return Alive
	case "draining":
		return Draining
	case "suspect":
		return Suspect
	case "failed":
		return Failed
	case "left":
		return Left
	default:
		return Suspect
	}
}

// Member is one member's view entry.
type Member struct {
	Node        topology.NodeID
	Incarnation uint64
	Heartbeat   uint64
	State       State
}

// EventKind labels membership transitions observed by one tracker.
type EventKind int

// The event kinds.
const (
	// EventJoin: a previously unknown member appeared in the view.
	EventJoin EventKind = iota + 1
	// EventSuspect: a member transitioned into Suspect.
	EventSuspect
	// EventRecover: a suspect refuted and is Alive again.
	EventRecover
	// EventFail: a member transitioned into Failed.
	EventFail
	// EventDrain: a member announced a graceful drain.
	EventDrain
	// EventLeave: a member completed its drain (Left).
	EventLeave
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EventJoin:
		return "join"
	case EventSuspect:
		return "suspect"
	case EventRecover:
		return "recover"
	case EventFail:
		return "fail"
	case EventDrain:
		return "drain"
	case EventLeave:
		return "leave"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one observed transition.
type Event struct {
	Kind   EventKind
	Node   topology.NodeID
	Member Member
}

// Default detection windows, in local gossip rounds. With the per-round
// priority retry a failing peer is re-dialed every round, so three
// consecutive failures plus a failed indirect probe is decisively abnormal
// and three further unrefuted rounds is a verdict.
const (
	DefaultSuspectRounds = 3
	DefaultFailRounds    = 6
)

// Defaults of the WAN-hardening knobs.
const (
	// DefaultProbeFanout is how many live helpers an indirect probe asks.
	DefaultProbeFanout = 3
	// DefaultFullSyncEvery is the periodic full-view anti-entropy safety
	// net: every Nth exchange with one peer ships the full view even when
	// the delta would be smaller.
	DefaultFullSyncEvery = 32
	// DefaultFailedDialCap bounds the decaying redial schedule for Failed
	// members: the gap between refutation-channel dials doubles per attempt
	// (1, 2, 4, … rounds) and saturates at this many rounds.
	DefaultFailedDialCap = 64
	// maxLocalHealth caps the Lifeguard local-health multiplier: detection
	// windows stretch at most (1+maxLocalHealth)×.
	maxLocalHealth = 8
)

// Config assembles a Tracker.
type Config struct {
	// Self is the member this tracker runs on. Required.
	Self topology.NodeID
	// Seeds are the initially known members (usually the boot topology).
	Seeds []topology.NodeID
	// SuspectRounds / FailRounds are the detection windows in local gossip
	// rounds; zero uses the defaults. SuspectRounds consecutive contact
	// failures trigger the indirect probe whose failure makes the verdict;
	// FailRounds−SuspectRounds unrefuted rounds later the suspect is Failed.
	SuspectRounds int
	FailRounds    int
	// ProbeFanout is how many live helpers an indirect probe asks before a
	// Suspect verdict; zero uses DefaultProbeFanout, negative disables
	// indirect probing (the verdict falls on direct failures alone).
	ProbeFanout int
	// FullSyncEvery ships a full view every Nth exchange per peer as an
	// anti-entropy safety net; zero uses DefaultFullSyncEvery.
	FullSyncEvery int
	// DisableDelta ships the full view on every exchange — the pre-WAN
	// behavior, kept as the membership study's control arm.
	DisableDelta bool
	// DisableLocalHealth switches off the Lifeguard window stretching.
	DisableLocalHealth bool
	// FailedDialCap saturates the Failed-member redial backoff, in rounds;
	// zero uses DefaultFailedDialCap.
	FailedDialCap int
	// Epoch is this tracker's boot epoch, announced in every exchange; a
	// restarted node must announce a different epoch so peers reset their
	// delta ack state. Zero uses 1.
	Epoch uint64
	// OnEvent receives transitions observed by this tracker. Called outside
	// the tracker lock, in deterministic (node-sorted) order per merge.
	// May be nil.
	OnEvent func(Event)
	// Metrics receives membership.* counters and per-peer state gauges; nil
	// allocates a private registry.
	Metrics *metrics.Registry
}

// peerSync is the per-peer delta-sync state: which of our updates the peer
// has confirmed, and what we have folded of theirs.
type peerSync struct {
	// epoch is the peer's boot epoch last seen; a change resets everything.
	epoch uint64
	// acked is our update sequence the peer has confirmed receiving;
	// deltas to the peer carry rows touched after it.
	acked uint64
	// confirmed is false until the first ack arrives — until then every
	// payload to the peer is a full view.
	confirmed bool
	// peerSeq is the peer's highest update sequence we have merged; echoed
	// back as Ack so the peer can advance its own acked.
	peerSeq uint64
	// exchanges counts completed legs toward the FullSyncEvery safety net.
	exchanges int
	// needFull forces our next payload to the peer to be a full view.
	needFull bool
	// askFull makes our next payload request the peer's full view.
	askFull bool
}

// Tracker is one node's replica of the cluster membership view. All methods
// are safe for concurrent use.
type Tracker struct {
	self          topology.NodeID
	suspectRounds int
	failRounds    int
	probeFanout   int
	fullSyncEvery int
	failedDialCap int
	disableDelta  bool
	disableLHM    bool
	epoch         uint64
	onEvent       func(Event)
	reg           *metrics.Registry

	mu      sync.Mutex
	members map[topology.NodeID]*Member
	// order holds the member IDs sorted, so view builds stream rows in wire
	// order without a per-payload sort — the hot path at fleet scale.
	// Members are never removed (Left rows persist as tombstones), so the
	// slice only ever grows by sorted insertion.
	order []topology.NodeID
	// useq is the local update sequence; touched records the sequence at
	// which each member's row last changed. An exchange's delta is every row
	// touched after the peer's acknowledged sequence.
	useq    uint64
	touched map[topology.NodeID]uint64
	peers   map[topology.NodeID]*peerSync
	// round counts local Beats; pending counts consecutive failed contacts
	// per member — the deterministic stand-in for a failure-detector
	// timeout. probing marks members with an indirect probe in flight, and
	// suspectAge counts rounds since a member turned Suspect.
	round      uint64
	pending    map[topology.NodeID]int
	probing    map[topology.NodeID]bool
	suspectAge map[topology.NodeID]int
	// originated marks suspicions this tracker issued itself (for the
	// false-suspect accounting when a refutation arrives).
	originated map[topology.NodeID]bool
	// redialDue / redialN implement the decaying Failed-member dial budget.
	redialDue map[topology.NodeID]uint64
	redialN   map[topology.NodeID]int
	// rotor is the gossip rotation cursor: the last NodeID handed out, so
	// rotation is stable under membership churn (satellite fix for the
	// index-based round-robin skew).
	rotor topology.NodeID
	// lhm is the Lifeguard local-health multiplier; okRound / failRound
	// count this round's contact outcomes feeding it.
	lhm      int
	okRound  int
	failRound int
	alive    int
}

// New validates the configuration and builds a tracker. Self starts Alive at
// incarnation 1; seeds start Alive at incarnation 0 so any state they
// announce about themselves immediately outranks the placeholder.
func New(cfg Config) (*Tracker, error) {
	if cfg.Self == "" {
		return nil, errors.New("membership: empty self")
	}
	if cfg.SuspectRounds == 0 {
		cfg.SuspectRounds = DefaultSuspectRounds
	}
	if cfg.FailRounds == 0 {
		cfg.FailRounds = DefaultFailRounds
	}
	if cfg.SuspectRounds < 1 || cfg.FailRounds <= cfg.SuspectRounds {
		return nil, fmt.Errorf("membership: bad detection windows suspect=%d fail=%d",
			cfg.SuspectRounds, cfg.FailRounds)
	}
	if cfg.ProbeFanout == 0 {
		cfg.ProbeFanout = DefaultProbeFanout
	}
	if cfg.FullSyncEvery == 0 {
		cfg.FullSyncEvery = DefaultFullSyncEvery
	}
	if cfg.FullSyncEvery < 0 {
		return nil, fmt.Errorf("membership: negative full-sync period %d", cfg.FullSyncEvery)
	}
	if cfg.FailedDialCap == 0 {
		cfg.FailedDialCap = DefaultFailedDialCap
	}
	if cfg.FailedDialCap < 1 {
		return nil, fmt.Errorf("membership: bad failed-dial cap %d", cfg.FailedDialCap)
	}
	if cfg.Epoch == 0 {
		cfg.Epoch = 1
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	t := &Tracker{
		self:          cfg.Self,
		suspectRounds: cfg.SuspectRounds,
		failRounds:    cfg.FailRounds,
		probeFanout:   cfg.ProbeFanout,
		fullSyncEvery: cfg.FullSyncEvery,
		failedDialCap: cfg.FailedDialCap,
		disableDelta:  cfg.DisableDelta,
		disableLHM:    cfg.DisableLocalHealth,
		epoch:         cfg.Epoch,
		onEvent:       cfg.OnEvent,
		reg:           cfg.Metrics,
		members:       make(map[topology.NodeID]*Member),
		touched:       make(map[topology.NodeID]uint64),
		peers:         make(map[topology.NodeID]*peerSync),
		pending:       make(map[topology.NodeID]int),
		probing:       make(map[topology.NodeID]bool),
		suspectAge:    make(map[topology.NodeID]int),
		originated:    make(map[topology.NodeID]bool),
		redialDue:     make(map[topology.NodeID]uint64),
		redialN:       make(map[topology.NodeID]int),
	}
	t.members[cfg.Self] = &Member{Node: cfg.Self, Incarnation: 1, Heartbeat: 1, State: Alive}
	t.orderInsertLocked(cfg.Self)
	t.touchLocked(cfg.Self)
	t.alive = 1
	for _, s := range cfg.Seeds {
		if s == cfg.Self || s == "" {
			continue
		}
		if _, dup := t.members[s]; dup {
			continue
		}
		t.members[s] = &Member{Node: s, Incarnation: 0, Heartbeat: 0, State: Alive}
		t.orderInsertLocked(s)
		t.touchLocked(s)
		t.alive++
	}
	t.publishLocked()
	return t, nil
}

// Self returns the tracker's own node.
func (t *Tracker) Self() topology.NodeID { return t.self }

// Epoch returns the tracker's boot epoch.
func (t *Tracker) Epoch() uint64 { return t.epoch }

// LocalHealth returns the current Lifeguard local-health multiplier (0 when
// the node's own gossip rounds are healthy; detection windows are stretched
// (1+LocalHealth)×).
func (t *Tracker) LocalHealth() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lhm
}

// Size returns how many members the view holds (including self). Cheaper
// than Members for convergence checks over large fleets.
func (t *Tracker) Size() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.members)
}

// Member returns one member's current view entry.
func (t *Tracker) Member(n topology.NodeID) (Member, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	m, ok := t.members[n]
	if !ok {
		return Member{}, false
	}
	return *m, true
}

// Members returns the full view, sorted by node ID.
func (t *Tracker) Members() []Member {
	t.mu.Lock()
	out := make([]Member, 0, len(t.members))
	for _, m := range t.members {
		out = append(out, *m)
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// Alive returns the members currently routable for new sessions: state Alive
// only (draining and suspect members take no new load), sorted.
func (t *Tracker) Alive() []topology.NodeID {
	t.mu.Lock()
	out := make([]topology.NodeID, 0, len(t.members))
	for n, m := range t.members {
		if m.State == Alive {
			out = append(out, n)
		}
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// GossipPeers returns the members worth gossiping with: everyone but self
// that has not announced Left. Suspect and even Failed members stay in the
// set — the exchange reaching a live "failed" node is its only refutation
// channel, and without one a healed partition whose two sides failed each
// other would never reconnect. (The gossiper's contact plan dials Failed
// members on the decaying redial schedule, not every round.)
func (t *Tracker) GossipPeers() []topology.NodeID {
	t.mu.Lock()
	out := make([]topology.NodeID, 0, len(t.members))
	for n, m := range t.members {
		if n != t.self && m.State != Left {
			out = append(out, n)
		}
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// effSuspectLocked / effFailAgeLocked are the detection windows stretched by
// the local-health multiplier: an observer whose own rounds are failing
// takes proportionally longer to condemn peers.
func (t *Tracker) effSuspectLocked() int { return t.suspectRounds * (1 + t.lhm) }

func (t *Tracker) effFailAgeLocked() int { return (t.failRounds - t.suspectRounds) * (1 + t.lhm) }

// Beat opens one failure-detection round: it folds the previous round's
// contact outcomes into the local-health multiplier and ages every Suspect
// toward Failed. The gossiper calls it once per round; detection itself is
// driven by the contact reports (ReportContactFailed / ReportIndirect), not
// by Beat.
func (t *Tracker) Beat() {
	var events []Event
	t.mu.Lock()
	t.round++
	if !t.disableLHM {
		switch {
		case t.failRound > 0 && t.failRound >= t.okRound:
			if t.lhm < maxLocalHealth {
				t.lhm++
			}
		case t.failRound == 0 && t.lhm > 0:
			t.lhm--
		}
		t.reg.Gauge("membership.lhm").Set(float64(t.lhm))
	}
	t.okRound, t.failRound = 0, 0
	ageLimit := t.effFailAgeLocked()
	for n, m := range t.members {
		if m.State != Suspect {
			continue
		}
		t.suspectAge[n]++
		if t.suspectAge[n] >= ageLimit {
			events = t.setStateLocked(n, Failed, events)
		}
	}
	sort.Slice(events, func(i, j int) bool { return events[i].Node < events[j].Node })
	t.publishLocked()
	t.mu.Unlock()
	t.emit(events)
}

// SetLocalState announces a new local state (Draining for a graceful drain,
// Left at its completion, Alive to rejoin). The incarnation is bumped so the
// announcement outranks everything previously gossiped about this node.
func (t *Tracker) SetLocalState(s State) {
	t.mu.Lock()
	self := t.members[t.self]
	prev := self.State
	self.Incarnation++
	self.Heartbeat++
	self.State = s
	t.touchLocked(t.self)
	t.accountStateLocked(t.self, prev, s)
	t.publishLocked()
	t.mu.Unlock()
}

// ReportContact records one successful direct contact with a member (either
// leg: we reached them, or they reached us). It clears the member's pending
// failure count and cancels any in-flight indirect probe.
func (t *Tracker) ReportContact(n topology.NodeID) {
	t.mu.Lock()
	t.contactLocked(n)
	t.okRound++
	t.mu.Unlock()
}

// ReportContactFailed records one failed direct contact attempt: the
// member's pending count grows toward the (health-stretched) suspect
// threshold. Failures against already-Failed members only feed the local
// health signal.
func (t *Tracker) ReportContactFailed(n topology.NodeID) {
	var events []Event
	t.mu.Lock()
	m, ok := t.members[n]
	if !ok || m.State == Left {
		t.mu.Unlock()
		return
	}
	t.failRound++
	if m.State != Failed {
		t.pending[n]++
		if t.probeFanout < 0 && t.pending[n] >= t.effSuspectLocked() &&
			m.State < Suspect && !t.probing[n] {
			// Indirect probing disabled: the direct evidence alone convicts.
			events = t.suspectLocked(n, events)
		}
	}
	t.publishLocked()
	t.mu.Unlock()
	t.emit(events)
}

// Probe is one indirect-probe assignment: ask each helper to reach Target
// via member.ping-req, then report the combined outcome with ReportIndirect.
type Probe struct {
	Target  topology.NodeID
	Helpers []topology.NodeID
}

// StartProbes collects the members whose pending failures crossed the
// suspect threshold this round and assigns indirect-probe helpers to each:
// up to ProbeFanout live members (excluding self and the target), rotated
// deterministically by round. Targets are marked probing until
// ReportIndirect resolves them. A probe with no reachable helpers is
// returned with an empty helper list — the caller must still resolve it
// (no helpers means no second opinion, so the direct verdict stands).
func (t *Tracker) StartProbes() []Probe {
	t.mu.Lock()
	var targets []topology.NodeID
	threshold := t.effSuspectLocked()
	for n, m := range t.members {
		if n == t.self || m.State >= Suspect || t.probing[n] {
			continue
		}
		if t.pending[n] >= threshold {
			targets = append(targets, n)
		}
	}
	if len(targets) == 0 {
		t.mu.Unlock()
		return nil
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })
	var candidates []topology.NodeID
	for n, m := range t.members {
		if n != t.self && m.State == Alive {
			candidates = append(candidates, n)
		}
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i] < candidates[j] })
	out := make([]Probe, 0, len(targets))
	for _, target := range targets {
		t.probing[target] = true
		p := Probe{Target: target}
		if len(candidates) > 0 {
			start := int(t.round) % len(candidates)
			for i := 0; len(p.Helpers) < t.probeFanout && i < len(candidates); i++ {
				h := candidates[(start+i)%len(candidates)]
				if h == target || t.pending[h] > 0 {
					continue
				}
				p.Helpers = append(p.Helpers, h)
			}
		}
		t.reg.Counter("membership.indirect_probes").Inc()
		out = append(out, p)
	}
	t.mu.Unlock()
	return out
}

// ReportIndirect resolves an indirect probe: ok means some helper reached
// the target (the fault is on our path, not the member — no verdict; the
// pending count resets so a fresh streak must accumulate). A failed probe
// issues the Suspect verdict.
func (t *Tracker) ReportIndirect(target topology.NodeID, ok bool) {
	var events []Event
	t.mu.Lock()
	delete(t.probing, target)
	if ok {
		delete(t.pending, target)
		t.reg.Counter("membership.indirect_rescues").Inc()
	} else if m, known := t.members[target]; known && m.State < Suspect {
		events = t.suspectLocked(target, events)
	}
	t.publishLocked()
	t.mu.Unlock()
	t.emit(events)
}

// PlanContacts builds one gossip round's dial plan, three sections deep:
//
//  1. rotation — the next fanout members in stable NodeID order after the
//     rotor cursor (Alive, Draining, and Suspect members), so every peer is
//     visited on a fair cadence regardless of membership churn;
//  2. priority retries — members with a pending failure streak or an
//     unresolved probe are re-dialed every round so detection completes in
//     SuspectRounds rounds, not SuspectRounds rotations;
//  3. due Failed redials — the refutation channel, on the decaying 2^n-round
//     schedule capped at FailedDialCap; skipped redials are counted in
//     membership.failed_dials_saved.
//
// Sections never overlap; the total is at most 3×fanout dials.
func (t *Tracker) PlanContacts(fanout int) []topology.NodeID {
	return t.PlanContactsWithin(fanout, nil)
}

// PlanContactsWithin is PlanContacts restricted to a dialable overlay: every
// section considers only members allowed reports true for. This is how a WAN
// deployment bounds its gossip neighborhood — the restriction must live
// inside the planner, because filtering the plan afterwards would burn
// rotation slots on undialable peers and starve the fair cadence at scale.
// A nil allowed admits everyone.
func (t *Tracker) PlanContactsWithin(fanout int, allowed func(topology.NodeID) bool) []topology.NodeID {
	if fanout < 1 {
		fanout = 1
	}
	if allowed == nil {
		allowed = func(topology.NodeID) bool { return true }
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	seen := make(map[topology.NodeID]bool, 3*fanout)
	var picks []topology.NodeID

	var pool []topology.NodeID
	for _, n := range t.order {
		if m := t.members[n]; n != t.self && m.State < Failed && allowed(n) {
			pool = append(pool, n)
		}
	}
	if len(pool) > 0 {
		start := sort.Search(len(pool), func(i int) bool { return pool[i] > t.rotor })
		n := fanout
		if n > len(pool) {
			n = len(pool)
		}
		for i := 0; i < n; i++ {
			id := pool[(start+i)%len(pool)]
			picks = append(picks, id)
			seen[id] = true
			t.rotor = id
		}
	}

	var retries []topology.NodeID
	for n := range t.pending {
		if m, ok := t.members[n]; ok && m.State < Failed && !seen[n] && allowed(n) {
			retries = append(retries, n)
		}
	}
	for n := range t.probing {
		if m, ok := t.members[n]; ok && m.State < Failed && !seen[n] && t.pending[n] == 0 && allowed(n) {
			retries = append(retries, n)
		}
	}
	sort.Slice(retries, func(i, j int) bool { return retries[i] < retries[j] })
	for i := 0; i < len(retries) && i < fanout; i++ {
		picks = append(picks, retries[i])
		seen[retries[i]] = true
	}

	var due []topology.NodeID
	saved := 0
	for n, m := range t.members {
		if m.State != Failed || seen[n] || !allowed(n) {
			continue
		}
		if t.redialDue[n] <= t.round {
			due = append(due, n)
		} else {
			saved++
		}
	}
	if saved > 0 {
		t.reg.Counter("membership.failed_dials_saved").Add(int64(saved))
	}
	sort.Slice(due, func(i, j int) bool { return due[i] < due[j] })
	if len(due) > fanout {
		// The overflow stays due and goes out next round.
		due = due[:fanout]
	}
	for _, n := range due {
		picks = append(picks, n)
		t.redialN[n]++
		gap := uint64(t.failedDialCap)
		if t.redialN[n] < 30 {
			if g := uint64(1) << t.redialN[n]; g < gap {
				gap = g
			}
		}
		t.redialDue[n] = t.round + gap
	}
	return picks
}

// Sync builds a full-view payload — the legacy exchange shape, still used by
// tests and as the explicit full-sync leg.
func (t *Tracker) Sync() transport.MemberSyncPayload {
	t.mu.Lock()
	p := transport.MemberSyncPayload{
		From:  t.self,
		Epoch: t.epoch,
		Seq:   t.useq,
		Full:  true,
		Known: len(t.members),
	}
	p.Members = t.rowsLocked(0)
	t.mu.Unlock()
	return p
}

// SyncFor builds the request leg of one exchange with peer: a delta of the
// rows the peer has not acknowledged, or a full view on first contact, after
// a restart or mismatch, or on the periodic safety net.
func (t *Tracker) SyncFor(peer topology.NodeID) transport.MemberSyncPayload {
	t.mu.Lock()
	p := t.buildSyncLocked(t.peerStateLocked(peer))
	t.mu.Unlock()
	return p
}

// HandleSync is the receiving side of one exchange: fold the sender's rows
// and ack bookkeeping, reply with our delta against what the sender has
// confirmed (or a full view when the protocol demands one). The sender's
// contact doubles as liveness evidence for it.
func (t *Tracker) HandleSync(req transport.MemberSyncPayload) transport.MemberSyncPayload {
	var events []Event
	t.mu.Lock()
	var ps *peerSync
	if req.From != "" && req.From != t.self {
		ps = t.peerStateLocked(req.From)
		t.applyPeerMetaLocked(ps, req)
		t.contactLocked(req.From)
		t.okRound++
	}
	events = t.mergeLocked(req.Members, events)
	var reply transport.MemberSyncPayload
	if ps != nil {
		// Merged through the sender's snapshot: echo its Seq as our Ack.
		if req.Seq > ps.peerSeq {
			ps.peerSeq = req.Seq
		}
		t.mismatchLocked(ps, req)
		reply = t.buildSyncLocked(ps)
	} else {
		reply = t.fullPayloadLocked()
	}
	t.publishLocked()
	t.mu.Unlock()
	t.emit(events)
	t.reg.Counter("membership.handled_syncs").Inc()
	return reply
}

// MergeReply folds the reply leg of an exchange this node initiated: merge
// the peer's rows, advance the ack bookkeeping, and record the successful
// round trip as contact evidence.
func (t *Tracker) MergeReply(peer topology.NodeID, reply transport.MemberSyncPayload) {
	var events []Event
	t.mu.Lock()
	ps := t.peerStateLocked(peer)
	t.applyPeerMetaLocked(ps, reply)
	t.contactLocked(peer)
	t.okRound++
	events = t.mergeLocked(reply.Members, events)
	if reply.Epoch != 0 {
		if reply.Seq > ps.peerSeq {
			ps.peerSeq = reply.Seq
		}
		t.mismatchLocked(ps, reply)
	}
	t.publishLocked()
	t.mu.Unlock()
	t.emit(events)
}

// Merge folds one received view into the local one under the precedence
// rules, emitting events for every transition it causes. The sender's
// contact is liveness evidence; no delta bookkeeping is touched (Merge is
// the protocol-agnostic half of HandleSync/MergeReply, and what legacy
// full-view exchanges use).
func (t *Tracker) Merge(p transport.MemberSyncPayload) {
	var events []Event
	t.mu.Lock()
	if p.From != "" && p.From != t.self {
		t.contactLocked(p.From)
	}
	events = t.mergeLocked(p.Members, events)
	t.publishLocked()
	t.mu.Unlock()
	t.emit(events)
}

// peerStateLocked finds or creates one peer's delta-sync state.
func (t *Tracker) peerStateLocked(peer topology.NodeID) *peerSync {
	ps := t.peers[peer]
	if ps == nil {
		ps = &peerSync{}
		t.peers[peer] = ps
	}
	return ps
}

// applyPeerMetaLocked folds a payload's epoch/ack scalars into the peer
// state. An epoch change (peer restart, or first typed contact) resets the
// delta bookkeeping: the peer lost its acks, so nothing we think it
// confirmed can be trusted, and it must receive a full view.
func (t *Tracker) applyPeerMetaLocked(ps *peerSync, p transport.MemberSyncPayload) {
	if p.Epoch == 0 {
		// Legacy peer: no delta protocol; always answer with full views.
		ps.needFull = true
		return
	}
	if ps.epoch != p.Epoch {
		*ps = peerSync{epoch: p.Epoch, needFull: true}
		t.reg.Counter("membership.epoch_resets").Inc()
	}
	if p.Ack > ps.acked {
		ps.acked = p.Ack
		ps.confirmed = true
	}
	if p.WantFull {
		ps.needFull = true
	}
}

// mismatchLocked applies the view-count fallback after a delta merge: if the
// peer's view is larger than ours it holds rows we lack (ask for its full
// view); if smaller, it lacks rows we hold (send ours).
func (t *Tracker) mismatchLocked(ps *peerSync, p transport.MemberSyncPayload) {
	if p.Full {
		ps.askFull = false
		return
	}
	switch {
	case p.Known > len(t.members):
		ps.askFull = true
	case p.Known > 0 && p.Known < len(t.members):
		ps.needFull = true
	}
}

// buildSyncLocked assembles one outgoing leg for peer state ps: full when
// the protocol demands it, the unacknowledged delta otherwise.
func (t *Tracker) buildSyncLocked(ps *peerSync) transport.MemberSyncPayload {
	full := t.disableDelta || ps.needFull || !ps.confirmed ||
		(t.fullSyncEvery > 0 && ps.exchanges%t.fullSyncEvery == 0)
	p := transport.MemberSyncPayload{
		From:     t.self,
		Epoch:    t.epoch,
		Seq:      t.useq,
		Ack:      ps.peerSeq,
		Full:     full,
		WantFull: ps.askFull,
		Known:    len(t.members),
	}
	var floor uint64
	if !full {
		floor = ps.acked
	}
	p.Members = t.rowsLocked(floor)
	ps.exchanges++
	if full {
		ps.needFull = false
		t.reg.Counter("membership.full_syncs").Inc()
	} else {
		t.reg.Counter("membership.delta_syncs").Inc()
	}
	t.reg.Counter("membership.rows_out").Add(int64(len(p.Members)))
	return p
}

// fullPayloadLocked is Sync without the lock.
func (t *Tracker) fullPayloadLocked() transport.MemberSyncPayload {
	return transport.MemberSyncPayload{
		From:    t.self,
		Epoch:   t.epoch,
		Seq:     t.useq,
		Full:    true,
		Known:   len(t.members),
		Members: t.rowsLocked(0),
	}
}

// rowsLocked renders the members whose rows were touched after floor,
// node-sorted (floor 0 is the full view). The order slice keeps this a
// single in-order pass — no per-payload sort.
func (t *Tracker) rowsLocked(floor uint64) []transport.MemberEntry {
	var out []transport.MemberEntry
	for _, n := range t.order {
		if t.touched[n] <= floor {
			continue
		}
		m := t.members[n]
		out = append(out, transport.MemberEntry{
			Node:        m.Node,
			Incarnation: m.Incarnation,
			Heartbeat:   m.Heartbeat,
			State:       m.State.String(),
		})
	}
	return out
}

// orderInsertLocked splices a new member ID into the sorted order slice.
func (t *Tracker) orderInsertLocked(n topology.NodeID) {
	i := sort.Search(len(t.order), func(i int) bool { return t.order[i] >= n })
	t.order = append(t.order, "")
	copy(t.order[i+1:], t.order[i:])
	t.order[i] = n
}

// touchLocked stamps one member's row as changed at a fresh update sequence.
func (t *Tracker) touchLocked(n topology.NodeID) {
	t.useq++
	t.touched[n] = t.useq
}

// contactLocked clears one member's failure evidence after a successful
// contact (either direction).
func (t *Tracker) contactLocked(n topology.NodeID) {
	delete(t.pending, n)
	delete(t.probing, n)
}

// suspectLocked issues a local Suspect verdict for n.
func (t *Tracker) suspectLocked(n topology.NodeID, events []Event) []Event {
	t.originated[n] = true
	return t.setStateLocked(n, Suspect, events)
}

// setStateLocked moves one member to a new state at its current incarnation,
// with all the transition bookkeeping. Callers hold t.mu.
func (t *Tracker) setStateLocked(n topology.NodeID, next State, events []Event) []Event {
	m := t.members[n]
	if m == nil || m.State == next {
		return events
	}
	prev := m.State
	m.State = next
	t.touchLocked(n)
	t.accountStateLocked(n, prev, next)
	return t.appendTransitionLocked(events, n, prev, next, *m)
}

// accountStateLocked maintains the per-state bookkeeping (alive count,
// suspect age, redial schedule, false-suspect accounting, state gauge)
// across one member's prev→next transition. Callers hold t.mu.
func (t *Tracker) accountStateLocked(n topology.NodeID, prev, next State) {
	if prev == next {
		return
	}
	if prev == Alive {
		t.alive--
	}
	if next == Alive {
		t.alive++
	}
	switch next {
	case Suspect:
		t.suspectAge[n] = 0
	case Failed:
		delete(t.suspectAge, n)
		delete(t.pending, n)
		delete(t.probing, n)
		t.redialN[n] = 0
		t.redialDue[n] = t.round + 1
	case Alive, Draining:
		if prev == Suspect || prev == Failed {
			if t.originated[n] {
				t.reg.Counter("membership.false_suspects").Inc()
			}
		}
		delete(t.suspectAge, n)
		delete(t.pending, n)
		delete(t.probing, n)
		delete(t.originated, n)
		delete(t.redialDue, n)
		delete(t.redialN, n)
	case Left:
		delete(t.suspectAge, n)
		delete(t.pending, n)
		delete(t.probing, n)
		delete(t.originated, n)
		delete(t.redialDue, n)
		delete(t.redialN, n)
	}
	t.reg.Gauge("membership.state." + string(n)).Set(float64(next))
}

// mergeLocked folds received rows under the precedence rules. Callers hold
// t.mu; returned events are appended in node order (the rows arrive sorted
// from the codec, and are sorted defensively here).
func (t *Tracker) mergeLocked(entries []transport.MemberEntry, events []Event) []Event {
	if len(entries) > 1 && !sort.SliceIsSorted(entries, func(i, j int) bool { return entries[i].Node < entries[j].Node }) {
		entries = append([]transport.MemberEntry(nil), entries...)
		sort.Slice(entries, func(i, j int) bool { return entries[i].Node < entries[j].Node })
	}
	for _, e := range entries {
		if e.Node == "" {
			continue
		}
		st := parseState(e.State)
		if e.Node == t.self {
			self := t.members[t.self]
			if st >= Suspect && e.Incarnation >= self.Incarnation && self.State != Left {
				// Refute: a rumor says we are suspect/failed but we are
				// demonstrably running. Jump past it and reassert.
				self.Incarnation = e.Incarnation + 1
				self.Heartbeat++
				t.touchLocked(t.self)
				t.reg.Counter("membership.refutations").Inc()
			}
			continue
		}
		cur, known := t.members[e.Node]
		if !known {
			m := &Member{Node: e.Node, Incarnation: e.Incarnation, Heartbeat: e.Heartbeat, State: st}
			t.members[e.Node] = m
			t.orderInsertLocked(e.Node)
			t.touchLocked(e.Node)
			// Account as born Alive then transitioned, so the alive count
			// and per-state bookkeeping stay consistent for any birth state.
			t.alive++
			t.accountStateLocked(e.Node, Alive, st)
			if st == Alive {
				// accountStateLocked only runs on transitions; publish the
				// gauge for the common born-alive case explicitly.
				t.reg.Gauge("membership.state." + string(e.Node)).Set(float64(Alive))
			}
			events = append(events, Event{Kind: EventJoin, Node: e.Node, Member: *m})
			events = t.appendTransitionLocked(events, e.Node, Alive, st, *m)
			continue
		}
		prev := cur.State
		changed := false
		switch {
		case e.Incarnation > cur.Incarnation:
			cur.Incarnation = e.Incarnation
			cur.Heartbeat = e.Heartbeat
			cur.State = st
			changed = true
		case e.Incarnation == cur.Incarnation:
			// At equal incarnation, state and heartbeat join independently
			// (max each), so merges commute regardless of exchange order.
			if st > cur.State {
				cur.State = st
				changed = true
			}
			if e.Heartbeat > cur.Heartbeat {
				cur.Heartbeat = e.Heartbeat
				changed = true
			}
		}
		if changed {
			t.touchLocked(e.Node)
			t.accountStateLocked(e.Node, prev, cur.State)
		}
		events = t.appendTransitionLocked(events, e.Node, prev, cur.State, *cur)
	}
	return events
}

// appendTransitionLocked records the event (if any) for a prev→next state
// change. Callers hold t.mu.
func (t *Tracker) appendTransitionLocked(events []Event, n topology.NodeID, prev, next State, m Member) []Event {
	if prev == next {
		return events
	}
	switch next {
	case Alive:
		if prev == Suspect || prev == Failed {
			return append(events, Event{Kind: EventRecover, Node: n, Member: m})
		}
	case Suspect:
		return append(events, Event{Kind: EventSuspect, Node: n, Member: m})
	case Failed:
		return append(events, Event{Kind: EventFail, Node: n, Member: m})
	case Draining:
		return append(events, Event{Kind: EventDrain, Node: n, Member: m})
	case Left:
		return append(events, Event{Kind: EventLeave, Node: n, Member: m})
	}
	return events
}

// emit delivers events to the subscriber and charges the event counters.
func (t *Tracker) emit(events []Event) {
	for _, ev := range events {
		t.reg.Counter("membership.events_" + ev.Kind.String()).Inc()
		if t.onEvent != nil {
			t.onEvent(ev)
		}
	}
}

// publishLocked refreshes the aggregate membership gauges. Per-member state
// gauges are published on transitions (accountStateLocked), so this stays
// O(1) — it runs on every merge and beat, and fleets are large now. Callers
// hold t.mu.
func (t *Tracker) publishLocked() {
	t.reg.Gauge("membership.members").Set(float64(len(t.members)))
	t.reg.Gauge("membership.alive").Set(float64(t.alive))
}
