package membership

import (
	"errors"
	"testing"

	"dvod/internal/topology"
)

func newTestDirector(t *testing.T, cfg DirectorConfig) *Director {
	t.Helper()
	d, err := NewDirector(cfg)
	if err != nil {
		t.Fatalf("new director: %v", err)
	}
	return d
}

func staticHolders(m map[string][]topology.NodeID) func(string) ([]topology.NodeID, error) {
	return func(title string) ([]topology.NodeID, error) {
		h, ok := m[title]
		if !ok {
			return nil, errors.New("unknown title")
		}
		return h, nil
	}
}

func staticLookup(n topology.NodeID) (string, error) { return "addr-" + string(n), nil }

func TestDirectorServesResidentAndRedirectsForeign(t *testing.T) {
	d := newTestDirector(t, DirectorConfig{
		Self:      "A",
		Holders:   staticHolders(map[string][]topology.NodeID{"t1": {"A"}, "t2": {"B", "C"}}),
		Lookup:    staticLookup,
		FrontDoor: true,
	})
	if _, _, ok := d.Route("t1", 0); ok {
		t.Fatal("redirected a locally held title")
	}
	target, addr, ok := d.Route("t2", 0)
	if !ok {
		t.Fatal("no redirect for a foreign title with the front door on")
	}
	if target != "B" || addr != "addr-B" {
		t.Fatalf("redirect to %s (%s), want B at addr-B (tie broken by node ID)", target, addr)
	}
}

func TestDirectorOffWithoutFrontDoorUnlessDraining(t *testing.T) {
	d := newTestDirector(t, DirectorConfig{
		Self:    "A",
		Holders: staticHolders(map[string][]topology.NodeID{"t": {"A", "B"}}),
		Lookup:  staticLookup,
	})
	if _, _, ok := d.Route("t", 0); ok {
		t.Fatal("redirected with the front door off and not draining")
	}
	d.SetDraining(true)
	target, _, ok := d.Route("t", 0)
	if !ok || target != "B" {
		t.Fatalf("draining redirect = %s/%v, want B", target, ok)
	}
	// A draining node with no live replica serves the request itself.
	solo := newTestDirector(t, DirectorConfig{
		Self:    "A",
		Holders: staticHolders(map[string][]topology.NodeID{"t": {"A"}}),
		Lookup:  staticLookup,
	})
	solo.SetDraining(true)
	if _, _, ok := solo.Route("t", 0); ok {
		t.Fatal("draining sole holder redirected into the void")
	}
}

func TestDirectorHopCap(t *testing.T) {
	d := newTestDirector(t, DirectorConfig{
		Self:      "A",
		Holders:   staticHolders(map[string][]topology.NodeID{"t": {"B"}}),
		Lookup:    staticLookup,
		FrontDoor: true,
	})
	if _, _, ok := d.Route("t", DefaultMaxHops-1); !ok {
		t.Fatal("no redirect just under the hop cap")
	}
	if _, _, ok := d.Route("t", DefaultMaxHops); ok {
		t.Fatal("redirected at the hop cap; must serve locally")
	}
}

func TestDirectorScoresLoadAndHealth(t *testing.T) {
	load := map[topology.NodeID]float64{"B": 0.9, "C": 0.5}
	health := map[topology.NodeID]float64{"B": 0.0, "C": 0.0}
	d := newTestDirector(t, DirectorConfig{
		Self:      "A",
		Holders:   staticHolders(map[string][]topology.NodeID{"t": {"B", "C"}}),
		Lookup:    staticLookup,
		FrontDoor: true,
		Load:      func(n topology.NodeID) float64 { return load[n] },
		Health:    func(n topology.NodeID) float64 { return health[n] },
	})
	if target, _, _ := d.Route("t", 0); target != "C" {
		t.Fatalf("redirect to %s, want the less-loaded C", target)
	}
	// A failing-health peer loses even at lower load (weight 2 per unit).
	health["C"] = 0.5
	if target, _, _ := d.Route("t", 0); target != "B" {
		t.Fatalf("redirect to %s, want B once C's health penalty dominates", target)
	}
}

func TestDirectorSkipsNonAliveMembers(t *testing.T) {
	members := []Member{
		{Node: "B", State: Suspect},
		{Node: "C", State: Alive},
	}
	d := newTestDirector(t, DirectorConfig{
		Self:      "A",
		Holders:   staticHolders(map[string][]topology.NodeID{"t": {"B", "C"}}),
		Lookup:    staticLookup,
		FrontDoor: true,
		Members:   func() []Member { return members },
	})
	if target, _, _ := d.Route("t", 0); target != "C" {
		t.Fatalf("redirect to %s, want C (B is suspect)", target)
	}
	members[1].State = Failed
	if _, _, ok := d.Route("t", 0); ok {
		t.Fatal("redirected with no alive holder; must serve locally")
	}
}
