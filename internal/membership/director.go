package membership

import (
	"errors"
	"sort"
	"sync/atomic"

	"dvod/internal/topology"
)

// DefaultMaxHops bounds a redirect chain: a watch request bounced this many
// times is served wherever it landed rather than bounced again, so redirect
// storms cannot strand a client.
const DefaultMaxHops = 3

// healthWeight scales the faults health score (a failure rate in [0, 1])
// against the broker load fraction when ranking redirect targets: a peer
// observed failing half its fetches should lose to a peer at half load.
const healthWeight = 2.0

// DirectorConfig assembles a Director.
type DirectorConfig struct {
	// Self is the node this director fronts. Required.
	Self topology.NodeID
	// Members returns the current membership view. Nil treats every holder
	// as Alive (a front door without the membership layer still balances on
	// placement, load, and health).
	Members func() []Member
	// Holders returns the catalog placement of a title. Required. The
	// director only iterates the returned slice, so a shared read-only
	// view (catalog.HoldersView) is safe and keeps the per-request
	// redirect path lock-free.
	Holders func(title string) ([]topology.NodeID, error)
	// Load returns a node's committed-load fraction (broker committed Mbps
	// over capacity, 0 when unknown). Nil scores every node 0.
	Load func(topology.NodeID) float64
	// Health returns a node's observed failure rate in [0, 1] (the faults
	// health scores). Nil scores every node 0.
	Health func(topology.NodeID) float64
	// Lookup resolves the redirect target to the dialable address the client
	// is handed. Required.
	Lookup func(topology.NodeID) (string, error)
	// MaxHops bounds the redirect chain; zero uses DefaultMaxHops.
	MaxHops int
	// FrontDoor enables redirecting for titles this node does not hold even
	// when healthy. When false the director only redirects while draining —
	// the compatibility mode where non-holders proxy remote clusters exactly
	// as before.
	FrontDoor bool
	// Resident reports whether a title is locally resident. Nil treats
	// catalog holdings as authoritative.
	Resident func(title string) bool
}

// Director decides, per watch request, whether this node should serve or
// hand the client a typed watch.redirect to a better-placed peer. It is the
// stateless front door: the decision reads only the current membership view,
// catalog placement, broker load, and health scores — no per-client state —
// so any node can answer any watch request.
type Director struct {
	cfg      DirectorConfig
	draining atomic.Bool
}

// NewDirector validates the configuration.
func NewDirector(cfg DirectorConfig) (*Director, error) {
	if cfg.Self == "" {
		return nil, errors.New("membership: director needs a self node")
	}
	if cfg.Holders == nil {
		return nil, errors.New("membership: director needs a holders source")
	}
	if cfg.Lookup == nil {
		return nil, errors.New("membership: director needs a lookup")
	}
	if cfg.MaxHops < 0 {
		return nil, errors.New("membership: negative max hops")
	}
	if cfg.MaxHops == 0 {
		cfg.MaxHops = DefaultMaxHops
	}
	return &Director{cfg: cfg}, nil
}

// SetDraining flips the drain flag: while set, every new watch is redirected
// (in-flight sessions finish normally), which is what makes a planned drain
// lose zero watches.
func (d *Director) SetDraining(v bool) { d.draining.Store(v) }

// Draining reports the drain flag.
func (d *Director) Draining() bool { return d.draining.Load() }

// MaxHops returns the configured redirect-chain bound.
func (d *Director) MaxHops() int { return d.cfg.MaxHops }

// Route implements the server's redirect hook: given a watch request for
// title that has already been redirected hops times, it returns the target
// node and address to bounce the client to, or ok=false when this node
// should serve the request itself.
//
// The decision: past the hop cap, always serve. Otherwise collect the
// title's holders that are Alive in the membership view (excluding self),
// rank them by broker-load fraction plus weighted health penalty (ties break
// on node ID for determinism), and redirect to the best one when this node
// is draining, or when the front door is enabled and the title is not
// resident here. A draining node with no live replica to point at serves the
// request itself — availability beats drain hygiene.
func (d *Director) Route(title string, hops int) (topology.NodeID, string, bool) {
	if hops >= d.cfg.MaxHops {
		return "", "", false
	}
	draining := d.draining.Load()
	if !draining && !d.cfg.FrontDoor {
		return "", "", false
	}
	if !draining && d.isResident(title) {
		return "", "", false
	}
	holders, err := d.cfg.Holders(title)
	if err != nil || len(holders) == 0 {
		return "", "", false
	}
	alive := d.aliveSet()
	type candidate struct {
		node  topology.NodeID
		score float64
	}
	var cands []candidate
	for _, h := range holders {
		if h == d.cfg.Self {
			continue
		}
		if alive != nil && !alive[h] {
			continue
		}
		score := 0.0
		if d.cfg.Load != nil {
			score += d.cfg.Load(h)
		}
		if d.cfg.Health != nil {
			score += healthWeight * d.cfg.Health(h)
		}
		cands = append(cands, candidate{node: h, score: score})
	}
	if len(cands) == 0 {
		return "", "", false
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score < cands[j].score
		}
		return cands[i].node < cands[j].node
	})
	for _, c := range cands {
		addr, err := d.cfg.Lookup(c.node)
		if err != nil || addr == "" {
			continue
		}
		return c.node, addr, true
	}
	return "", "", false
}

// isResident reports whether the title is served locally without a remote
// fetch: the cache's view when wired, else the catalog's.
func (d *Director) isResident(title string) bool {
	if d.cfg.Resident != nil {
		return d.cfg.Resident(title)
	}
	holders, err := d.cfg.Holders(title)
	if err != nil {
		return false
	}
	for _, h := range holders {
		if h == d.cfg.Self {
			return true
		}
	}
	return false
}

// aliveSet snapshots the membership view's Alive nodes; nil means no view is
// wired and every holder counts.
func (d *Director) aliveSet() map[topology.NodeID]bool {
	if d.cfg.Members == nil {
		return nil
	}
	out := make(map[topology.NodeID]bool)
	for _, m := range d.cfg.Members() {
		if m.State == Alive {
			out[m.Node] = true
		}
	}
	return out
}
