package membership

import (
	"errors"
	"net"
	"testing"
	"time"

	"dvod/internal/clock"
	"dvod/internal/metrics"
	"dvod/internal/topology"
	"dvod/internal/transport"
)

// serveMember answers exchanges against the target tracker over an
// in-memory pipe, mirroring the server's membership surface: hello
// negotiation, member.sync in JSON or binary, and member.ping-req answered
// from the reachable predicate.
func serveMember(target *Tracker, reachable func(topology.NodeID) bool) func(topology.NodeID, string) (*transport.Conn, error) {
	return func(topology.NodeID, string) (*transport.Conn, error) {
		cp, sp := net.Pipe()
		client, server := transport.NewConn(cp), transport.NewConn(sp)
		go func() {
			defer server.Close()
			for {
				m, f, err := server.ReadFrameOrMessage(nil)
				if err != nil {
					return
				}
				if f != nil {
					if f.Type != transport.FrameMemberSync {
						f.Release()
						return
					}
					req, derr := transport.DecodeMemberSyncFrame(f)
					f.Release()
					if derr != nil {
						return
					}
					if server.WriteMemberSyncFrame(target.HandleSync(req), true) != nil {
						return
					}
					continue
				}
				switch m.Type {
				case transport.TypeHello:
					if server.AcceptHello(m) != nil {
						return
					}
				case transport.TypeMemberSync:
					req, derr := transport.Decode[transport.MemberSyncPayload](m)
					if derr != nil {
						return
					}
					reply, eerr := transport.Encode(transport.TypeMemberSyncOK, target.HandleSync(req))
					if eerr != nil || server.WriteMessage(reply) != nil {
						return
					}
				case transport.TypeMemberPingReq:
					req, derr := transport.Decode[transport.MemberPingReqPayload](m)
					if derr != nil {
						return
					}
					ok := reachable == nil || reachable(req.Target)
					reply, eerr := transport.Encode(transport.TypeMemberPingAck,
						transport.MemberPingAckPayload{Target: req.Target, OK: ok})
					if eerr != nil || server.WriteMessage(reply) != nil {
						return
					}
				default:
					return
				}
			}
		}()
		return client, nil
	}
}

// TestGossiperConvergesAndDetects runs a three-node fleet over in-memory
// pipes: steady rounds keep everyone alive, and a killed node is marked
// failed by the survivors — via the full direct-then-indirect probe path —
// within the round-counted windows.
func TestGossiperConvergesAndDetects(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	nodes := []topology.NodeID{"A", "B", "C"}
	trackers := map[topology.NodeID]*Tracker{}
	regs := map[topology.NodeID]*metrics.Registry{}
	for _, n := range nodes {
		reg := metrics.NewRegistry()
		tr, err := New(Config{Self: n, Seeds: nodes, Metrics: reg})
		if err != nil {
			t.Fatalf("tracker %s: %v", n, err)
		}
		trackers[n] = tr
		regs[n] = reg
	}
	alive := map[topology.NodeID]bool{"A": true, "B": true, "C": true}
	gossipers := map[topology.NodeID]*Gossiper{}
	for _, n := range nodes {
		tr := trackers[n]
		g, err := NewGossiper(GossipConfig{
			Tracker: tr,
			Lookup:  func(p topology.NodeID) (string, error) { return "mem", nil },
			Dial: func(peer topology.NodeID, _ string) (*transport.Conn, error) {
				if !alive[peer] {
					return nil, errors.New("connection refused")
				}
				return serveMember(trackers[peer], func(target topology.NodeID) bool {
					return alive[target]
				})(peer, "mem")
			},
			Clock: clk,
		})
		if err != nil {
			t.Fatalf("gossiper %s: %v", n, err)
		}
		gossipers[n] = g
	}
	round := func() {
		for _, n := range nodes {
			if alive[n] {
				gossipers[n].RunOnce()
			}
		}
	}
	for i := 0; i < 3; i++ {
		round()
	}
	for _, n := range nodes {
		for _, m := range nodes {
			if got := stateOf(t, trackers[n], m); got != Alive {
				t.Fatalf("%s sees %s as %v after steady rounds, want alive", n, m, got)
			}
		}
	}
	// The steady rounds ran over the negotiated binary framing, and both
	// byte directions were accounted.
	if regs["A"].Counter("membership.bytes_out").Value() == 0 ||
		regs["A"].Counter("membership.bytes_in").Value() == 0 {
		t.Fatal("exchange byte counters never moved")
	}

	// Kill C: its gossiper stops and dials toward it refuse. Survivors
	// accumulate direct failures, fail the indirect probe through the other
	// survivor, and mark C suspect then failed inside the default windows.
	alive["C"] = false
	for i := 0; i < DefaultFailRounds; i++ {
		round()
	}
	for _, n := range []topology.NodeID{"A", "B"} {
		if got := stateOf(t, trackers[n], "C"); got != Failed {
			t.Fatalf("%s sees C as %v after kill, want failed", n, got)
		}
	}
	if got := trackers["A"].Alive(); len(got) != 2 {
		t.Fatalf("A's alive set %v, want 2 members", got)
	}
	// The verdicts went through the indirect probe, not straight to suspect.
	probed := regs["A"].Counter("membership.indirect_probes").Value() +
		regs["B"].Counter("membership.indirect_probes").Value()
	if probed == 0 {
		t.Fatal("no indirect probes ran before the fail verdicts")
	}
}

// TestGossiperLegacyJSONFallback pins the mixed-fleet path: against a server
// that never grants the member-sync capability, the exchange stays on JSON
// and still converges.
func TestGossiperLegacyJSONFallback(t *testing.T) {
	a := newTestTracker(t, "A", "B")
	b := newTestTracker(t, "B", "A")
	b.SetLocalState(Draining)
	legacyDial := func(topology.NodeID, string) (*transport.Conn, error) {
		cp, sp := net.Pipe()
		client, server := transport.NewConn(cp), transport.NewConn(sp)
		go func() {
			defer server.Close()
			for {
				m, err := server.ReadMessage()
				if err != nil {
					return
				}
				switch m.Type {
				case transport.TypeHello:
					// An old server: hellos bounce with an error, which the
					// client treats as "stay on JSON".
					reply, _ := transport.Encode(transport.TypeError, transport.ErrorPayload{Message: "unknown type"})
					if server.WriteMessage(reply) != nil {
						return
					}
				case transport.TypeMemberSync:
					req, derr := transport.Decode[transport.MemberSyncPayload](m)
					if derr != nil {
						return
					}
					reply, eerr := transport.Encode(transport.TypeMemberSyncOK, b.HandleSync(req))
					if eerr != nil || server.WriteMessage(reply) != nil {
						return
					}
				default:
					return
				}
			}
		}()
		return client, nil
	}
	g, err := NewGossiper(GossipConfig{
		Tracker: a,
		Lookup:  func(topology.NodeID) (string, error) { return "mem", nil },
		Dial:    legacyDial,
		Clock:   clock.NewVirtual(time.Unix(0, 0)),
	})
	if err != nil {
		t.Fatalf("gossiper: %v", err)
	}
	g.RunOnce()
	if got := stateOf(t, a, "B"); got != Draining {
		t.Fatalf("B %v on A after a JSON-fallback exchange, want draining", got)
	}
}

// TestStalledPeersDoNotStackOnCadence pins the concurrent-exchange satellite:
// a round facing several stalled peers costs one exchange timeout, not one
// per peer — the failure mode of the old serial loop, where each dead peer
// added its full timeout to the round.
func TestStalledPeersDoNotStackOnCadence(t *testing.T) {
	const timeout = 150 * time.Millisecond
	tr := newTestTracker(t, "A", "B", "C", "D")
	stalledDial := func(topology.NodeID, string) (*transport.Conn, error) {
		cp, _ := net.Pipe()
		// No server goroutine: the hello write blocks until the read
		// deadline fires, like a peer that accepted and went silent.
		return transport.NewConn(cp), nil
	}
	g, err := NewGossiper(GossipConfig{
		Tracker:         tr,
		Fanout:          3,
		ExchangeTimeout: timeout,
		Lookup:          func(topology.NodeID) (string, error) { return "mem", nil },
		Dial:            stalledDial,
		Clock:           clock.NewVirtual(time.Unix(0, 0)),
	})
	if err != nil {
		t.Fatalf("gossiper: %v", err)
	}
	start := time.Now()
	g.RunOnce()
	elapsed := time.Since(start)
	// Three stalled exchanges serially would cost ≥ 3×timeout (450ms);
	// concurrently they overlap into roughly one timeout. The bound leaves
	// slack for scheduler noise while still ruling out serial stacking.
	if elapsed >= 2*timeout {
		t.Fatalf("round with 3 stalled peers took %v, want ≈ one %v timeout (exchanges must overlap)", elapsed, timeout)
	}
	// And the failures were charged to the detector.
	for _, n := range []topology.NodeID{"B", "C", "D"} {
		tr.mu.Lock()
		p := tr.pending[n]
		tr.mu.Unlock()
		if p == 0 {
			t.Fatalf("stalled peer %s has no pending failure evidence", n)
		}
	}
}
