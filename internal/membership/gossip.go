package membership

import (
	"fmt"
	"sync"
	"time"

	"dvod/internal/clock"
	"dvod/internal/metrics"
	"dvod/internal/topology"
	"dvod/internal/transport"
)

// DefaultGossipInterval matches the ledger gossiper's cadence so the two
// layers stay interval-aligned: one round of each per tick, and the
// round-counted failure detector's windows translate to the same wall time
// the ledger's lease arithmetic assumes.
const DefaultGossipInterval = 250 * time.Millisecond

// DefaultFanout is the rumor-mongering width: how many peers one round
// pushes-pulls with. Two keeps dissemination O(log N) rounds without the
// O(N) per-round cost of flooding.
const DefaultFanout = 2

// DefaultExchangeTimeout bounds one exchange's socket I/O. A stalled peer
// costs at most this much wall time per round — and since exchanges run
// concurrently within a round, several stalled peers still cost one timeout,
// not one each.
const DefaultExchangeTimeout = 2 * time.Second

// GossipConfig assembles a Gossiper.
type GossipConfig struct {
	// Tracker is the view this gossiper disseminates. Required.
	Tracker *Tracker
	// Peers optionally restricts the dialable peer set: when non-nil, the
	// contact plan rotates only over members it returns (see
	// Tracker.PlanContactsWithin). Nil (the usual choice) lets the tracker
	// plan over every known live member plus detection retries and
	// Failed-member redials.
	Peers func() []topology.NodeID
	// Lookup resolves a peer to a dialable address. Required.
	Lookup func(topology.NodeID) (string, error)
	// Dial opens a connection to peer at addr. Nil uses transport.Dial; the
	// facade injects a fault-wrapped dialer so partitions cut membership
	// gossip exactly like they cut the delivery plane.
	Dial func(peer topology.NodeID, addr string) (*transport.Conn, error)
	// Interval is the gossip cadence. Zero uses DefaultGossipInterval.
	Interval time.Duration
	// Fanout is how many rotation peers each round exchanges with. Zero uses
	// DefaultFanout. (Detection retries and due Failed-member redials ride
	// on top; see Tracker.PlanContacts.)
	Fanout int
	// ExchangeTimeout bounds one exchange's or indirect probe's socket I/O.
	// Zero uses DefaultExchangeTimeout.
	ExchangeTimeout time.Duration
	// Clock paces rounds; nil is wall time.
	Clock clock.Clock
	// Metrics receives membership.gossip_rounds / gossip_errors /
	// bytes_out / bytes_in; nil falls back to the tracker's registry.
	Metrics *metrics.Registry
}

// Gossiper disseminates the membership view: every interval it beats the
// tracker's failure detector, push-pulls deltas with this round's contact
// plan (all exchanges concurrently, so a stalled peer costs one timeout, not
// the round), and runs any indirect probes the detector requests before a
// Suspect verdict.
type Gossiper struct {
	cfg GossipConfig

	// runMu serializes rounds: the background loop and direct RunOnce
	// callers (deterministic tests) may overlap.
	runMu sync.Mutex

	mu      sync.Mutex
	stop    chan struct{}
	done    chan struct{}
	started bool
}

// NewGossiper validates the configuration and builds a gossiper.
func NewGossiper(cfg GossipConfig) (*Gossiper, error) {
	if cfg.Tracker == nil {
		return nil, fmt.Errorf("membership: gossiper needs a tracker")
	}
	if cfg.Lookup == nil {
		return nil, fmt.Errorf("membership: gossiper needs a lookup")
	}
	if cfg.Interval < 0 {
		return nil, fmt.Errorf("membership: negative gossip interval %v", cfg.Interval)
	}
	if cfg.Interval == 0 {
		cfg.Interval = DefaultGossipInterval
	}
	if cfg.Fanout < 0 {
		return nil, fmt.Errorf("membership: negative fanout %d", cfg.Fanout)
	}
	if cfg.Fanout == 0 {
		cfg.Fanout = DefaultFanout
	}
	if cfg.ExchangeTimeout < 0 {
		return nil, fmt.Errorf("membership: negative exchange timeout %v", cfg.ExchangeTimeout)
	}
	if cfg.ExchangeTimeout == 0 {
		cfg.ExchangeTimeout = DefaultExchangeTimeout
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Wall{}
	}
	if cfg.Metrics == nil {
		cfg.Metrics = cfg.Tracker.reg
	}
	if cfg.Dial == nil {
		cfg.Dial = func(_ topology.NodeID, addr string) (*transport.Conn, error) {
			return transport.Dial(addr)
		}
	}
	return &Gossiper{cfg: cfg}, nil
}

// Interval returns the configured gossip cadence.
func (g *Gossiper) Interval() time.Duration { return g.cfg.Interval }

// Start launches the background loop. Safe to call once.
func (g *Gossiper) Start() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.started {
		return
	}
	g.started = true
	g.stop = make(chan struct{})
	g.done = make(chan struct{})
	go g.loop(g.stop, g.done)
}

// Stop halts the loop and waits for it to exit. Safe to call repeatedly.
func (g *Gossiper) Stop() {
	g.mu.Lock()
	if !g.started {
		g.mu.Unlock()
		return
	}
	g.started = false
	stop, done := g.stop, g.done
	g.mu.Unlock()
	close(stop)
	<-done
}

func (g *Gossiper) loop(stop, done chan struct{}) {
	defer close(done)
	for {
		select {
		case <-stop:
			return
		case <-g.cfg.Clock.After(g.cfg.Interval):
		}
		g.RunOnce()
	}
}

// RunOnce executes one gossip round synchronously: beat the failure
// detector, exchange deltas with the tracker's contact plan (concurrently —
// the round's wall cost is the slowest peer, not the sum), then resolve any
// indirect probes the detector queued. Tests drive convergence
// deterministically by calling it directly instead of Start.
func (g *Gossiper) RunOnce() {
	g.runMu.Lock()
	defer g.runMu.Unlock()
	tr := g.cfg.Tracker
	tr.Beat()
	g.cfg.Metrics.Counter("membership.gossip_rounds").Inc()
	// The peer restriction goes into the planner, not over its output:
	// filtering afterwards would burn rotation slots on undialable members
	// and starve the fair cadence once the view outgrows the dialable set.
	var allowed func(topology.NodeID) bool
	if g.cfg.Peers != nil {
		set := make(map[topology.NodeID]bool)
		for _, p := range g.cfg.Peers() {
			set[p] = true
		}
		allowed = func(n topology.NodeID) bool { return set[n] }
	}
	plan := tr.PlanContactsWithin(g.cfg.Fanout, allowed)
	var wg sync.WaitGroup
	for _, peer := range plan {
		wg.Add(1)
		go func(peer topology.NodeID) {
			defer wg.Done()
			if err := g.exchange(peer); err != nil {
				g.cfg.Metrics.Counter("membership.gossip_errors").Inc()
				tr.ReportContactFailed(peer)
			}
		}(peer)
	}
	wg.Wait()
	probes := tr.StartProbes()
	var pwg sync.WaitGroup
	for _, p := range probes {
		pwg.Add(1)
		go func(p Probe) {
			defer pwg.Done()
			ok := false
			for _, h := range p.Helpers {
				if g.pingReq(h, p.Target) == nil {
					ok = true
					break
				}
			}
			tr.ReportIndirect(p.Target, ok)
		}(p)
	}
	pwg.Wait()
}

// exchange performs one push-pull delta exchange with peer over a fresh
// connection: negotiate the binary framing, send our unacknowledged rows,
// merge the reply. Success doubles as liveness evidence for the peer (via
// MergeReply); the caller charges failures to the failure detector.
func (g *Gossiper) exchange(peer topology.NodeID) error {
	addr, err := g.cfg.Lookup(peer)
	if err != nil {
		return fmt.Errorf("lookup %s: %w", peer, err)
	}
	conn, err := g.cfg.Dial(peer, addr)
	if err != nil {
		return fmt.Errorf("dial %s: %w", peer, err)
	}
	defer conn.Close()
	// Wall time deliberately: the deadline guards a real socket even when
	// the gossip cadence runs on a virtual clock. Both directions are
	// bounded — a silent peer can stall writes as well as reads.
	conn.SetDeadline(time.Now().Add(g.cfg.ExchangeTimeout))
	granted, err := conn.NegotiateCaps(transport.CapMemberSync, transport.CapClusterFrames)
	if err != nil {
		return fmt.Errorf("negotiate with %s: %w", peer, err)
	}
	req := g.cfg.Tracker.SyncFor(peer)
	binary := granted[transport.CapMemberSync] && granted[transport.CapClusterFrames]
	if binary {
		enc, err := transport.AppendMemberSyncPayload(nil, req)
		if err != nil {
			return fmt.Errorf("encode sync for %s: %w", peer, err)
		}
		g.cfg.Metrics.Counter("membership.bytes_out").Add(int64(len(enc) + transport.FrameHeaderLen))
		if err := conn.WriteMemberSyncFrame(req, false); err != nil {
			return fmt.Errorf("send sync to %s: %w", peer, err)
		}
	} else {
		m, err := transport.Encode(transport.TypeMemberSync, req)
		if err != nil {
			return fmt.Errorf("encode sync for %s: %w", peer, err)
		}
		g.cfg.Metrics.Counter("membership.bytes_out").Add(int64(len(m.Payload)))
		if err := conn.WriteMessage(m); err != nil {
			return fmt.Errorf("send sync to %s: %w", peer, err)
		}
	}
	m, f, err := conn.ReadFrameOrMessage(nil)
	if err != nil {
		return fmt.Errorf("read reply from %s: %w", peer, err)
	}
	var reply transport.MemberSyncPayload
	if f != nil {
		defer f.Release()
		if f.Type != transport.FrameMemberSync {
			return fmt.Errorf("reply from %s: unexpected frame 0x%02x", peer, f.Type)
		}
		g.cfg.Metrics.Counter("membership.bytes_in").Add(int64(len(f.Payload) + transport.FrameHeaderLen))
		reply, err = transport.DecodeMemberSyncFrame(f)
		if err != nil {
			return fmt.Errorf("reply from %s: %w", peer, err)
		}
	} else {
		if m.Type == transport.TypeError {
			return fmt.Errorf("reply from %s: remote error", peer)
		}
		if m.Type != transport.TypeMemberSyncOK {
			return fmt.Errorf("reply from %s: unexpected %q", peer, m.Type)
		}
		g.cfg.Metrics.Counter("membership.bytes_in").Add(int64(len(m.Payload)))
		reply, err = transport.Decode[transport.MemberSyncPayload](m)
		if err != nil {
			return fmt.Errorf("reply from %s: %w", peer, err)
		}
	}
	g.cfg.Tracker.MergeReply(peer, reply)
	return nil
}

// pingReq asks helper to probe target on our behalf (member.ping-req): the
// indirect leg of the failure detector. Returns nil only when the helper
// answered and reported the target reachable.
func (g *Gossiper) pingReq(helper, target topology.NodeID) error {
	haddr, err := g.cfg.Lookup(helper)
	if err != nil {
		return fmt.Errorf("lookup helper %s: %w", helper, err)
	}
	// Resolve the target's address for the helper; best effort — the helper
	// can resolve it from its own address book when omitted.
	taddr, _ := g.cfg.Lookup(target)
	conn, err := g.cfg.Dial(helper, haddr)
	if err != nil {
		return fmt.Errorf("dial helper %s: %w", helper, err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(g.cfg.ExchangeTimeout))
	m, err := transport.Encode(transport.TypeMemberPingReq, transport.MemberPingReqPayload{
		From:   g.cfg.Tracker.Self(),
		Target: target,
		Addr:   taddr,
	})
	if err != nil {
		return fmt.Errorf("encode ping-req for %s: %w", helper, err)
	}
	g.cfg.Metrics.Counter("membership.bytes_out").Add(int64(len(m.Payload)))
	if err := conn.WriteMessage(m); err != nil {
		return fmt.Errorf("send ping-req to %s: %w", helper, err)
	}
	reply, err := conn.ReadMessage()
	if err != nil {
		return fmt.Errorf("read ping-ack from %s: %w", helper, err)
	}
	if reply.Type != transport.TypeMemberPingAck {
		return fmt.Errorf("reply from %s: unexpected %q", helper, reply.Type)
	}
	g.cfg.Metrics.Counter("membership.bytes_in").Add(int64(len(reply.Payload)))
	ack, err := transport.Decode[transport.MemberPingAckPayload](reply)
	if err != nil {
		return fmt.Errorf("ping-ack from %s: %w", helper, err)
	}
	if !ack.OK {
		return fmt.Errorf("helper %s could not reach %s", helper, target)
	}
	return nil
}
