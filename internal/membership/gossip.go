package membership

import (
	"fmt"
	"sync"
	"time"

	"dvod/internal/clock"
	"dvod/internal/metrics"
	"dvod/internal/topology"
	"dvod/internal/transport"
)

// DefaultGossipInterval matches the ledger gossiper's cadence so the two
// layers stay interval-aligned: one round of each per tick, and the
// round-counted failure detector's windows translate to the same wall time
// the ledger's lease arithmetic assumes.
const DefaultGossipInterval = 250 * time.Millisecond

// DefaultFanout is the rumor-mongering width: how many peers one round
// pushes-pulls with. Two keeps dissemination O(log N) rounds without the
// O(N) per-round cost of flooding.
const DefaultFanout = 2

// GossipConfig assembles a Gossiper.
type GossipConfig struct {
	// Tracker is the view this gossiper disseminates. Required.
	Tracker *Tracker
	// Peers returns the current gossip targets. Nil uses the tracker's own
	// GossipPeers (everyone known, not failed or left) — the usual choice,
	// which makes the peer set itself elastic.
	Peers func() []topology.NodeID
	// Lookup resolves a peer to a dialable address. Required.
	Lookup func(topology.NodeID) (string, error)
	// Dial opens a connection to peer at addr. Nil uses transport.Dial; the
	// facade injects a fault-wrapped dialer so partitions cut membership
	// gossip exactly like they cut the delivery plane.
	Dial func(peer topology.NodeID, addr string) (*transport.Conn, error)
	// Interval is the gossip cadence. Zero uses DefaultGossipInterval.
	Interval time.Duration
	// Fanout is how many peers each round exchanges with. Zero uses
	// DefaultFanout.
	Fanout int
	// Clock paces rounds; nil is wall time.
	Clock clock.Clock
	// Metrics receives membership.gossip_rounds / membership.gossip_errors;
	// nil falls back to the tracker's registry.
	Metrics *metrics.Registry
}

// Gossiper disseminates the membership view: every interval it beats the
// tracker (advancing the heartbeat and the failure detector) and push-pulls
// the full view with the next Fanout peers in round-robin order over the
// member list.
type Gossiper struct {
	cfg GossipConfig

	// runMu serializes rounds: the background loop and direct RunOnce
	// callers (deterministic tests) may overlap.
	runMu sync.Mutex
	next  int

	mu      sync.Mutex
	stop    chan struct{}
	done    chan struct{}
	started bool
}

// NewGossiper validates the configuration and builds a gossiper.
func NewGossiper(cfg GossipConfig) (*Gossiper, error) {
	if cfg.Tracker == nil {
		return nil, fmt.Errorf("membership: gossiper needs a tracker")
	}
	if cfg.Lookup == nil {
		return nil, fmt.Errorf("membership: gossiper needs a lookup")
	}
	if cfg.Interval < 0 {
		return nil, fmt.Errorf("membership: negative gossip interval %v", cfg.Interval)
	}
	if cfg.Interval == 0 {
		cfg.Interval = DefaultGossipInterval
	}
	if cfg.Fanout < 0 {
		return nil, fmt.Errorf("membership: negative fanout %d", cfg.Fanout)
	}
	if cfg.Fanout == 0 {
		cfg.Fanout = DefaultFanout
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Wall{}
	}
	if cfg.Metrics == nil {
		cfg.Metrics = cfg.Tracker.reg
	}
	if cfg.Peers == nil {
		cfg.Peers = cfg.Tracker.GossipPeers
	}
	if cfg.Dial == nil {
		cfg.Dial = func(_ topology.NodeID, addr string) (*transport.Conn, error) {
			return transport.Dial(addr)
		}
	}
	return &Gossiper{cfg: cfg}, nil
}

// Interval returns the configured gossip cadence.
func (g *Gossiper) Interval() time.Duration { return g.cfg.Interval }

// Start launches the background loop. Safe to call once.
func (g *Gossiper) Start() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.started {
		return
	}
	g.started = true
	g.stop = make(chan struct{})
	g.done = make(chan struct{})
	go g.loop(g.stop, g.done)
}

// Stop halts the loop and waits for it to exit. Safe to call repeatedly.
func (g *Gossiper) Stop() {
	g.mu.Lock()
	if !g.started {
		g.mu.Unlock()
		return
	}
	g.started = false
	stop, done := g.stop, g.done
	g.mu.Unlock()
	close(stop)
	<-done
}

func (g *Gossiper) loop(stop, done chan struct{}) {
	defer close(done)
	for {
		select {
		case <-stop:
			return
		case <-g.cfg.Clock.After(g.cfg.Interval):
		}
		g.RunOnce()
	}
}

// RunOnce executes one gossip round synchronously: beat the failure
// detector, then exchange views with the next Fanout peers (round-robin over
// the sorted current peer set). Tests drive convergence deterministically by
// calling it directly instead of Start.
func (g *Gossiper) RunOnce() {
	g.runMu.Lock()
	defer g.runMu.Unlock()
	g.cfg.Tracker.Beat()
	g.cfg.Metrics.Counter("membership.gossip_rounds").Inc()
	peers := g.cfg.Peers()
	if len(peers) == 0 {
		return
	}
	fanout := g.cfg.Fanout
	if fanout > len(peers) {
		fanout = len(peers)
	}
	for i := 0; i < fanout; i++ {
		peer := peers[g.next%len(peers)]
		g.next++
		if err := g.exchange(peer); err != nil {
			g.cfg.Metrics.Counter("membership.gossip_errors").Inc()
		}
	}
}

// exchange performs one push-pull view exchange with peer over a fresh
// connection: member.sync out, member.sync.ok back, merge the reply.
func (g *Gossiper) exchange(peer topology.NodeID) error {
	addr, err := g.cfg.Lookup(peer)
	if err != nil {
		return fmt.Errorf("lookup %s: %w", peer, err)
	}
	conn, err := g.cfg.Dial(peer, addr)
	if err != nil {
		return fmt.Errorf("dial %s: %w", peer, err)
	}
	defer conn.Close()
	// Wall time deliberately: the deadline guards a real socket even when
	// the gossip cadence runs on a virtual clock.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	m, err := transport.Encode(transport.TypeMemberSync, g.cfg.Tracker.Sync())
	if err != nil {
		return fmt.Errorf("encode sync for %s: %w", peer, err)
	}
	if err := conn.WriteMessage(m); err != nil {
		return fmt.Errorf("send sync to %s: %w", peer, err)
	}
	reply, err := conn.ReadMessage()
	if err != nil {
		return fmt.Errorf("read reply from %s: %w", peer, err)
	}
	if reply.Type == transport.TypeError {
		return fmt.Errorf("reply from %s: remote error", peer)
	}
	if reply.Type != transport.TypeMemberSyncOK {
		return fmt.Errorf("reply from %s: unexpected %q", peer, reply.Type)
	}
	view, err := transport.Decode[transport.MemberSyncPayload](reply)
	if err != nil {
		return fmt.Errorf("reply from %s: %w", peer, err)
	}
	g.cfg.Tracker.Merge(view)
	return nil
}
