package merge_test

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dvod/internal/merge"
	"dvod/internal/metrics"
	"dvod/internal/transport"
)

const clusterBytes = 4096 // matches a pool size class, so Put is accepted

// gatedSource returns a Source that blocks on gate (when non-nil) before each
// read, counts reads, and leases real pool buffers stamped with the cluster
// index so receivers can check ordering and content sharing.
func gatedSource(pool *transport.BufferPool, reads *atomic.Int64, gate <-chan struct{}) merge.Source {
	return func(index int) (*transport.Frame, transport.ClusterPayload, error) {
		if gate != nil {
			<-gate
		}
		reads.Add(1)
		buf := pool.Get(clusterBytes)
		buf[0] = byte(index)
		f := transport.NewLeasedFrame(pool, buf)
		return f, transport.ClusterPayload{
			Title:  "hot-title",
			Index:  index,
			Offset: int64(index) * clusterBytes,
			Length: clusterBytes,
		}, nil
	}
}

// drain consumes the subscriber until its queue closes, returning the cluster
// indices received in order.
func drain(t *testing.T, s *merge.Sub) []int {
	t.Helper()
	var got []int
	for {
		item, ok := s.Recv()
		if !ok {
			return got
		}
		if item.Frame.Payload[0] != byte(item.Payload.Index) {
			t.Errorf("cluster %d carries payload stamped %d", item.Payload.Index, item.Frame.Payload[0])
		}
		got = append(got, item.Payload.Index)
		item.Frame.Release()
	}
}

func wantRange(t *testing.T, got []int, from, to int) {
	t.Helper()
	if len(got) != to-from {
		t.Fatalf("received %d clusters, want %d (range [%d,%d))", len(got), to-from, from, to)
	}
	for i, idx := range got {
		if idx != from+i {
			t.Fatalf("cluster %d arrived at position %d, want %d", idx, i, from+i)
		}
	}
}

func waitCohorts(t *testing.T, r *merge.Registry, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for r.ActiveCohorts() != want {
		if time.Now().After(deadline) {
			t.Fatalf("ActiveCohorts = %d, want %d", r.ActiveCohorts(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestMergeFanoutSingleRead(t *testing.T) {
	const watchers, clusters = 4, 32
	mreg := metrics.NewRegistry()
	// QueueDepth covers the whole title so no queue ever fills and every
	// watcher is guaranteed the complete stream via broadcast.
	r, err := merge.NewRegistry(merge.Config{Window: 8, QueueDepth: clusters * 2, Metrics: mreg})
	if err != nil {
		t.Fatal(err)
	}
	pool := transport.NewBufferPool(nil)
	var reads atomic.Int64
	gate := make(chan struct{})
	src := gatedSource(pool, &reads, gate)

	// The gate holds the pump at cluster 0 while all watchers join, so every
	// session lands in one cohort at position 0.
	subs := make([]*merge.Sub, watchers)
	for i := range subs {
		if subs[i], err = r.Join("hot-title", clusters, 0, src); err != nil {
			t.Fatal(err)
		}
	}
	if subs[0].CohortID() != subs[watchers-1].CohortID() {
		t.Fatalf("watchers split across cohorts %d and %d", subs[0].CohortID(), subs[watchers-1].CohortID())
	}
	if !subs[0].Created() || subs[1].Created() {
		t.Fatalf("Created() = %v/%v, want true for the first join only", subs[0].Created(), subs[1].Created())
	}
	close(gate)

	var wg sync.WaitGroup
	received := make([][]int, watchers)
	for i, s := range subs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			received[i] = drain(t, s)
		}()
	}
	wg.Wait()
	for i := range received {
		wantRange(t, received[i], 0, clusters)
	}
	if got := reads.Load(); got != clusters {
		t.Fatalf("source reads = %d, want %d (one per cluster, not per watcher)", got, clusters)
	}
	snap := mreg.Snapshot()
	if got := snap.Counters["merge.sessions_merged"]; got != watchers-1 {
		t.Fatalf("merge.sessions_merged = %d, want %d", got, watchers-1)
	}
	if got := snap.Counters["merge.disk_reads_saved"]; got != (watchers-1)*clusters {
		t.Fatalf("merge.disk_reads_saved = %d, want %d", got, (watchers-1)*clusters)
	}
	if got := snap.Counters["merge.bytes_saved"]; got != (watchers-1)*clusters*clusterBytes {
		t.Fatalf("merge.bytes_saved = %d, want %d", got, (watchers-1)*clusters*clusterBytes)
	}
	waitCohorts(t, r, 0)
}

func TestMergePatchAndForwardJoins(t *testing.T) {
	const clusters = 32
	r, err := merge.NewRegistry(merge.Config{Window: 16})
	if err != nil {
		t.Fatal(err)
	}
	pool := transport.NewBufferPool(nil)
	var reads atomic.Int64
	gate := make(chan struct{}, clusters)
	src := gatedSource(pool, &reads, gate)

	base, err := r.Join("hot-title", clusters, 0, src)
	if err != nil {
		t.Fatal(err)
	}
	// Let exactly five reads through and consume them, so the cohort is
	// parked at position 5 with the pump blocked on read 5.
	for i := 0; i < 5; i++ {
		gate <- struct{}{}
		item, ok := base.Recv()
		if !ok {
			t.Fatal("base stream ended early")
		}
		item.Frame.Release()
	}
	for reads.Load() < 5 {
		time.Sleep(time.Millisecond)
	}

	patch, err := r.Join("hot-title", clusters, 2, src)
	if err != nil {
		t.Fatal(err)
	}
	if patch.Start() != 5 {
		t.Fatalf("patch joiner Start() = %d, want cohort position 5", patch.Start())
	}
	if patch.Created() {
		t.Fatal("patch joiner reports Created()")
	}
	forward, err := r.Join("hot-title", clusters, 9, src)
	if err != nil {
		t.Fatal(err)
	}
	if forward.Start() != 9 {
		t.Fatalf("forward joiner Start() = %d, want its own start 9", forward.Start())
	}
	if patch.CohortID() != base.CohortID() || forward.CohortID() != base.CohortID() {
		t.Fatal("joiners did not share the base cohort")
	}

	for i := 5; i < clusters; i++ {
		gate <- struct{}{}
	}
	var wg sync.WaitGroup
	var baseGot, patchGot, forwardGot []int
	for _, pair := range []struct {
		s   *merge.Sub
		out *[]int
	}{{base, &baseGot}, {patch, &patchGot}, {forward, &forwardGot}} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			*pair.out = drain(t, pair.s)
		}()
	}
	wg.Wait()
	wantRange(t, baseGot, 5, clusters)
	wantRange(t, patchGot, 5, clusters)
	wantRange(t, forwardGot, 9, clusters)
	if got := reads.Load(); got != clusters {
		t.Fatalf("source reads = %d, want %d", got, clusters)
	}
}

func TestMergeOutOfWindowStartsNewCohort(t *testing.T) {
	const clusters = 64
	r, err := merge.NewRegistry(merge.Config{Window: 4})
	if err != nil {
		t.Fatal(err)
	}
	pool := transport.NewBufferPool(nil)
	var reads atomic.Int64
	// Both cohorts read through this gate; capacity covers every token so
	// the fills below never block on pump back-pressure.
	gate := make(chan struct{}, 2*clusters)
	src := gatedSource(pool, &reads, gate)

	a, err := r.Join("hot-title", clusters, 0, src)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Join("hot-title", clusters, 20, src)
	if err != nil {
		t.Fatal(err)
	}
	if a.CohortID() == b.CohortID() {
		t.Fatal("join 20 clusters ahead merged into a window-4 cohort")
	}
	if got := r.ActiveCohorts(); got != 2 {
		t.Fatalf("ActiveCohorts = %d, want 2", got)
	}
	if !b.Created() {
		t.Fatal("out-of-window joiner should open its own cohort")
	}
	for i := 0; i < 2*clusters; i++ {
		gate <- struct{}{}
	}
	wantRange(t, drain(t, a), 0, clusters)
	wantRange(t, drain(t, b), 20, clusters)
	waitCohorts(t, r, 0)
}

func TestMergeSlowSubscriberEvicted(t *testing.T) {
	const clusters = 32
	r, err := merge.NewRegistry(merge.Config{Window: 8, QueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	pool := transport.NewBufferPool(nil)
	var reads atomic.Int64
	gate := make(chan struct{})
	src := gatedSource(pool, &reads, gate)

	fast, err := r.Join("hot-title", clusters, 0, src)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := r.Join("hot-title", clusters, 0, src)
	if err != nil {
		t.Fatal(err)
	}
	close(gate)

	fastGot := drain(t, fast) // never stalls, so the cohort keeps moving
	wantRange(t, fastGot, 0, clusters)
	if fast.Evicted() {
		t.Fatal("fast subscriber was evicted")
	}

	slowGot := drain(t, slow) // only what was queued before eviction
	if !slow.Evicted() {
		t.Fatal("stalled subscriber was not evicted")
	}
	if len(slowGot) >= clusters {
		t.Fatalf("evicted subscriber received the full stream (%d clusters)", len(slowGot))
	}
	// The queued prefix must still be gapless so the handler can fall back to
	// unicast from exactly len(slowGot).
	wantRange(t, slowGot, 0, len(slowGot))
	waitCohorts(t, r, 0)
}

func TestMergeSourceFailureEvictsCohort(t *testing.T) {
	const clusters, failAt = 32, 7
	mreg := metrics.NewRegistry()
	r, err := merge.NewRegistry(merge.Config{Window: 8, Metrics: mreg})
	if err != nil {
		t.Fatal(err)
	}
	pool := transport.NewBufferPool(nil)
	var reads atomic.Int64
	inner := gatedSource(pool, &reads, nil)
	src := func(index int) (*transport.Frame, transport.ClusterPayload, error) {
		if index == failAt {
			return nil, transport.ClusterPayload{}, errors.New("disk gone")
		}
		return inner(index)
	}

	a, err := r.Join("hot-title", clusters, 0, src)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Join("hot-title", clusters, 0, src)
	if err != nil {
		t.Fatal(err)
	}
	aGot, bGot := drain(t, a), drain(t, b)
	if !a.Evicted() || !b.Evicted() {
		t.Fatalf("Evicted() = %v/%v after source failure, want true/true", a.Evicted(), b.Evicted())
	}
	// Whatever arrived is a gapless prefix, so both handlers can resume
	// privately — with replica retry — from their next index.
	wantRange(t, aGot, 0, len(aGot))
	wantRange(t, bGot, 0, len(bGot))
	if len(aGot) > failAt || len(bGot) > failAt {
		t.Fatalf("received past the failed cluster: %d/%d clusters", len(aGot), len(bGot))
	}
	waitCohorts(t, r, 0)
	if got := mreg.Snapshot().Counters["merge.evictions"]; got != 2 {
		t.Fatalf("merge.evictions = %d, want 2", got)
	}
}

func TestMergeLeaveReleasesQueuedFrames(t *testing.T) {
	const clusters = 32
	preg := metrics.NewRegistry()
	pool := transport.NewBufferPool(preg)
	r, err := merge.NewRegistry(merge.Config{Window: 8})
	if err != nil {
		t.Fatal(err)
	}
	var reads atomic.Int64
	src := gatedSource(pool, &reads, nil)

	stay, err := r.Join("hot-title", clusters, 0, src)
	if err != nil {
		t.Fatal(err)
	}
	leaver, err := r.Join("hot-title", clusters, 0, src)
	if err != nil {
		t.Fatal(err)
	}
	if item, ok := leaver.Recv(); ok {
		item.Frame.Release()
	}
	leaver.Leave()
	leaver.Leave() // must be safe to repeat
	wantRange(t, drain(t, stay), 0, clusters)
	waitCohorts(t, r, 0)

	// Every leased buffer must be back in the pool: the leaver's queued
	// frames were released by Leave, everything else by the consumers.
	deadline := time.Now().Add(5 * time.Second)
	for {
		returns := preg.Snapshot().Counters["transport.pool_returns"]
		if returns == reads.Load() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool got back %d buffers for %d reads — leaked frames", returns, reads.Load())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestMergeJoinValidation(t *testing.T) {
	r, err := merge.NewRegistry(merge.Config{Window: 8})
	if err != nil {
		t.Fatal(err)
	}
	src := gatedSource(transport.NewBufferPool(nil), new(atomic.Int64), nil)
	for name, join := range map[string]func() (*merge.Sub, error){
		"zero clusters":  func() (*merge.Sub, error) { return r.Join("t", 0, 0, src) },
		"negative start": func() (*merge.Sub, error) { return r.Join("t", 8, -1, src) },
		"start at end":   func() (*merge.Sub, error) { return r.Join("t", 8, 8, src) },
		"nil source":     func() (*merge.Sub, error) { return r.Join("t", 8, 0, nil) },
	} {
		if _, err := join(); err == nil {
			t.Errorf("%s: Join accepted invalid arguments", name)
		}
	}
	if _, err := merge.NewRegistry(merge.Config{Window: 0}); err == nil {
		t.Error("NewRegistry accepted a zero window")
	}
	if _, err := merge.NewRegistry(merge.Config{Window: 4, QueueDepth: -1}); err == nil {
		t.Error("NewRegistry accepted a negative queue depth")
	}
}

// TestMergeConcurrentChurn hammers one registry with joins, normal drains,
// early leaves, and stalled subscribers across several titles. Run under
// -race it is the cohort lifecycle's data-race check; the pool-returns
// accounting at the end catches leaked frame references.
func TestMergeConcurrentChurn(t *testing.T) {
	const workers, rounds, clusters = 16, 8, 24
	preg := metrics.NewRegistry()
	pool := transport.NewBufferPool(preg)
	r, err := merge.NewRegistry(merge.Config{Window: clusters, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	var reads atomic.Int64
	src := gatedSource(pool, &reads, nil)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < rounds; i++ {
				title := fmt.Sprintf("title-%d", rng.Intn(3))
				s, err := r.Join(title, clusters, rng.Intn(clusters), src)
				if err != nil {
					t.Error(err)
					return
				}
				switch rng.Intn(3) {
				case 0: // drain to completion (or eviction)
					for {
						item, ok := s.Recv()
						if !ok {
							break
						}
						item.Frame.Release()
					}
				case 1: // leave after a few clusters
					for j := 0; j < rng.Intn(4); j++ {
						item, ok := s.Recv()
						if !ok {
							break
						}
						item.Frame.Release()
					}
					s.Leave()
				case 2: // stall until evicted, then release the backlog
					for {
						item, ok := s.Recv()
						if !ok {
							break
						}
						item.Frame.Release()
						time.Sleep(time.Duration(rng.Intn(200)) * time.Microsecond)
					}
				}
			}
		}()
	}
	wg.Wait()
	waitCohorts(t, r, 0)
	deadline := time.Now().Add(5 * time.Second)
	for {
		returns := preg.Snapshot().Counters["transport.pool_returns"]
		if returns == reads.Load() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool got back %d buffers for %d reads — leaked frames", returns, reads.Load())
		}
		time.Sleep(time.Millisecond)
	}
}

// BenchmarkMergeFanout measures the broadcast path: one pooled read per
// cluster fanned out to eight draining subscribers. CI runs it as a smoke
// test against the committed BENCH_merge.json baseline.
func BenchmarkMergeFanout(b *testing.B) {
	const watchers = 8
	clusters := b.N
	if clusters < 1 {
		clusters = 1
	}
	pool := transport.NewBufferPool(nil)
	r, err := merge.NewRegistry(merge.Config{Window: 8, QueueDepth: 64})
	if err != nil {
		b.Fatal(err)
	}
	var reads atomic.Int64
	gate := make(chan struct{})
	src := gatedSource(pool, &reads, gate)

	subs := make([]*merge.Sub, watchers)
	for i := range subs {
		if subs[i], err = r.Join("bench-title", clusters, 0, src); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(watchers) * clusterBytes)
	b.ResetTimer()
	close(gate)
	var wg sync.WaitGroup
	for _, s := range subs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				item, ok := s.Recv()
				if !ok {
					return
				}
				item.Frame.Release()
			}
		}()
	}
	wg.Wait()
	b.StopTimer()
	if got := reads.Load(); got != int64(clusters) {
		b.Fatalf("source reads = %d, want %d", got, clusters)
	}
}

// TestMergeHoldDownBatchesJoiners covers the aggregation hold-down: joiners
// arriving while a held cohort's pump has not yet read all attach at the base
// position with zero patch clusters, so one source stream serves everyone —
// the relay-cohort batching path.
func TestMergeHoldDownBatchesJoiners(t *testing.T) {
	const clusters = 16
	pool := transport.NewBufferPool(nil)
	r, err := merge.NewRegistry(merge.Config{Window: clusters})
	if err != nil {
		t.Fatal(err)
	}
	var reads atomic.Int64
	src := gatedSource(pool, &reads, nil)
	lead, err := r.JoinSourceHold("hot-title", clusters, 0, src, nil, 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !lead.Created() {
		t.Fatal("first join did not create the cohort")
	}
	const followers = 4
	subs := make([]*merge.Sub, followers)
	for i := range subs {
		s, err := r.Join("hot-title", clusters, 0, src)
		if err != nil {
			t.Fatal(err)
		}
		if s.Created() {
			t.Fatalf("follower %d opened a second cohort during the hold", i)
		}
		if s.Start() != 0 {
			t.Fatalf("follower %d attached at %d, want 0 (no patch inside the hold)", i, s.Start())
		}
		subs[i] = s
	}
	var wg sync.WaitGroup
	for _, s := range append(subs, lead) {
		wg.Add(1)
		go func(s *merge.Sub) {
			defer wg.Done()
			wantRange(t, drain(t, s), 0, clusters)
		}(s)
	}
	wg.Wait()
	if got := reads.Load(); got != clusters {
		t.Fatalf("source reads = %d, want %d (one shared stream)", got, clusters)
	}
}

// TestMergeZeroHoldStartsImmediately pins the hold-down's no-op contract: a
// zero hold must not delay the pump (JoinSource always passes zero).
func TestMergeZeroHoldStartsImmediately(t *testing.T) {
	const clusters = 4
	pool := transport.NewBufferPool(nil)
	r, err := merge.NewRegistry(merge.Config{Window: clusters})
	if err != nil {
		t.Fatal(err)
	}
	var reads atomic.Int64
	s, err := r.JoinSourceHold("hot-title", clusters, 0, gatedSource(pool, &reads, nil), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	wantRange(t, drain(t, s), 0, clusters)
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("zero-hold stream took %v", d)
	}
}
