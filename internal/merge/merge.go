// Package merge implements shared-prefix stream merging for the delivery
// plane: when concurrent Watch sessions of one title overlap within a
// configurable window, they are coalesced onto a single *base stream* — one
// disk read per cluster, fanned out to every attached session through
// ref-counted transport.Frame leases — instead of N independent reads. A
// late joiner receives the clusters it missed as a private *patch stream*
// (served by its own handler) and shares the base stream from its join
// position onward, turning the O(N) origin cost of a hot title into O(number
// of cohorts): the chaining/patching result from the VoD multicast
// literature (see PAPERS.md).
//
// Cohort lifecycle:
//
//	Join ──► cohort exists within window? ──no──► new cohort, pump starts
//	              │ yes
//	              ▼
//	    attach at pos P; handler patches [start, P) privately,
//	    then consumes broadcast items [P, end)
//
//	pump: read cluster once ──► Retain per subscriber ──► bounded queues
//	      subscriber queue full ──► evict to unicast (no gap: the
//	      handler resumes private reads at its next index)
//	      all subscribers gone ──► pump stops, cohort unregisters
//
// Pacing: the pump advances while every receiving subscriber has queue
// space, so normal consumers pace each other within QueueDepth clusters of
// slack. A subscriber is evicted only when its full queue blocks the pump
// while another subscriber has run its queue dry — a genuinely stalled
// receiver starving the cohort — so transient scheduling jitter never
// breaks a session out of its cohort, but one wedged client cannot
// throttle everyone else.
package merge

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"dvod/internal/metrics"
	"dvod/internal/transport"
)

// Item is one broadcast cluster: a shared frame (the subscriber holds one
// reference and must Release it after writing) plus its wire metadata.
type Item struct {
	Frame   *transport.Frame
	Payload transport.ClusterPayload
}

// Source reads one cluster of a cohort's title into a leased frame. It is
// supplied by the server (local array read or peer fetch with failover) and
// is called from the cohort's pump goroutine, never concurrently with
// itself.
type Source func(index int) (*transport.Frame, transport.ClusterPayload, error)

// Config parameterizes a Registry.
type Config struct {
	// Window is the merge window in clusters: a session may attach to a
	// cohort when its start position is within Window clusters of the
	// cohort's base position, on either side. Behind, the gap is served as
	// a patch stream; ahead, the subscriber simply waits for the base to
	// arrive. Must be positive.
	Window int
	// QueueDepth bounds each subscriber's broadcast queue — how far the
	// cohort's consumers may drift apart before the slowest one, once it
	// starves a faster one, is evicted back to unicast. Zero defaults to
	// 2·Window+8, which keeps a patching joiner attached while it serves
	// its (≤ Window) patch.
	QueueDepth int
	// Metrics receives the merge.* counters and gauges; nil allocates a
	// private registry.
	Metrics *metrics.Registry
}

// Registry tracks the active cohorts of one serving node. Safe for
// concurrent use.
type Registry struct {
	cfg Config

	mu      sync.Mutex
	nextID  int64
	cohorts map[string][]*Cohort

	gCohorts    *metrics.Gauge
	cCohorts    *metrics.Counter
	cMerged     *metrics.Counter
	cReadsSaved *metrics.Counter
	cBytesSaved *metrics.Counter
	cEvictions  *metrics.Counter
}

// NewRegistry validates the configuration.
func NewRegistry(cfg Config) (*Registry, error) {
	if cfg.Window <= 0 {
		return nil, fmt.Errorf("merge: non-positive window %d", cfg.Window)
	}
	if cfg.QueueDepth < 0 {
		return nil, fmt.Errorf("merge: negative queue depth %d", cfg.QueueDepth)
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 2*cfg.Window + 8
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	return &Registry{
		cfg:         cfg,
		cohorts:     make(map[string][]*Cohort),
		gCohorts:    cfg.Metrics.Gauge("merge.cohorts"),
		cCohorts:    cfg.Metrics.Counter("merge.cohorts_total"),
		cMerged:     cfg.Metrics.Counter("merge.sessions_merged"),
		cReadsSaved: cfg.Metrics.Counter("merge.disk_reads_saved"),
		cBytesSaved: cfg.Metrics.Counter("merge.bytes_saved"),
		cEvictions:  cfg.Metrics.Counter("merge.evictions"),
	}, nil
}

// Window returns the configured merge window in clusters.
func (r *Registry) Window() int { return r.cfg.Window }

// Join attaches a watch session for title (numClusters long, delivery
// starting at start) to a compatible live cohort, creating a new one — with
// this session as its base — when none is within the window. src is only
// used when a cohort is created; an existing cohort keeps reading through
// the source of its base session.
func (r *Registry) Join(title string, numClusters, start int, src Source) (*Sub, error) {
	return r.JoinSource(title, numClusters, start, src, nil)
}

// JoinSource is Join with a source-cleanup hook: closeSrc is invoked exactly
// once, when the cohort pump exits, IF this call created the cohort. When
// the session attaches to an existing cohort instead, src is unused and
// closeSrc is never invoked — a source holding real resources (the
// relay-cohort upstream connection) must therefore acquire them lazily on
// its first read.
func (r *Registry) JoinSource(title string, numClusters, start int, src Source, closeSrc func()) (*Sub, error) {
	return r.JoinSourceHold(title, numClusters, start, src, closeSrc, 0)
}

// JoinSourceHold is JoinSource with an aggregation hold-down: when this call
// creates the cohort, its pump waits hold before the first source read, so
// near-simultaneous joiners (a flash crowd of downstream relay servers, say)
// all attach at the base position with zero patch clusters — the batching
// idea from the VoD literature. The hold delays only the shared stream's
// first cluster, never a session's locally-served prefix, and a hold of zero
// starts the pump immediately.
func (r *Registry) JoinSourceHold(title string, numClusters, start int, src Source, closeSrc func(), hold time.Duration) (*Sub, error) {
	if numClusters <= 0 || start < 0 || start >= numClusters {
		return nil, fmt.Errorf("merge: start %d outside [0, %d)", start, numClusters)
	}
	if src == nil {
		return nil, errors.New("merge: nil source")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.cohorts[title] {
		if s := c.tryJoin(start, numClusters); s != nil {
			r.cMerged.Inc()
			return s, nil
		}
	}
	c := &Cohort{
		id:       r.nextID,
		title:    title,
		end:      numClusters,
		reg:      r,
		src:      src,
		closeSrc: closeSrc,
		hold:     hold,
		pos:      start,
		subs:     make(map[*Sub]struct{}),
	}
	r.nextID++
	c.cond = sync.NewCond(&c.mu)
	sub := &Sub{cohort: c, start: start, created: true, ch: make(chan Item, r.cfg.QueueDepth)}
	c.subs[sub] = struct{}{}
	r.cohorts[title] = append(r.cohorts[title], c)
	r.cCohorts.Inc()
	r.publishCohortsLocked()
	go c.run()
	return sub, nil
}

// ActiveCohorts returns the number of live cohorts (for tests/reports).
func (r *Registry) ActiveCohorts() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, cs := range r.cohorts {
		n += len(cs)
	}
	return n
}

// remove unregisters a finished cohort.
func (r *Registry) remove(c *Cohort) {
	r.mu.Lock()
	defer r.mu.Unlock()
	list := r.cohorts[c.title]
	for i, x := range list {
		if x == c {
			list[i] = list[len(list)-1]
			list = list[:len(list)-1]
			break
		}
	}
	if len(list) == 0 {
		delete(r.cohorts, c.title)
	} else {
		r.cohorts[c.title] = list
	}
	r.publishCohortsLocked()
}

// publishCohortsLocked refreshes the active-cohorts gauge; callers hold r.mu.
func (r *Registry) publishCohortsLocked() {
	n := 0
	for _, cs := range r.cohorts {
		n += len(cs)
	}
	r.gCohorts.Set(float64(n))
}

// Cohort is one base stream and its attached sessions.
type Cohort struct {
	id       int64
	title    string
	end      int
	reg      *Registry
	src      Source
	closeSrc func()        // optional; invoked once when the pump exits
	hold     time.Duration // aggregation hold-down before the first read

	mu   sync.Mutex
	cond *sync.Cond
	pos  int // next cluster index the pump will broadcast
	subs map[*Sub]struct{}
	done bool
}

// tryJoin attaches a new subscriber when start is within the window of the
// cohort's position. Returns nil when the cohort is finished, sized for a
// different layout, or out of range.
func (c *Cohort) tryJoin(start, numClusters int) *Sub {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.done || numClusters != c.end {
		return nil
	}
	w := c.reg.cfg.Window
	if start < c.pos-w || start > c.pos+w {
		return nil
	}
	s := &Sub{cohort: c, ch: make(chan Item, c.reg.cfg.QueueDepth)}
	s.start = start
	if c.pos > start {
		s.start = c.pos // the gap [start, pos) becomes the patch stream
	}
	c.subs[s] = struct{}{}
	c.cond.Broadcast()
	return s
}

// run is the cohort's pump: one Source read per cluster, fanned out to every
// subscriber. It exits when the title is exhausted, every subscriber has
// detached, or the source fails (subscribers are then evicted and resume as
// private unicast streams — failover without a gap).
func (c *Cohort) run() {
	// Aggregation hold-down: batch joiners arriving within the hold at the
	// base position before the first read (see JoinSourceHold).
	if c.hold > 0 {
		time.Sleep(c.hold)
	}
	defer func() {
		c.mu.Lock()
		c.done = true
		for s := range c.subs {
			delete(c.subs, s)
			close(s.ch)
		}
		c.mu.Unlock()
		c.reg.remove(c)
		if c.closeSrc != nil {
			c.closeSrc()
		}
	}()
	for {
		c.mu.Lock()
		for !c.readyLocked() {
			c.cond.Wait()
		}
		if len(c.subs) == 0 || c.pos >= c.end {
			c.mu.Unlock()
			return
		}
		idx := c.pos
		c.mu.Unlock()

		frame, payload, err := c.src(idx)
		c.mu.Lock()
		if err != nil {
			// Every subscriber falls back to unicast; its own delivery
			// path retries the remaining replicas independently.
			for s := range c.subs {
				c.evictLocked(s)
			}
			c.mu.Unlock()
			return
		}
		delivered := 0
		for s := range c.subs {
			if idx < s.start {
				continue
			}
			frame.Retain()
			select {
			case s.ch <- Item{Frame: frame, Payload: payload}:
				delivered++
			default:
				frame.Release()
				c.evictLocked(s)
			}
		}
		c.pos = idx + 1
		c.mu.Unlock()
		frame.Release()
		if delivered > 1 {
			c.reg.cReadsSaved.Add(int64(delivered - 1))
			c.reg.cBytesSaved.Add(int64(delivered-1) * payload.Length)
		}
	}
}

// readyLocked reports whether the pump may read the next cluster: every
// receiving subscriber has queue space. When a full queue blocks the pump
// while another subscriber has drained its queue empty — a stalled receiver
// starving the cohort — the stalled subscribers are evicted here and the
// pump proceeds. When every subscriber starts beyond the current position
// (the base left early), the position jumps forward so no cluster is read
// for nobody. Callers hold c.mu.
func (c *Cohort) readyLocked() bool {
	if len(c.subs) == 0 || c.pos >= c.end {
		return true // run() exits
	}
	minStart := -1
	for s := range c.subs {
		if minStart == -1 || s.start < minStart {
			minStart = s.start
		}
	}
	if minStart > c.pos {
		c.pos = minStart
	}
	var full []*Sub
	starving := false
	for s := range c.subs {
		if s.start > c.pos {
			continue // forward joiner, not receiving yet
		}
		switch len(s.ch) {
		case cap(s.ch):
			full = append(full, s)
		case 0:
			starving = true
		}
	}
	if len(full) == 0 {
		return true
	}
	if starving {
		for _, s := range full {
			c.evictLocked(s)
		}
		return true
	}
	return false
}

// evictLocked detaches one subscriber; its handler drains the queue and
// continues unicast. Callers hold c.mu.
func (c *Cohort) evictLocked(s *Sub) {
	s.evicted = true
	delete(c.subs, s)
	close(s.ch)
	c.reg.cEvictions.Inc()
}

// Sub is one session's attachment to a cohort.
type Sub struct {
	cohort  *Cohort
	ch      chan Item
	start   int  // first broadcast index this subscriber receives
	created bool // true for the session that opened the cohort
	evicted bool // guarded by cohort.mu; read after ch closes
}

// CohortID identifies the cohort within the serving node.
func (s *Sub) CohortID() int64 { return s.cohort.id }

// Created reports whether this session opened the cohort (role "base").
func (s *Sub) Created() bool { return s.created }

// Start is the first cluster index the subscriber receives from the base
// stream; clusters before it are the session's patch range.
func (s *Sub) Start() int { return s.start }

// Recv returns the next broadcast item. ok is false once the queue is
// closed: the cohort completed, evicted this subscriber (Evicted), or
// failed over. The caller owns one reference on the returned frame.
func (s *Sub) Recv() (Item, bool) {
	item, ok := <-s.ch
	if ok {
		// A freed slot may unblock the pump. The broadcast happens under
		// the cohort lock so it cannot slip into the window between the
		// pump's readiness check and its cond.Wait.
		c := s.cohort
		c.mu.Lock()
		c.cond.Broadcast()
		c.mu.Unlock()
	}
	return item, ok
}

// Evicted reports whether the subscriber was detached by the cohort (slow
// consumer or source failure) rather than by normal completion. Valid after
// Recv has returned ok == false.
func (s *Sub) Evicted() bool {
	s.cohort.mu.Lock()
	defer s.cohort.mu.Unlock()
	return s.evicted
}

// Leave detaches the subscriber early (client gone, write error) and
// releases every queued frame. It is safe to call after the queue closed.
func (s *Sub) Leave() {
	c := s.cohort
	c.mu.Lock()
	if _, ok := c.subs[s]; ok {
		delete(c.subs, s)
		close(s.ch)
		c.cond.Broadcast()
	}
	c.mu.Unlock()
	for item := range s.ch {
		item.Frame.Release()
	}
}
