package dvod

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// seedTenAM loads the paper's 10am link statistics into the service.
func seedTenAM(t *testing.T, svc *Service) {
	t.Helper()
	util, err := GRNETUtilization("10am")
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range GRNETTopology().Links {
		id := MakeLinkID(l.A, l.B)
		if err := svc.SetLinkTraffic(l.A, l.B, util[id]*l.CapacityMbps); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFailoverOptionValidation(t *testing.T) {
	spec := GRNETTopology()
	if _, err := New(spec, WithFailover(time.Second, 0)); err == nil {
		t.Fatal("half-configured failover accepted")
	}
	if _, err := New(spec, WithFailover(0, time.Second)); err == nil {
		t.Fatal("half-configured failover accepted")
	}
	if _, err := New(spec, WithFailover(time.Second, time.Second)); err == nil {
		t.Fatal("interval >= max age accepted")
	}
}

// TestFailoverReroutesAroundDeadServer exercises the full loop: with two
// replicas, stopping the preferred server makes both planning and live
// delivery fall over to the survivor.
func TestFailoverReroutesAroundDeadServer(t *testing.T) {
	svc, err := New(GRNETTopology(),
		WithClusterBytes(4096),
		WithDisks(2, 1<<20),
		WithNodeDisks("U2", 1, 1024), // home cannot cache
		WithFailover(20*time.Millisecond, 80*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Start(); err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	seedTenAM(t, svc)

	title := Title{Name: "failover-movie", SizeBytes: 20_000, BitrateMbps: 1.5}
	if err := svc.AddTitle(title); err != nil {
		t.Fatal(err)
	}
	for _, h := range []NodeID{"U4", "U5"} {
		if err := svc.Preload(h, title.Name); err != nil {
			t.Fatal(err)
		}
	}

	dec, err := svc.Plan("U2", title.Name)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Server != "U4" {
		t.Fatalf("initial plan = %s, want U4 (10am Experiment B conditions)", dec.Server)
	}

	// Kill Thessaloniki; its heartbeats stop immediately (MarkDown).
	if err := svc.StopServer("U4"); err != nil {
		t.Fatal(err)
	}
	dec, err = svc.Plan("U2", title.Name)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Server != "U5" {
		t.Fatalf("post-failure plan = %s, want survivor U5", dec.Server)
	}

	// Live delivery also routes around the corpse.
	p, err := svc.Player("U2")
	if err != nil {
		t.Fatal(err)
	}
	stats, err := p.Watch(title.Name)
	if err != nil {
		t.Fatalf("Watch after failover: %v", err)
	}
	if !stats.Verified {
		t.Fatal("failover delivery not verified")
	}
	for i, src := range stats.Sources {
		if src != "U5" {
			t.Fatalf("cluster %d source = %s, want U5", i, src)
		}
	}

	if err := svc.StopServer("U99"); err == nil {
		t.Fatal("unknown node accepted")
	}
}

func TestServiceWebHandler(t *testing.T) {
	svc, err := New(GRNETTopology(), WithDisks(2, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Start(); err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	seedTenAM(t, svc)

	title := Title{Name: "web-movie", SizeBytes: 10_000, BitrateMbps: 1.5}
	if err := svc.AddTitle(title); err != nil {
		t.Fatal(err)
	}
	if err := svc.Preload("U4", title.Name); err != nil {
		t.Fatal(err)
	}

	h, err := svc.WebHandler("tok")
	if err != nil {
		t.Fatal(err)
	}
	web := httptest.NewServer(h)
	defer web.Close()

	// Full-access: catalog.
	resp, err := http.Get(web.URL + "/titles")
	if err != nil {
		t.Fatal(err)
	}
	var titles []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&titles); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(titles) != 1 {
		t.Fatalf("titles = %v", titles)
	}

	// Full-access: request → VRA decision.
	resp, err = http.Post(web.URL+"/request", "application/json",
		strings.NewReader(`{"home":"U2","title":"web-movie"}`))
	if err != nil {
		t.Fatal(err)
	}
	var dec map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&dec); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if dec["server"] != "U4" {
		t.Fatalf("decision = %v", dec)
	}

	// Limited-access with the right token.
	req, _ := http.NewRequest(http.MethodGet, web.URL+"/admin/links", nil)
	req.Header.Set("Authorization", "Bearer tok")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("admin links = %d", resp.StatusCode)
	}
}
