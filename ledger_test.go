package dvod

import (
	"errors"
	"testing"
	"time"

	"dvod/internal/admission"
	"dvod/internal/clock"
)

// digestsConverged reports whether every live replica publishes the same
// ledger digest (and there are at least two to compare).
func digestsConverged(d map[NodeID]string) bool {
	if len(d) < 2 {
		return len(d) == 1
	}
	var first string
	for _, v := range d {
		first = v
		break
	}
	for _, v := range d {
		if v != first {
			return false
		}
	}
	return true
}

// gossipUntilConverged drives synchronous rounds until every replica agrees,
// returning the round count (or -1 after max rounds).
func gossipUntilConverged(svc *Service, max int) int {
	for r := 1; r <= max; r++ {
		svc.GossipRound()
		if digestsConverged(svc.LedgerDigests()) {
			return r
		}
	}
	return -1
}

// TestLedgerPartitionHealReconverges runs the ledger's whole distributed
// lifecycle against the fault injector on a virtual clock: replicas converge,
// a partitioned node's new reservations stay invisible while its old ones
// keep counting (conservative admission), digests reconverge within a few
// gossip rounds of the heal, and a server that dies for good has its
// reservations reclaimed by lease expiry.
func TestLedgerPartitionHealReconverges(t *testing.T) {
	const (
		a = NodeID("alpha")
		b = NodeID("beta")
		c = NodeID("gamma")
	)
	clk := clock.NewVirtual(time.Unix(1_700_000_000, 0))
	// The plan partitions gamma between T+1s and T+3s — well inside the
	// 10 s lease (40 × 250 ms rounds), so the partition must NOT be
	// mistaken for a death.
	var plan FaultPlan
	plan.FailPeer(time.Second, 2*time.Second, c)
	spec := TopologySpec{
		Nodes: []NodeID{a, b, c},
		Links: []LinkSpec{
			{A: a, B: b, CapacityMbps: 10},
			{A: b, B: c, CapacityMbps: 10},
			{A: a, B: c, CapacityMbps: 10},
		},
	}
	svc, err := New(spec,
		WithAdmission(100),
		WithClock(clk),
		WithFaultPlan(plan, 7),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if err := svc.Start(); err != nil {
		t.Fatal(err)
	}

	ab := MakeLinkID(a, b)
	ac := MakeLinkID(a, c)

	// Pre-partition reservations: alpha commits 2 Mbps on a-b, gamma 3 Mbps
	// on a-c. Both must become visible everywhere.
	if _, err := svc.brokers[a].Admit(admission.Request{
		Class: admission.Premium, BitrateMbps: 2, Links: []LinkID{ab},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.brokers[c].Admit(admission.Request{
		Class: admission.Premium, BitrateMbps: 3, Links: []LinkID{ac},
	}); err != nil {
		t.Fatal(err)
	}
	if r := gossipUntilConverged(svc, 8); r < 0 {
		t.Fatalf("replicas never converged before the partition: %v", svc.LedgerDigests())
	}
	if got := svc.ledgers[a].RemoteReservedMbps(ac); got != 3 {
		t.Fatalf("alpha sees %g Mbps remote on a-c pre-partition, want 3", got)
	}

	// Enter the partition window. Gamma grants 3 more Mbps on a-c that
	// cannot propagate; the cluster must NOT converge while it is cut off.
	clk.Advance(1500 * time.Millisecond)
	if _, err := svc.brokers[c].Admit(admission.Request{
		Class: admission.Premium, BitrateMbps: 3, Links: []LinkID{ac},
	}); err != nil {
		t.Fatal(err)
	}
	for range 6 {
		svc.GossipRound()
	}
	if digestsConverged(svc.LedgerDigests()) {
		t.Fatal("digests converged across an active partition")
	}
	// Conservative admission: gamma's pre-partition 3 Mbps still counts
	// (the lease outlives the partition), so alpha refuses a request that
	// would only fit if the silent node's reservations were forgotten.
	if got := svc.ledgers[a].RemoteReservedMbps(ac); got != 3 {
		t.Fatalf("alpha sees %g Mbps remote on a-c during the partition, want the pre-partition 3", got)
	}
	_, err = svc.brokers[a].Admit(admission.Request{
		Class: admission.Premium, BitrateMbps: 8, Links: []LinkID{ac},
	})
	var rej *admission.RejectedError
	if !errors.As(err, &rej) || rej.Reason != admission.ReasonLink {
		t.Fatalf("admission during partition = %v, want a link rejection", err)
	}

	// Heal: past T+3s the injector deactivates. Digest reconvergence must
	// take only a handful of rounds, after which alpha sees gamma's full
	// 6 Mbps on a-c.
	clk.Advance(2 * time.Second)
	r := gossipUntilConverged(svc, 8)
	if r < 0 {
		t.Fatalf("replicas never reconverged after the heal: %v", svc.LedgerDigests())
	}
	t.Logf("reconverged %d gossip rounds after the heal", r)
	if got := svc.ledgers[a].RemoteReservedMbps(ac); got != 6 {
		t.Fatalf("alpha sees %g Mbps remote on a-c after the heal, want 6", got)
	}

	// Death: gamma goes away for good. Once its lease runs out, the
	// survivors reclaim its bandwidth and agree with each other again.
	if err := svc.StopServer(c); err != nil {
		t.Fatal(err)
	}
	clk.Advance(11 * time.Second) // past the 10 s lease TTL
	for range 4 {
		svc.GossipRound()
	}
	if got := svc.ledgers[a].RemoteReservedMbps(ac); got != 0 {
		t.Fatalf("alpha still counts %g Mbps for the dead gamma, want 0", got)
	}
	if !digestsConverged(svc.LedgerDigests()) {
		t.Fatalf("survivors disagree after lease expiry: %v", svc.LedgerDigests())
	}
	g, err := svc.brokers[a].Admit(admission.Request{
		Class: admission.Premium, BitrateMbps: 8, Links: []LinkID{ac},
	})
	if err != nil {
		t.Fatalf("admission after lease expiry: %v", err)
	}
	svc.brokers[a].Release(g)
	expired := int64(0)
	for _, node := range []NodeID{a, b} {
		expired += svc.Metrics()[node].Counters["ledger.stale_expired"]
	}
	if expired == 0 {
		t.Fatal("ledger.stale_expired never incremented on the survivors")
	}
}
