package dvod

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// topologyFileJSON is the on-disk configuration format for custom
// deployments:
//
//	{
//	  "nodes": ["edge-1", "edge-2", "origin"],
//	  "links": [
//	    {"a": "edge-1", "b": "origin", "capacityMbps": 2},
//	    {"a": "edge-2", "b": "origin", "capacityMbps": 18}
//	  ]
//	}
type topologyFileJSON struct {
	Nodes []NodeID `json:"nodes"`
	Links []struct {
		A            NodeID  `json:"a"`
		B            NodeID  `json:"b"`
		CapacityMbps float64 `json:"capacityMbps"`
	} `json:"links"`
}

// ParseTopology reads a TopologySpec from JSON, validating structure and
// connectivity.
func ParseTopology(r io.Reader) (TopologySpec, error) {
	var wire topologyFileJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&wire); err != nil {
		return TopologySpec{}, fmt.Errorf("dvod: parse topology: %w", err)
	}
	spec := TopologySpec{Nodes: wire.Nodes}
	for _, l := range wire.Links {
		spec.Links = append(spec.Links, LinkSpec{A: l.A, B: l.B, CapacityMbps: l.CapacityMbps})
	}
	if _, err := buildGraph(spec); err != nil {
		return TopologySpec{}, fmt.Errorf("dvod: topology file: %w", err)
	}
	return spec, nil
}

// LoadTopologyFile reads and validates a topology configuration file.
func LoadTopologyFile(path string) (TopologySpec, error) {
	f, err := os.Open(path)
	if err != nil {
		return TopologySpec{}, fmt.Errorf("dvod: %w", err)
	}
	defer f.Close()
	return ParseTopology(f)
}

// WriteTopology serializes a spec in the configuration format, sorted and
// indented for human editing.
func WriteTopology(w io.Writer, spec TopologySpec) error {
	g, err := buildGraph(spec)
	if err != nil {
		return fmt.Errorf("dvod: write topology: %w", err)
	}
	wire := topologyFileJSON{Nodes: g.Nodes()}
	for _, l := range g.Links() {
		wire.Links = append(wire.Links, struct {
			A            NodeID  `json:"a"`
			B            NodeID  `json:"b"`
			CapacityMbps float64 `json:"capacityMbps"`
		}{A: l.A, B: l.B, CapacityMbps: l.CapacityMbps})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(wire)
}
