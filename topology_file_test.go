package dvod

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseTopologyValid(t *testing.T) {
	in := `{
	  "nodes": ["edge-1", "edge-2", "origin"],
	  "links": [
	    {"a": "edge-1", "b": "origin", "capacityMbps": 2},
	    {"a": "edge-2", "b": "origin", "capacityMbps": 18}
	  ]
	}`
	spec, err := ParseTopology(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ParseTopology: %v", err)
	}
	if len(spec.Nodes) != 3 || len(spec.Links) != 2 {
		t.Fatalf("spec = %+v", spec)
	}
	if _, err := New(spec); err != nil {
		t.Fatalf("New(parsed spec): %v", err)
	}
}

func TestParseTopologyRejectsBad(t *testing.T) {
	cases := []string{
		`{bad json`,
		`{"nodes": ["a"], "links": [{"a":"a","b":"ghost","capacityMbps":2}]}`,
		`{"nodes": ["a","b"], "links": [{"a":"a","b":"b","capacityMbps":-2}]}`,
		`{"nodes": ["a","b"], "links": []}`, // disconnected
		`{"nodes": ["a"], "unknown": true}`, // unknown field
	}
	for _, c := range cases {
		if _, err := ParseTopology(strings.NewReader(c)); err == nil {
			t.Fatalf("accepted %s", c)
		}
	}
}

func TestTopologyFileRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTopology(&buf, GRNETTopology()); err != nil {
		t.Fatalf("WriteTopology: %v", err)
	}
	spec, err := ParseTopology(&buf)
	if err != nil {
		t.Fatalf("ParseTopology(round trip): %v", err)
	}
	if len(spec.Nodes) != 6 || len(spec.Links) != 7 {
		t.Fatalf("round trip = %d nodes %d links", len(spec.Nodes), len(spec.Links))
	}
}

func TestWriteTopologyRejectsInvalid(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTopology(&buf, TopologySpec{}); err == nil {
		t.Fatal("empty spec accepted")
	}
}

func TestLoadTopologyFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "topo.json")
	var buf bytes.Buffer
	if err := WriteTopology(&buf, GRNETTopology()); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	spec, err := LoadTopologyFile(path)
	if err != nil {
		t.Fatalf("LoadTopologyFile: %v", err)
	}
	if len(spec.Links) != 7 {
		t.Fatalf("spec = %+v", spec)
	}
	if _, err := LoadTopologyFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}
