package dvod

import "testing"

func TestPlanPlacement(t *testing.T) {
	util, err := GRNETUtilization("4pm")
	if err != nil {
		t.Fatal(err)
	}
	demand := Demand{"U2": 5, "U6": 4, "U3": 2, "U5": 2, "U4": 1, "U1": 1}
	sites, cost, err := PlanPlacement(GRNETTopology(), util, demand, 2)
	if err != nil {
		t.Fatalf("PlanPlacement: %v", err)
	}
	if len(sites) != 2 || sites[0] != "U2" || sites[1] != "U6" {
		t.Fatalf("sites = %v, want [U2 U6]", sites)
	}
	if cost <= 0 || cost > 1 {
		t.Fatalf("cost = %g", cost)
	}
	// k clamped to node count.
	all, allCost, err := PlanPlacement(GRNETTopology(), util, demand, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 6 || allCost != 0 {
		t.Fatalf("full placement = %v cost %g", all, allCost)
	}
	// Validation.
	if _, _, err := PlanPlacement(TopologySpec{}, nil, demand, 1); err == nil {
		t.Fatal("empty spec accepted")
	}
	if _, _, err := PlanPlacement(GRNETTopology(), nil, demand, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, _, err := PlanPlacement(GRNETTopology(), nil, Demand{}, 1); err == nil {
		t.Fatal("empty demand accepted")
	}
}

// TestWithSelectorBaseline runs the whole service under the min-hop policy
// instead of the VRA.
func TestWithSelectorBaseline(t *testing.T) {
	sel, err := SelectorByName("minhop", 1)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := New(GRNETTopology(), WithDisks(2, 1<<20), WithSelector(sel))
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Start(); err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	seedTenAM(t, svc)
	title := Title{Name: "hopcount", SizeBytes: 10_000, BitrateMbps: 1.5}
	if err := svc.AddTitle(title); err != nil {
		t.Fatal(err)
	}
	// Replicas at Thessaloniki (2 hops from Patra at 10am conditions via
	// VRA) and Athens (1 hop). Min-hop must pick Athens regardless of the
	// heavy Patra-Athens load the VRA would avoid.
	for _, h := range []NodeID{"U4", "U1"} {
		if err := svc.Preload(h, title.Name); err != nil {
			t.Fatal(err)
		}
	}
	dec, err := svc.Plan("U2", title.Name)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Server != "U1" || dec.Path.Hops() != 1 {
		t.Fatalf("minhop decision = %+v, want Athens at 1 hop", dec)
	}
}
