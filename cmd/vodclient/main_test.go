package main

import (
	"strings"
	"testing"

	"dvod"
)

// liveService brings up a service with one preloaded title.
func liveService(t *testing.T) (*dvod.Service, string) {
	t.Helper()
	svc, err := dvod.New(dvod.GRNETTopology(),
		dvod.WithClusterBytes(8<<10),
		dvod.WithDisks(2, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = svc.Close() })
	title := dvod.Title{Name: "clip", SizeBytes: 24 << 10, BitrateMbps: 1.5}
	if err := svc.AddTitle(title); err != nil {
		t.Fatal(err)
	}
	if err := svc.Preload("U2", "clip"); err != nil {
		t.Fatal(err)
	}
	addr, err := svc.ServerAddr("U2")
	if err != nil {
		t.Fatal(err)
	}
	return svc, addr
}

func TestRunList(t *testing.T) {
	_, addr := liveService(t)
	var b strings.Builder
	if err := run(&b, "U2", addr, "", true); err != nil {
		t.Fatalf("run -list: %v", err)
	}
	out := b.String()
	if !strings.Contains(out, "clip") || !strings.Contains(out, "*") {
		t.Fatalf("list output:\n%s", out)
	}
}

func TestRunWatch(t *testing.T) {
	_, addr := liveService(t)
	var b strings.Builder
	if err := run(&b, "U2", addr, "clip", false); err != nil {
		t.Fatalf("run -title: %v", err)
	}
	out := b.String()
	if !strings.Contains(out, "verified=true") || !strings.Contains(out, "sources:") {
		t.Fatalf("watch output:\n%s", out)
	}
}

func TestRunNeedsTitleOrList(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "U2", "127.0.0.1:1", "", false); err == nil {
		t.Fatal("missing -title/-list accepted")
	}
}

func TestRunWatchUnknownTitle(t *testing.T) {
	_, addr := liveService(t)
	var b strings.Builder
	if err := run(&b, "U2", addr, "ghost", false); err == nil {
		t.Fatal("unknown title accepted")
	}
}
