// Command vodclient connects to a running vodserver deployment, lists the
// catalog, or watches a title through a chosen home server, reporting
// per-cluster sources, verification, and playback statistics.
//
// Usage:
//
//	vodclient -home U2 -addr 127.0.0.1:9101 -list
//	vodclient -home U2 -addr 127.0.0.1:9101 -title movie-3
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"dvod/internal/client"
	"dvod/internal/topology"
	"dvod/internal/transport"
)

func main() {
	home := flag.String("home", "U2", "home server node id")
	addr := flag.String("addr", "127.0.0.1:9101", "home server TCP endpoint")
	title := flag.String("title", "", "title to watch")
	list := flag.Bool("list", false, "list the catalog and exit")
	flag.Parse()
	if err := run(os.Stdout, *home, *addr, *title, *list); err != nil {
		fmt.Fprintln(os.Stderr, "vodclient:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, home, addr, title string, list bool) error {
	book := transport.NewAddrBook()
	node := topology.NodeID(home)
	book.Set(node, addr)
	player, err := client.NewPlayer(node, book)
	if err != nil {
		return err
	}
	if list {
		titles, err := player.ListTitles()
		if err != nil {
			return err
		}
		for _, t := range titles {
			mark := " "
			if t.Resident {
				mark = "*"
			}
			fmt.Fprintf(w, "%s %-16s %10d bytes  %.1f Mbps\n", mark, t.Name, t.SizeBytes, t.BitrateMbps)
		}
		fmt.Fprintln(w, "(* = resident on the home server)")
		return nil
	}
	if title == "" {
		return errors.New("need -title or -list")
	}
	stats, err := player.Watch(title)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "title %s: %d clusters, %d bytes, verified=%v\n",
		stats.Title, stats.NumClusters, stats.BytesReceived, stats.Verified)
	fmt.Fprintf(w, "startup %v, stalls %d (%v), elapsed %v, mid-stream switches %d\n",
		stats.StartupDelay, stats.Stalls, stats.StallTime, stats.Elapsed, stats.Switches)
	fmt.Fprint(w, "sources:")
	for _, s := range stats.Sources {
		fmt.Fprintf(w, " %s", s)
	}
	fmt.Fprintln(w)
	return nil
}
