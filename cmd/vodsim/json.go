package main

import (
	"encoding/json"
	"fmt"
	"io"

	"dvod/internal/experiments"
	"dvod/internal/routing"
	"dvod/internal/topology"
)

// reportJSON is the machine-readable form of the whole case study.
type reportJSON struct {
	Table2      []experiments.Table2Row `json:"table2"`
	Table3      []experiments.Table3Row `json:"table3"`
	Experiments []experimentJSON        `json:"experiments"`
}

// experimentJSON flattens one reproduced experiment.
type experimentJSON struct {
	ID           string            `json:"id"`
	Time         string            `json:"time"`
	Home         topology.NodeID   `json:"home"`
	Candidates   []topology.NodeID `json:"candidates"`
	Server       topology.NodeID   `json:"server"`
	Path         string            `json:"path"`
	Cost         float64           `json:"cost"`
	PaperServer  topology.NodeID   `json:"paperServer"`
	PaperPath    string            `json:"paperPath"`
	PaperCost    float64           `json:"paperCost"`
	MatchesPaper bool              `json:"matchesPaper"`
	Erratum      string            `json:"erratum,omitempty"`
	Alternatives []alternativeJSON `json:"alternatives"`
}

type alternativeJSON struct {
	Server topology.NodeID `json:"server"`
	Path   string          `json:"path"`
	Cost   float64         `json:"cost"`
}

// runJSON emits the full reproduction as one indented JSON document.
func runJSON(w io.Writer) error {
	t2, err := experiments.Table2()
	if err != nil {
		return err
	}
	t3, err := experiments.Table3()
	if err != nil {
		return err
	}
	report := reportJSON{Table2: t2, Table3: t3}
	for _, id := range []string{"A", "B", "C", "D"} {
		res, err := experiments.RunExperiment(id)
		if err != nil {
			return err
		}
		ej := experimentJSON{
			ID:           res.Experiment.ID,
			Time:         res.Experiment.Time.String(),
			Home:         res.Experiment.Home,
			Candidates:   res.Experiment.Candidates,
			Server:       res.Decision.Server,
			Path:         res.Decision.Path.String(),
			Cost:         res.Decision.Cost,
			PaperServer:  res.Experiment.PaperServer,
			PaperPath:    res.Experiment.PaperPath,
			PaperCost:    res.Experiment.PaperCost,
			MatchesPaper: res.MatchesPaper,
			Erratum:      res.Experiment.Erratum,
		}
		for _, alt := range res.Alternatives {
			p := routing.Path(alt.Path)
			ej.Alternatives = append(ej.Alternatives, alternativeJSON{
				Server: alt.Server,
				Path:   p.String(),
				Cost:   p.Cost,
			})
		}
		report.Experiments = append(report.Experiments, ej)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		return fmt.Errorf("encode report: %w", err)
	}
	return nil
}
