package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestRunAllTables(t *testing.T) {
	var b strings.Builder
	if err := run(&b, 0, ""); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		"Table 2. The Network status",
		"Table 3. The Link Validation Numbers",
		"Table 4. The Dijkstra's algorithm table for experiment A",
		"Table 5. The Dijkstra's algorithm table for experiment B",
		"Experiment A (8am)",
		"Experiment B (10am)",
		"Experiment C (4pm)",
		"Experiment D (6pm)",
		"MATCHES PAPER",
		"erratum",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunSingleTable(t *testing.T) {
	var b strings.Builder
	if err := run(&b, 3, ""); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "Table 3") {
		t.Fatalf("missing table 3:\n%s", out)
	}
	if strings.Contains(out, "Table 2") || strings.Contains(out, "Experiment") {
		t.Fatalf("single-table run printed extra output:\n%s", out)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var b strings.Builder
	if err := run(&b, 0, "B"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "Experiment B") || strings.Contains(out, "Experiment C") {
		t.Fatalf("single-experiment run wrong:\n%s", out)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var b strings.Builder
	if err := run(&b, 0, "Z"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunJSON(t *testing.T) {
	var b strings.Builder
	if err := runJSON(&b); err != nil {
		t.Fatalf("runJSON: %v", err)
	}
	var report struct {
		Table2      []any `json:"table2"`
		Table3      []any `json:"table3"`
		Experiments []struct {
			ID           string `json:"id"`
			MatchesPaper bool   `json:"matchesPaper"`
			Erratum      string `json:"erratum"`
		} `json:"experiments"`
	}
	if err := json.Unmarshal([]byte(b.String()), &report); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(report.Table2) != 7 || len(report.Table3) != 7 || len(report.Experiments) != 4 {
		t.Fatalf("report shape: %d/%d/%d", len(report.Table2), len(report.Table3), len(report.Experiments))
	}
	if report.Experiments[0].ID != "A" || report.Experiments[0].MatchesPaper || report.Experiments[0].Erratum == "" {
		t.Fatalf("experiment A = %+v", report.Experiments[0])
	}
	for _, e := range report.Experiments[1:] {
		if !e.MatchesPaper {
			t.Fatalf("experiment %s should match paper", e.ID)
		}
	}
}
