// Command vodsim regenerates the paper's case study: the network-status
// table (Table 2), the Link Validation Numbers (Table 3), the Dijkstra walk
// tables (Tables 4 and 5), and the four routing experiments A-D.
//
// Usage:
//
//	vodsim            # everything
//	vodsim -table 3   # one table
//	vodsim -exp B     # one experiment (A-D)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dvod/internal/experiments"
	"dvod/internal/grnet"
)

func main() {
	table := flag.Int("table", 0, "print one table (2-5); 0 prints all")
	exp := flag.String("exp", "", "run one experiment (A-D); empty runs all")
	asJSON := flag.Bool("json", false, "emit the whole reproduction as one JSON document")
	flag.Parse()
	var err error
	if *asJSON {
		err = runJSON(os.Stdout)
	} else {
		err = run(os.Stdout, *table, *exp)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "vodsim:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, table int, exp string) error {
	all := table == 0 && exp == ""
	if table == 2 || all {
		rows, err := experiments.Table2()
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "Table 2. The Network status (measured via emulated SNMP)")
		fmt.Fprintln(w, experiments.FormatTable2(rows))
	}
	if table == 3 || all {
		rows, err := experiments.Table3()
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "Table 3. The Link Validation Numbers (recomputed vs paper)")
		fmt.Fprintln(w, experiments.FormatTable3(rows))
	}
	if table == 4 || all {
		if err := printTrace(w, "A", 4); err != nil {
			return err
		}
	}
	if table == 5 || all {
		if err := printTrace(w, "B", 5); err != nil {
			return err
		}
	}
	ids := []string{exp}
	if exp == "" {
		if !all && table != 0 {
			return nil
		}
		ids = []string{"A", "B", "C", "D"}
	}
	for _, id := range ids {
		res, err := experiments.RunExperiment(id)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, experiments.FormatExperiment(res))
	}
	return nil
}

func printTrace(w io.Writer, expID string, tableNum int) error {
	res, err := experiments.RunExperiment(expID)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Table %d. The Dijkstra's algorithm table for experiment %s (source %s)\n",
		tableNum, expID, res.Experiment.Home)
	fmt.Fprintln(w, experiments.FormatTrace(res.Trace, grnet.Patra))
	return nil
}
