package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCheckDir pins what the linter flags and what it forgives: documented
// and unexported symbols pass; undocumented exported types, funcs, methods,
// and consts fail; grouped const blocks are covered by the block comment;
// methods on unexported types and test files are skipped.
func TestCheckDir(t *testing.T) {
	dir := t.TempDir()
	src := `package demo

// Documented is fine.
type Documented struct{}

type Undocumented struct{}

// DoDocumented is fine.
func DoDocumented() {}

func DoUndocumented() {}

// Block comment covers the whole group.
const (
	GroupedA = 1
	GroupedB = 2
)

const LoneConst = 3

func (Documented) Method() {}

type hidden struct{}

func (hidden) Exposed() {}

func internalHelper() {}
`
	if err := os.WriteFile(filepath.Join(dir, "demo.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	testSrc := "package demo\n\nfunc TestOnlyHelper() {}\n"
	if err := os.WriteFile(filepath.Join(dir, "demo_test.go"), []byte(testSrc), 0o644); err != nil {
		t.Fatal(err)
	}

	bad, err := checkDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(bad, "\n")
	for _, want := range []string{"Undocumented", "DoUndocumented", "Documented.Method", "LoneConst"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing a flag for %s:\n%s", want, joined)
		}
	}
	for _, clean := range []string{"DoDocumented", "GroupedA", "GroupedB", "Exposed", "internalHelper", "TestOnlyHelper"} {
		for _, line := range bad {
			if strings.Contains(line, clean) {
				t.Errorf("%s flagged but should pass: %s", clean, line)
			}
		}
	}
	if len(bad) != 4 {
		t.Errorf("flagged %d symbols, want 4:\n%s", len(bad), joined)
	}
}
