// Command lintdocs fails when an exported symbol in the given package
// directories lacks a doc comment. The concurrency-model documentation this
// repo promises (DESIGN.md "Concurrency model & sharding") lives in godoc:
// every exported type, function, method, constant, and variable of the hot-path
// packages must state its thread-safety contract, and this check keeps that
// from rotting as the packages grow.
//
// Usage:
//
//	go run ./cmd/lintdocs ./internal/db ./internal/admission ./internal/catalog
//
// Test files are skipped. Exit status 1 lists every undocumented symbol as
// file:line: name.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: lintdocs <package-dir> [package-dir...]")
		os.Exit(2)
	}
	var bad []string
	for _, dir := range os.Args[1:] {
		missing, err := checkDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lintdocs:", err)
			os.Exit(2)
		}
		bad = append(bad, missing...)
	}
	if len(bad) > 0 {
		for _, m := range bad {
			fmt.Fprintln(os.Stderr, m)
		}
		fmt.Fprintf(os.Stderr, "lintdocs: %d exported symbols lack doc comments\n", len(bad))
		os.Exit(1)
	}
}

// checkDir parses one package directory (tests excluded) and returns a
// file:line: name entry per undocumented exported symbol.
func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var bad []string
	report := func(pos token.Pos, name string) {
		p := fset.Position(pos)
		bad = append(bad, fmt.Sprintf("%s:%d: %s is exported but undocumented", p.Filename, p.Line, name))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Name.IsExported() && d.Doc == nil && !receiverUnexported(d) {
						report(d.Pos(), funcName(d))
					}
				case *ast.GenDecl:
					bad = append(bad, checkGenDecl(fset, d)...)
				}
			}
		}
	}
	return bad, nil
}

// receiverUnexported reports whether a method hangs off an unexported type,
// whose methods godoc never surfaces.
func receiverUnexported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return false
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	// Strip generic receiver type parameters.
	if idx, ok := t.(*ast.IndexExpr); ok {
		t = idx.X
	}
	id, ok := t.(*ast.Ident)
	return ok && !id.IsExported()
}

// funcName renders Type.Method for methods, the bare name otherwise.
func funcName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + d.Name.Name
	}
	return d.Name.Name
}

// checkGenDecl flags undocumented exported names in a type/const/var block. A
// doc comment on the block covers every name in it — the idiomatic grouped
// const style — and a per-spec comment covers that spec.
func checkGenDecl(fset *token.FileSet, d *ast.GenDecl) []string {
	if d.Tok == token.IMPORT {
		return nil
	}
	var bad []string
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
				p := fset.Position(s.Pos())
				bad = append(bad, fmt.Sprintf("%s:%d: type %s is exported but undocumented", p.Filename, p.Line, s.Name.Name))
			}
		case *ast.ValueSpec:
			if d.Doc != nil || s.Doc != nil || s.Comment != nil {
				continue
			}
			for _, name := range s.Names {
				if name.IsExported() {
					p := fset.Position(name.Pos())
					bad = append(bad, fmt.Sprintf("%s:%d: %s is exported but undocumented", p.Filename, p.Line, name.Name))
				}
			}
		}
	}
	return bad
}
