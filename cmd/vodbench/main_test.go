package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestRunSingleStudies(t *testing.T) {
	cases := []struct {
		study string
		want  string
	}{
		{"striping", "Ext-4"},
		{"k", "Ext-5"},
		{"cluster", "Ext-3"},
		{"admission", "Ext-12"},
	}
	for _, tc := range cases {
		var b strings.Builder
		if err := run(&b, tc.study, 1, time.Minute, 0.01, "premium:1", "", ""); err != nil {
			t.Fatalf("run(%s): %v", tc.study, err)
		}
		if !strings.Contains(b.String(), tc.want) {
			t.Errorf("run(%s) missing %q:\n%s", tc.study, tc.want, b.String())
		}
	}
}

func TestRunRoutingStudyShortTrace(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "routing", 1, 15*time.Minute, 0.01, "premium:1", "", ""); err != nil {
		t.Fatalf("run(routing): %v", err)
	}
	out := b.String()
	if !strings.Contains(out, "vra") || !strings.Contains(out, "minhop") {
		t.Fatalf("routing output:\n%s", out)
	}
}

func TestRunUnknownStudy(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "bogus", 1, time.Minute, 1, "premium:1", "", ""); err == nil {
		t.Fatal("unknown study accepted")
	}
}

// TestRunAllStudies exercises every study once with a short routing trace.
func TestRunAllStudies(t *testing.T) {
	if testing.Short() {
		t.Skip("full study sweep")
	}
	dir := t.TempDir()
	var b strings.Builder
	if err := run(&b, "all", 1, 15*time.Minute, 0.01, "premium:0.2,standard:0.5,background:0.3", dir, filepath.Join(dir, "BENCH_framing.json")); err != nil {
		t.Fatalf("run(all): %v", err)
	}
	// The CSV exports landed.
	for _, name := range []string{"routing", "cache", "cluster", "striping",
		"granularity", "scale", "parallel", "blocking", "placement", "adaptation", "admission", "framing"} {
		data, err := os.ReadFile(filepath.Join(dir, name+".csv"))
		if err != nil {
			t.Errorf("csv %s: %v", name, err)
			continue
		}
		if !strings.Contains(string(data), ",") {
			t.Errorf("csv %s looks empty: %q", name, data)
		}
	}
	out := b.String()
	for _, want := range []string{
		"Ext-1", "Ext-2", "Ext-3", "Ext-4", "Ext-5", "Ext-6", "Ext-7", "Ext-8", "Ext-9", "Ext-10", "Ext-11", "Ext-12", "Ext-13",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %s", want)
		}
	}
	// The framing baseline landed as JSON.
	data, err := os.ReadFile(filepath.Join(dir, "BENCH_framing.json"))
	if err != nil {
		t.Fatalf("framing baseline: %v", err)
	}
	if !strings.Contains(string(data), `"framing"`) {
		t.Errorf("framing baseline looks wrong: %q", data)
	}
}
