package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dvod/internal/experiments"
)

func TestRunSingleStudies(t *testing.T) {
	cases := []struct {
		study string
		want  string
	}{
		{"striping", "Ext-4"},
		{"k", "Ext-5"},
		{"cluster", "Ext-3"},
		{"admission", "Ext-12"},
	}
	for _, tc := range cases {
		var b strings.Builder
		if err := run(&b, tc.study, 1, time.Minute, 0.01, "premium:1", "", "", "", "", "", "", "", "", "", "", "", "", "", "", "", "", ""); err != nil {
			t.Fatalf("run(%s): %v", tc.study, err)
		}
		if !strings.Contains(b.String(), tc.want) {
			t.Errorf("run(%s) missing %q:\n%s", tc.study, tc.want, b.String())
		}
	}
}

func TestRunRoutingStudyShortTrace(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "routing", 1, 15*time.Minute, 0.01, "premium:1", "", "", "", "", "", "", "", "", "", "", "", "", "", "", "", "", ""); err != nil {
		t.Fatalf("run(routing): %v", err)
	}
	out := b.String()
	if !strings.Contains(out, "vra") || !strings.Contains(out, "minhop") {
		t.Fatalf("routing output:\n%s", out)
	}
}

func TestRunUnknownStudy(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "bogus", 1, time.Minute, 1, "premium:1", "", "", "", "", "", "", "", "", "", "", "", "", "", "", "", "", ""); err == nil {
		t.Fatal("unknown study accepted")
	}
}

// TestRunFramingBaselineRoundTrip writes a framing baseline, verifies a
// fresh run passes the gate against it, and verifies a baseline whose cells
// the run no longer measures is refused.
func TestRunFramingBaselineRoundTrip(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "BENCH_framing.json")
	var b strings.Builder
	if err := run(&b, "framing", 7, time.Minute, 0.01, "premium:1", "", baseline, "", "", "", "", "", "", "", "", "", "", "", "", "", "", ""); err != nil {
		t.Fatalf("framing baseline write: %v", err)
	}
	if err := run(&b, "framing", 7, time.Minute, 0.01, "premium:1", "", "", baseline, "", "", "", "", "", "", "", "", "", "", "", "", "", ""); err != nil {
		t.Fatalf("framing baseline check: %v", err)
	}
	// A baseline promising a framing arm the run does not measure fails.
	bogus := `{"study":"framing","rows":[{"Framing":"quic","ClusterBytes":65536,"MBps":1}]}`
	if err := os.WriteFile(baseline, []byte(bogus), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(&b, "framing", 7, time.Minute, 0.01, "premium:1", "", "", baseline, "", "", "", "", "", "", "", "", "", "", "", "", "", ""); err == nil {
		t.Fatal("baseline with unmeasured cells accepted")
	}
}

// TestRunContentionBaselineRoundTrip writes a contention baseline, verifies a
// fresh run passes the gate against it, and verifies an empty baseline is
// refused.
func TestRunContentionBaselineRoundTrip(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "BENCH_contention.json")
	var b strings.Builder
	if err := run(&b, "contention", 7, time.Minute, 0.01, "premium:1", "", "", "", "", "", "", "", "", "", "", "", baseline, "", "", "", "", ""); err != nil {
		t.Fatalf("contention baseline write: %v", err)
	}
	if err := run(&b, "contention", 7, time.Minute, 0.01, "premium:1", "", "", "", "", "", "", "", "", "", "", "", "", baseline, "", "", "", ""); err != nil {
		t.Fatalf("contention baseline check: %v", err)
	}
	if err := os.WriteFile(baseline, []byte(`{"study":"contention","rows":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(&b, "contention", 7, time.Minute, 0.01, "premium:1", "", "", "", "", "", "", "", "", "", "", "", "", baseline, "", "", "", ""); err == nil {
		t.Fatal("empty baseline accepted")
	}
}

// TestRunChaosBaselineRoundTrip writes a chaos baseline, verifies a fresh run
// passes the regression gate against it, and verifies a baseline promising an
// impossible MTTR fails the gate.
func TestRunChaosBaselineRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("two full chaos study runs")
	}
	dir := t.TempDir()
	baseline := filepath.Join(dir, "BENCH_chaos.json")
	var b strings.Builder
	if err := run(&b, "chaos", 7, time.Minute, 0.01, "premium:1", "", "", "", "", "", baseline, "", "", "", "", "", "", "", "", "", "", ""); err != nil {
		t.Fatalf("chaos baseline write: %v", err)
	}
	if err := run(&b, "chaos", 7, time.Minute, 0.01, "premium:1", "", "", "", "", "", "", baseline, "", "", "", "", "", "", "", "", "", ""); err != nil {
		t.Fatalf("chaos baseline check: %v", err)
	}
	// A baseline claiming a zero-MTTR flap recovery demands the impossible:
	// the real defended arm rides out a ~100 ms outage, far past the 50 ms
	// absolute slack, so the gate must fail.
	doctored := `{"study":"chaos","rows":[{"Schedule":"flap","Mode":"defended","FailedRate":0,"RebufferRate":9,"MTTRms":0}]}`
	if err := os.WriteFile(baseline, []byte(doctored), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(&b, "chaos", 7, time.Minute, 0.01, "premium:1", "", "", "", "", "", "", baseline, "", "", "", "", "", "", "", "", "", ""); err == nil {
		t.Fatal("doctored baseline accepted")
	}
}

// TestRunMergeBaselineRoundTrip writes a merge baseline and verifies a fresh
// run passes the regression gate against it, while a doctored baseline
// demanding an impossible saving fails it.
func TestRunMergeBaselineRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("two full merge study runs")
	}
	dir := t.TempDir()
	baseline := filepath.Join(dir, "BENCH_merge.json")
	var b strings.Builder
	if err := run(&b, "merge", 1, time.Minute, 0.01, "premium:1", "", "", "", baseline, "", "", "", "", "", "", "", "", "", "", "", "", ""); err != nil {
		t.Fatalf("merge baseline write: %v", err)
	}
	if err := run(&b, "merge", 1, time.Minute, 0.01, "premium:1", "", "", "", "", baseline, "", "", "", "", "", "", "", "", "", "", "", ""); err != nil {
		t.Fatalf("merge baseline check: %v", err)
	}
	// Inflate the recorded unicast reads so the baseline demands a saving no
	// real run can reach: the gate must fail.
	data, err := os.ReadFile(baseline)
	if err != nil {
		t.Fatal(err)
	}
	doctored := strings.ReplaceAll(string(data), `"OriginReads": 12288`, `"OriginReads": 12288000`)
	if doctored == string(data) {
		t.Fatalf("baseline did not contain the expected unicast read count:\n%s", data)
	}
	if err := os.WriteFile(baseline, []byte(doctored), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(&b, "merge", 1, time.Minute, 0.01, "premium:1", "", "", "", "", baseline, "", "", "", "", "", "", "", "", "", "", "", ""); err == nil {
		t.Fatal("doctored baseline accepted")
	}
}

// TestRunLedgerBaselineRoundTrip writes a ledger baseline, verifies a fresh
// run passes the gate against it, and verifies a run gated against a baseline
// cannot hide oversubscription (a doctored current run is simulated by gating
// a per-server-only baseline, which the gate rejects as missing its arm).
func TestRunLedgerBaselineRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("two full ledger study runs")
	}
	dir := t.TempDir()
	baseline := filepath.Join(dir, "BENCH_ledger.json")
	var b strings.Builder
	if err := run(&b, "ledger", 7, time.Minute, 0.01, "premium:1", "", "", "", "", "", "", "", baseline, "", "", "", "", "", "", "", "", ""); err != nil {
		t.Fatalf("ledger baseline write: %v", err)
	}
	if err := run(&b, "ledger", 7, time.Minute, 0.01, "premium:1", "", "", "", "", "", "", "", "", baseline, "", "", "", "", "", "", "", ""); err != nil {
		t.Fatalf("ledger baseline check: %v", err)
	}
	// An empty baseline carries nothing to certify against: the gate must
	// refuse rather than silently pass.
	if err := os.WriteFile(baseline, []byte(`{"study":"ledger","rows":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(&b, "ledger", 7, time.Minute, 0.01, "premium:1", "", "", "", "", "", "", "", "", baseline, "", "", "", "", "", "", "", ""); err == nil {
		t.Fatal("empty baseline accepted")
	}
}

// TestRunChurnBaselineRoundTrip writes a churn baseline, verifies a fresh run
// passes the gate against it, and verifies an empty baseline is refused.
func TestRunChurnBaselineRoundTrip(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "BENCH_churn.json")
	var b strings.Builder
	if err := run(&b, "churn", 7, time.Minute, 0.01, "premium:1", "", "", "", "", "", "", "", "", "", baseline, "", "", "", "", "", "", ""); err != nil {
		t.Fatalf("churn baseline write: %v", err)
	}
	if err := run(&b, "churn", 7, time.Minute, 0.01, "premium:1", "", "", "", "", "", "", "", "", "", "", baseline, "", "", "", "", "", ""); err != nil {
		t.Fatalf("churn baseline check: %v", err)
	}
	if err := os.WriteFile(baseline, []byte(`{"study":"churn","rows":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(&b, "churn", 7, time.Minute, 0.01, "premium:1", "", "", "", "", "", "", "", "", "", "", baseline, "", "", "", "", "", ""); err == nil {
		t.Fatal("empty baseline accepted")
	}
}

// TestMembershipGateRoundTrip exercises the Ext-19 CLI gate without re-running
// the study (the full grid runs in TestRunAllStudies): a healthy report passes
// against itself, an empty baseline is refused, and doctored current rows —
// a false Failed verdict, or delta bytes creeping toward full sync — fail.
func TestMembershipGateRoundTrip(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "BENCH_membership.json")
	rows := []experiments.MembershipRow{
		{Nodes: 512, Mode: "full", Converged: true, Detected: true,
			ConvergeRounds: 5, DetectRounds: 15, SteadyBytesPerRound: 22000000},
		{Nodes: 512, Mode: "delta", Converged: true, Detected: true,
			ConvergeRounds: 5, DetectRounds: 15, SteadyBytesPerRound: 1300000},
	}
	data, err := json.Marshal(membershipReport{Study: "membership", Rows: rows})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(baseline, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := checkMembershipBaseline(&b, rows, baseline); err != nil {
		t.Fatalf("healthy rows failed the gate: %v", err)
	}
	falseFailed := append([]experiments.MembershipRow(nil), rows...)
	falseFailed[1].FalseFailed = 1
	if err := checkMembershipBaseline(&b, falseFailed, baseline); err == nil {
		t.Fatal("false Failed verdict passed the gate")
	}
	fat := append([]experiments.MembershipRow(nil), rows...)
	fat[1].SteadyBytesPerRound = 9000000
	if err := checkMembershipBaseline(&b, fat, baseline); err == nil {
		t.Fatal("delta bytes within 5x of full passed the gate")
	}
	if err := os.WriteFile(baseline, []byte(`{"study":"membership","rows":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := checkMembershipBaseline(&b, rows, baseline); err == nil {
		t.Fatal("empty baseline accepted")
	}
}

// TestPrefixGateRoundTrip exercises the Ext-20 CLI gate without re-running the
// study (the full three-arm run lands in TestRunAllStudies): a healthy report
// passes against itself, doctored rows — remote startups on a prefix arm, a
// collapsed origin-read cut, relay fallbacks — fail, and an empty baseline
// still gates the structural bounds.
func TestPrefixGateRoundTrip(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "BENCH_prefix.json")
	rows := []experiments.PrefixRow{
		{Arm: "baseline", Watchers: 120, OriginReads: 5120,
			StartupP99Ms: 40, StartupRemoteFetches: 120, Procs: 1},
		{Arm: "prefix", Watchers: 120, PrefixK: 512, OriginReads: 2560,
			StartupP99Ms: 30, PrefixServed: 61440, Procs: 1},
		{Arm: "prefix+relay", Watchers: 120, PrefixK: 512, OriginReads: 512,
			StartupP99Ms: 30, PrefixServed: 61440, RelayUpstreams: 5, Procs: 1},
	}
	data, err := json.Marshal(prefixReport{Study: "prefix", Rows: rows})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(baseline, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := checkPrefixBaseline(&b, rows, baseline); err != nil {
		t.Fatalf("healthy rows failed the gate: %v", err)
	}
	if !strings.Contains(b.String(), "WARNING") {
		t.Fatalf("single-core gate must warn about the relaxed startup bound:\n%s", b.String())
	}
	remote := append([]experiments.PrefixRow(nil), rows...)
	remote[2].StartupRemoteFetches = 7
	if err := checkPrefixBaseline(&b, remote, baseline); err == nil {
		t.Fatal("remote startups on the relay arm passed the gate")
	}
	weak := append([]experiments.PrefixRow(nil), rows...)
	weak[2].OriginReads = 2000 // 2.6x cut, below the 5x target
	if err := checkPrefixBaseline(&b, weak, baseline); err == nil {
		t.Fatal("collapsed origin-read cut passed the gate")
	}
	fallen := append([]experiments.PrefixRow(nil), rows...)
	fallen[2].RelayFallbacks = 3
	if err := checkPrefixBaseline(&b, fallen, baseline); err == nil {
		t.Fatal("relay fallbacks passed the gate")
	}
}
