package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestRunSingleStudies(t *testing.T) {
	cases := []struct {
		study string
		want  string
	}{
		{"striping", "Ext-4"},
		{"k", "Ext-5"},
		{"cluster", "Ext-3"},
		{"admission", "Ext-12"},
	}
	for _, tc := range cases {
		var b strings.Builder
		if err := run(&b, tc.study, 1, time.Minute, 0.01, "premium:1", "", "", "", "", "", "", "", "", "", "", "", "", ""); err != nil {
			t.Fatalf("run(%s): %v", tc.study, err)
		}
		if !strings.Contains(b.String(), tc.want) {
			t.Errorf("run(%s) missing %q:\n%s", tc.study, tc.want, b.String())
		}
	}
}

func TestRunRoutingStudyShortTrace(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "routing", 1, 15*time.Minute, 0.01, "premium:1", "", "", "", "", "", "", "", "", "", "", "", "", ""); err != nil {
		t.Fatalf("run(routing): %v", err)
	}
	out := b.String()
	if !strings.Contains(out, "vra") || !strings.Contains(out, "minhop") {
		t.Fatalf("routing output:\n%s", out)
	}
}

func TestRunUnknownStudy(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "bogus", 1, time.Minute, 1, "premium:1", "", "", "", "", "", "", "", "", "", "", "", "", ""); err == nil {
		t.Fatal("unknown study accepted")
	}
}

// TestRunAllStudies exercises every study once with a short routing trace.
func TestRunAllStudies(t *testing.T) {
	if testing.Short() {
		t.Skip("full study sweep")
	}
	dir := t.TempDir()
	var b strings.Builder
	if err := run(&b, "all", 1, 15*time.Minute, 0.01, "premium:0.2,standard:0.5,background:0.3", dir, filepath.Join(dir, "BENCH_framing.json"), "", filepath.Join(dir, "BENCH_merge.json"), "", filepath.Join(dir, "BENCH_chaos.json"), "", filepath.Join(dir, "BENCH_ledger.json"), "", filepath.Join(dir, "BENCH_churn.json"), "", "", ""); err != nil {
		t.Fatalf("run(all): %v", err)
	}
	// The CSV exports landed.
	for _, name := range []string{"routing", "cache", "cluster", "striping",
		"granularity", "scale", "parallel", "blocking", "placement", "adaptation", "admission", "framing", "merge", "chaos", "ledger", "churn", "contention"} {
		data, err := os.ReadFile(filepath.Join(dir, name+".csv"))
		if err != nil {
			t.Errorf("csv %s: %v", name, err)
			continue
		}
		if !strings.Contains(string(data), ",") {
			t.Errorf("csv %s looks empty: %q", name, data)
		}
	}
	out := b.String()
	for _, want := range []string{
		"Ext-1", "Ext-2", "Ext-3", "Ext-4", "Ext-5", "Ext-6", "Ext-7", "Ext-8", "Ext-9", "Ext-10", "Ext-11", "Ext-12", "Ext-13", "Ext-14", "Ext-15", "Ext-16", "Ext-17", "Ext-18",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %s", want)
		}
	}
	// The framing and merge baselines landed as JSON.
	data, err := os.ReadFile(filepath.Join(dir, "BENCH_framing.json"))
	if err != nil {
		t.Fatalf("framing baseline: %v", err)
	}
	if !strings.Contains(string(data), `"framing"`) {
		t.Errorf("framing baseline looks wrong: %q", data)
	}
	data, err = os.ReadFile(filepath.Join(dir, "BENCH_merge.json"))
	if err != nil {
		t.Fatalf("merge baseline: %v", err)
	}
	if !strings.Contains(string(data), `"merge"`) {
		t.Errorf("merge baseline looks wrong: %q", data)
	}
	data, err = os.ReadFile(filepath.Join(dir, "BENCH_chaos.json"))
	if err != nil {
		t.Fatalf("chaos baseline: %v", err)
	}
	if !strings.Contains(string(data), `"chaos"`) {
		t.Errorf("chaos baseline looks wrong: %q", data)
	}
	data, err = os.ReadFile(filepath.Join(dir, "BENCH_ledger.json"))
	if err != nil {
		t.Fatalf("ledger baseline: %v", err)
	}
	if !strings.Contains(string(data), `"ledger"`) {
		t.Errorf("ledger baseline looks wrong: %q", data)
	}
	data, err = os.ReadFile(filepath.Join(dir, "BENCH_churn.json"))
	if err != nil {
		t.Fatalf("churn baseline: %v", err)
	}
	if !strings.Contains(string(data), `"churn"`) {
		t.Errorf("churn baseline looks wrong: %q", data)
	}
}

// TestRunFramingBaselineRoundTrip writes a framing baseline, verifies a
// fresh run passes the gate against it, and verifies a baseline whose cells
// the run no longer measures is refused.
func TestRunFramingBaselineRoundTrip(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "BENCH_framing.json")
	var b strings.Builder
	if err := run(&b, "framing", 7, time.Minute, 0.01, "premium:1", "", baseline, "", "", "", "", "", "", "", "", "", "", ""); err != nil {
		t.Fatalf("framing baseline write: %v", err)
	}
	if err := run(&b, "framing", 7, time.Minute, 0.01, "premium:1", "", "", baseline, "", "", "", "", "", "", "", "", "", ""); err != nil {
		t.Fatalf("framing baseline check: %v", err)
	}
	// A baseline promising a framing arm the run does not measure fails.
	bogus := `{"study":"framing","rows":[{"Framing":"quic","ClusterBytes":65536,"MBps":1}]}`
	if err := os.WriteFile(baseline, []byte(bogus), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(&b, "framing", 7, time.Minute, 0.01, "premium:1", "", "", baseline, "", "", "", "", "", "", "", "", "", ""); err == nil {
		t.Fatal("baseline with unmeasured cells accepted")
	}
}

// TestRunContentionBaselineRoundTrip writes a contention baseline, verifies a
// fresh run passes the gate against it, and verifies an empty baseline is
// refused.
func TestRunContentionBaselineRoundTrip(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "BENCH_contention.json")
	var b strings.Builder
	if err := run(&b, "contention", 7, time.Minute, 0.01, "premium:1", "", "", "", "", "", "", "", "", "", "", "", baseline, ""); err != nil {
		t.Fatalf("contention baseline write: %v", err)
	}
	if err := run(&b, "contention", 7, time.Minute, 0.01, "premium:1", "", "", "", "", "", "", "", "", "", "", "", "", baseline); err != nil {
		t.Fatalf("contention baseline check: %v", err)
	}
	if err := os.WriteFile(baseline, []byte(`{"study":"contention","rows":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(&b, "contention", 7, time.Minute, 0.01, "premium:1", "", "", "", "", "", "", "", "", "", "", "", "", baseline); err == nil {
		t.Fatal("empty baseline accepted")
	}
}

// TestRunChaosBaselineRoundTrip writes a chaos baseline, verifies a fresh run
// passes the regression gate against it, and verifies a baseline promising an
// impossible MTTR fails the gate.
func TestRunChaosBaselineRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("two full chaos study runs")
	}
	dir := t.TempDir()
	baseline := filepath.Join(dir, "BENCH_chaos.json")
	var b strings.Builder
	if err := run(&b, "chaos", 7, time.Minute, 0.01, "premium:1", "", "", "", "", "", baseline, "", "", "", "", "", "", ""); err != nil {
		t.Fatalf("chaos baseline write: %v", err)
	}
	if err := run(&b, "chaos", 7, time.Minute, 0.01, "premium:1", "", "", "", "", "", "", baseline, "", "", "", "", "", ""); err != nil {
		t.Fatalf("chaos baseline check: %v", err)
	}
	// A baseline claiming a zero-MTTR flap recovery demands the impossible:
	// the real defended arm rides out a ~100 ms outage, far past the 50 ms
	// absolute slack, so the gate must fail.
	doctored := `{"study":"chaos","rows":[{"Schedule":"flap","Mode":"defended","FailedRate":0,"RebufferRate":9,"MTTRms":0}]}`
	if err := os.WriteFile(baseline, []byte(doctored), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(&b, "chaos", 7, time.Minute, 0.01, "premium:1", "", "", "", "", "", "", baseline, "", "", "", "", "", ""); err == nil {
		t.Fatal("doctored baseline accepted")
	}
}

// TestRunMergeBaselineRoundTrip writes a merge baseline and verifies a fresh
// run passes the regression gate against it, while a doctored baseline
// demanding an impossible saving fails it.
func TestRunMergeBaselineRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("two full merge study runs")
	}
	dir := t.TempDir()
	baseline := filepath.Join(dir, "BENCH_merge.json")
	var b strings.Builder
	if err := run(&b, "merge", 1, time.Minute, 0.01, "premium:1", "", "", "", baseline, "", "", "", "", "", "", "", "", ""); err != nil {
		t.Fatalf("merge baseline write: %v", err)
	}
	if err := run(&b, "merge", 1, time.Minute, 0.01, "premium:1", "", "", "", "", baseline, "", "", "", "", "", "", "", ""); err != nil {
		t.Fatalf("merge baseline check: %v", err)
	}
	// Inflate the recorded unicast reads so the baseline demands a saving no
	// real run can reach: the gate must fail.
	data, err := os.ReadFile(baseline)
	if err != nil {
		t.Fatal(err)
	}
	doctored := strings.ReplaceAll(string(data), `"OriginReads": 12288`, `"OriginReads": 12288000`)
	if doctored == string(data) {
		t.Fatalf("baseline did not contain the expected unicast read count:\n%s", data)
	}
	if err := os.WriteFile(baseline, []byte(doctored), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(&b, "merge", 1, time.Minute, 0.01, "premium:1", "", "", "", "", baseline, "", "", "", "", "", "", "", ""); err == nil {
		t.Fatal("doctored baseline accepted")
	}
}

// TestRunLedgerBaselineRoundTrip writes a ledger baseline, verifies a fresh
// run passes the gate against it, and verifies a run gated against a baseline
// cannot hide oversubscription (a doctored current run is simulated by gating
// a per-server-only baseline, which the gate rejects as missing its arm).
func TestRunLedgerBaselineRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("two full ledger study runs")
	}
	dir := t.TempDir()
	baseline := filepath.Join(dir, "BENCH_ledger.json")
	var b strings.Builder
	if err := run(&b, "ledger", 7, time.Minute, 0.01, "premium:1", "", "", "", "", "", "", "", baseline, "", "", "", "", ""); err != nil {
		t.Fatalf("ledger baseline write: %v", err)
	}
	if err := run(&b, "ledger", 7, time.Minute, 0.01, "premium:1", "", "", "", "", "", "", "", "", baseline, "", "", "", ""); err != nil {
		t.Fatalf("ledger baseline check: %v", err)
	}
	// An empty baseline carries nothing to certify against: the gate must
	// refuse rather than silently pass.
	if err := os.WriteFile(baseline, []byte(`{"study":"ledger","rows":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(&b, "ledger", 7, time.Minute, 0.01, "premium:1", "", "", "", "", "", "", "", "", baseline, "", "", "", ""); err == nil {
		t.Fatal("empty baseline accepted")
	}
}

// TestRunChurnBaselineRoundTrip writes a churn baseline, verifies a fresh run
// passes the gate against it, and verifies an empty baseline is refused.
func TestRunChurnBaselineRoundTrip(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "BENCH_churn.json")
	var b strings.Builder
	if err := run(&b, "churn", 7, time.Minute, 0.01, "premium:1", "", "", "", "", "", "", "", "", "", baseline, "", "", ""); err != nil {
		t.Fatalf("churn baseline write: %v", err)
	}
	if err := run(&b, "churn", 7, time.Minute, 0.01, "premium:1", "", "", "", "", "", "", "", "", "", "", baseline, "", ""); err != nil {
		t.Fatalf("churn baseline check: %v", err)
	}
	if err := os.WriteFile(baseline, []byte(`{"study":"churn","rows":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(&b, "churn", 7, time.Minute, 0.01, "premium:1", "", "", "", "", "", "", "", "", "", "", baseline, "", ""); err == nil {
		t.Fatal("empty baseline accepted")
	}
}
