// The full sweep drives every study once, including Ext-19's 1000-node
// fleet cells — minutes under the race detector for no extra interleaving
// coverage (the membership simulation is single-threaded). The race CI lane
// covers each subsystem through its dedicated matrix steps instead; this
// sweep runs in the plain test lane.
//go:build !race

package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestRunAllStudies exercises every study once with a short routing trace.
func TestRunAllStudies(t *testing.T) {
	if testing.Short() {
		t.Skip("full study sweep")
	}
	dir := t.TempDir()
	var b strings.Builder
	if err := run(&b, "all", 1, 15*time.Minute, 0.01, "premium:0.2,standard:0.5,background:0.3", dir, filepath.Join(dir, "BENCH_framing.json"), "", filepath.Join(dir, "BENCH_merge.json"), "", filepath.Join(dir, "BENCH_chaos.json"), "", filepath.Join(dir, "BENCH_ledger.json"), "", filepath.Join(dir, "BENCH_churn.json"), "", "", "", filepath.Join(dir, "BENCH_membership.json"), "", filepath.Join(dir, "BENCH_prefix.json"), ""); err != nil {
		t.Fatalf("run(all): %v", err)
	}
	// The CSV exports landed.
	for _, name := range []string{"routing", "cache", "cluster", "striping",
		"granularity", "scale", "parallel", "blocking", "placement", "adaptation", "admission", "framing", "merge", "chaos", "ledger", "churn", "contention", "membership", "prefix"} {
		data, err := os.ReadFile(filepath.Join(dir, name+".csv"))
		if err != nil {
			t.Errorf("csv %s: %v", name, err)
			continue
		}
		if !strings.Contains(string(data), ",") {
			t.Errorf("csv %s looks empty: %q", name, data)
		}
	}
	out := b.String()
	for _, want := range []string{
		"Ext-1", "Ext-2", "Ext-3", "Ext-4", "Ext-5", "Ext-6", "Ext-7", "Ext-8", "Ext-9", "Ext-10", "Ext-11", "Ext-12", "Ext-13", "Ext-14", "Ext-15", "Ext-16", "Ext-17", "Ext-18", "Ext-19", "Ext-20",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %s", want)
		}
	}
	// The framing and merge baselines landed as JSON.
	data, err := os.ReadFile(filepath.Join(dir, "BENCH_framing.json"))
	if err != nil {
		t.Fatalf("framing baseline: %v", err)
	}
	if !strings.Contains(string(data), `"framing"`) {
		t.Errorf("framing baseline looks wrong: %q", data)
	}
	data, err = os.ReadFile(filepath.Join(dir, "BENCH_merge.json"))
	if err != nil {
		t.Fatalf("merge baseline: %v", err)
	}
	if !strings.Contains(string(data), `"merge"`) {
		t.Errorf("merge baseline looks wrong: %q", data)
	}
	data, err = os.ReadFile(filepath.Join(dir, "BENCH_chaos.json"))
	if err != nil {
		t.Fatalf("chaos baseline: %v", err)
	}
	if !strings.Contains(string(data), `"chaos"`) {
		t.Errorf("chaos baseline looks wrong: %q", data)
	}
	data, err = os.ReadFile(filepath.Join(dir, "BENCH_ledger.json"))
	if err != nil {
		t.Fatalf("ledger baseline: %v", err)
	}
	if !strings.Contains(string(data), `"ledger"`) {
		t.Errorf("ledger baseline looks wrong: %q", data)
	}
	data, err = os.ReadFile(filepath.Join(dir, "BENCH_churn.json"))
	if err != nil {
		t.Fatalf("churn baseline: %v", err)
	}
	if !strings.Contains(string(data), `"churn"`) {
		t.Errorf("churn baseline looks wrong: %q", data)
	}
	data, err = os.ReadFile(filepath.Join(dir, "BENCH_membership.json"))
	if err != nil {
		t.Fatalf("membership baseline: %v", err)
	}
	if !strings.Contains(string(data), `"membership"`) {
		t.Errorf("membership baseline looks wrong: %q", data)
	}
	data, err = os.ReadFile(filepath.Join(dir, "BENCH_prefix.json"))
	if err != nil {
		t.Fatalf("prefix baseline: %v", err)
	}
	if !strings.Contains(string(data), `"prefix"`) {
		t.Errorf("prefix baseline looks wrong: %q", data)
	}
}
