// Command vodbench runs the extension studies catalogued in DESIGN.md:
//
//	Ext-1  -study routing   VRA vs min-hop/random/static under diurnal load
//	Ext-2  -study cache     DMA vs LRU/LFU/none across Zipf skews
//	Ext-3  -study cluster   cluster size vs mid-stream adaptivity
//	Ext-4  -study striping  striping width vs read parallelism
//	Ext-5  -study k         normalization-constant sensitivity
//	Ext-6  -study granularity  whole-title vs segment caching (partial viewing)
//	Ext-7  -study scale     VRA decision latency vs network size
//	Ext-8  -study parallel  single-server vs multi-server parallel fetch
//	Ext-9  -study blocking  admission control: blocking vs offered load
//	Ext-10 -study placement initial replica placement quality (k-median)
//	Ext-11 -study adaptation cache recovery speed after a popularity flip
//	Ext-12 -study admission per-class admission vs best-effort (-class-mix)
//	Ext-13 -study framing   JSON vs binary cluster framing over live TCP
//	Ext-14 -study merge     shared-prefix stream merging vs unicast delivery
//	Ext-15 -study chaos     fault injection: defended vs bare delivery plane
//	Ext-16 -study ledger    per-server vs ledger-backed link admission
//	Ext-17 -study churn     elastic membership: join / drain / kill lifecycle
//	Ext-18 -study contention sharded admission + lock-free read hot paths
//	Ext-19 -study membership WAN membership: delta-sync gossip at fleet scale
//	Ext-20 -study prefix    prefix replication tier + cohort relays (flash crowd)
//	       -study all       everything (default)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"dvod/internal/experiments"
	"dvod/internal/media"
)

func main() {
	study := flag.String("study", "all", "routing | cache | cluster | striping | k | all")
	seed := flag.Int64("seed", 1, "random seed for workload generation")
	duration := flag.Duration("duration", time.Hour, "simulated trace duration (routing study)")
	rate := flag.Float64("rate", 0.02, "request arrivals per second (routing study)")
	classMix := flag.String("class-mix", "premium:0.2,standard:0.5,background:0.3",
		"class:weight list for the admission study")
	csvDir := flag.String("csv", "", "also write each study's rows as CSV into this directory")
	framingOut := flag.String("framing-out", "",
		"write the framing study's rows as a JSON baseline to this file (framing study only)")
	framingBaseline := flag.String("framing-baseline", "",
		"gate the framing study against this baseline file: kernel rows present and taking the kernel path, proc-aware kernel-over-binary speedup (framing study only)")
	mergeOut := flag.String("merge-out", "",
		"write the merge study's rows as a JSON baseline to this file (merge study only)")
	mergeBaseline := flag.String("merge-baseline", "",
		"compare the merge study's origin-read savings against this baseline file and fail on >20% regression (merge study only)")
	chaosOut := flag.String("chaos-out", "",
		"write the chaos study's rows as a JSON baseline to this file (chaos study only)")
	chaosBaseline := flag.String("chaos-baseline", "",
		"compare the chaos study's defended failed-watch and rebuffer rates against this baseline file and fail on >20% regression (chaos study only)")
	ledgerOut := flag.String("ledger-out", "",
		"write the ledger study's rows as a JSON baseline to this file (ledger study only)")
	ledgerBaseline := flag.String("ledger-baseline", "",
		"gate the ledger study against this baseline file: oversubscription must stay 0 with the ledger on (ledger study only)")
	churnOut := flag.String("churn-out", "",
		"write the churn study's rows as a JSON baseline to this file (churn study only)")
	churnBaseline := flag.String("churn-baseline", "",
		"gate the churn study against this baseline file: zero failed watches and full admit rate through every phase (churn study only)")
	contentionOut := flag.String("contention-out", "",
		"write the contention study's rows as a JSON baseline to this file (contention study only)")
	contentionBaseline := flag.String("contention-baseline", "",
		"gate the contention study against this baseline file: absolute admissions/sec floor plus baseline-relative shard scaling (contention study only)")
	membershipOut := flag.String("membership-out", "",
		"write the membership study's rows as a JSON baseline to this file (membership study only)")
	membershipBaseline := flag.String("membership-baseline", "",
		"gate the membership study against this baseline file: delta bytes/round at least 5x under full sync, convergence within 2x, zero false Failed verdicts under the loss plan (membership study only)")
	prefixOut := flag.String("prefix-out", "",
		"write the prefix study's rows as a JSON baseline to this file (prefix study only)")
	prefixBaseline := flag.String("prefix-baseline", "",
		"gate the prefix study against this baseline file: zero remote startups on the prefix arms, at least 5x fewer origin reads with cohort relays, proc-aware startup P99 halving (prefix study only)")
	flag.Parse()
	if err := run(os.Stdout, *study, *seed, *duration, *rate, *classMix, *csvDir, *framingOut, *framingBaseline, *mergeOut, *mergeBaseline, *chaosOut, *chaosBaseline, *ledgerOut, *ledgerBaseline, *churnOut, *churnBaseline, *contentionOut, *contentionBaseline, *membershipOut, *membershipBaseline, *prefixOut, *prefixBaseline); err != nil {
		fmt.Fprintln(os.Stderr, "vodbench:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, study string, seed int64, duration time.Duration, rate float64, classMix, csvDir, framingOut, framingBaseline, mergeOut, mergeBaseline, chaosOut, chaosBaseline, ledgerOut, ledgerBaseline, churnOut, churnBaseline, contentionOut, contentionBaseline, membershipOut, membershipBaseline, prefixOut, prefixBaseline string) error {
	writeCSV := func(name string, rows any) error {
		if csvDir == "" {
			return nil
		}
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(csvDir, name+".csv"))
		if err != nil {
			return err
		}
		defer f.Close()
		return experiments.WriteRowsCSV(f, rows)
	}
	known := false
	if study == "routing" || study == "all" {
		known = true
		cfg := experiments.DefaultRoutingStudyConfig()
		cfg.Seed = seed
		cfg.Duration = duration
		cfg.RatePerSec = rate
		rows, err := experiments.RoutingStudy(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "Ext-1. Routing policy comparison (identical diurnal trace per policy)")
		fmt.Fprintln(w, experiments.FormatRoutingStudy(rows))
		if err := writeCSV("routing", rows); err != nil {
			return err
		}
	}
	if study == "cache" || study == "all" {
		known = true
		cfg := experiments.DefaultCacheStudyConfig()
		cfg.Seed = seed
		cells, err := experiments.CacheStudy(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "Ext-2. Cache policy comparison across Zipf skews (20% cache)")
		fmt.Fprintln(w, experiments.FormatCacheStudy(cells))
		if err := writeCSV("cache", cells); err != nil {
			return err
		}
	}
	if study == "cluster" || study == "all" {
		known = true
		cfg := experiments.DefaultClusterSweepConfig()
		cfg.Seed = seed
		rows, err := experiments.ClusterSweep(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "Ext-3. Cluster size vs mid-stream re-routing (congestion injected at 2s)")
		fmt.Fprintln(w, experiments.FormatClusterSweep(rows))
		if err := writeCSV("cluster", rows); err != nil {
			return err
		}
	}
	if study == "striping" || study == "all" {
		known = true
		title := media.Title{Name: "feature", SizeBytes: 64 << 20, BitrateMbps: 1.5}
		rows, err := experiments.StripingSweep(title, 256<<10, []int{1, 2, 4, 8, 16})
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "Ext-4. Striping width vs modeled read parallelism (64 MiB title)")
		fmt.Fprintln(w, experiments.FormatStripingSweep(rows))
		if err := writeCSV("striping", rows); err != nil {
			return err
		}
	}
	if study == "k" || study == "all" {
		known = true
		rows, err := experiments.KSweep([]float64{1, 2, 5, 10, 20, 50, 100})
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "Ext-5. Normalization constant K vs case-study decisions")
		fmt.Fprintln(w, experiments.FormatKSweep(rows))
	}
	if study == "granularity" || study == "all" {
		known = true
		cfg := experiments.DefaultGranularityStudyConfig()
		cfg.Seed = seed
		rows, err := experiments.GranularityStudy(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "Ext-6. Caching granularity under partial viewing (10-100% watched)")
		fmt.Fprintln(w, experiments.FormatGranularityStudy(rows))
		if err := writeCSV("granularity", rows); err != nil {
			return err
		}
	}
	if study == "scale" || study == "all" {
		known = true
		cfg := experiments.DefaultScalabilityStudyConfig()
		cfg.Seed = seed
		rows, err := experiments.ScalabilityStudy(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "Ext-7. VRA decision latency vs network size (random topologies)")
		fmt.Fprintln(w, experiments.FormatScalabilityStudy(rows))
		if err := writeCSV("scale", rows); err != nil {
			return err
		}
	}
	if study == "parallel" || study == "all" {
		known = true
		rows, err := experiments.ParallelFetch(experiments.DefaultParallelFetchConfig())
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "Ext-8. Single-server vs multi-server parallel fetch (8am, 3 replicas)")
		fmt.Fprintln(w, experiments.FormatParallelFetch(rows))
		if err := writeCSV("parallel", rows); err != nil {
			return err
		}
	}
	if study == "blocking" || study == "all" {
		known = true
		cfg := experiments.DefaultBlockingStudyConfig()
		cfg.Seed = seed
		cells, err := experiments.BlockingStudy(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "Ext-9. Admission control: blocking probability vs offered load")
		fmt.Fprintln(w, experiments.FormatBlockingStudy(cells))
		if err := writeCSV("blocking", cells); err != nil {
			return err
		}
	}
	if study == "placement" || study == "all" {
		known = true
		cfg := experiments.DefaultPlacementStudyConfig()
		cfg.Seed = seed
		rows, err := experiments.PlacementStudy(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "Ext-10. Initial replica placement quality (4pm, skewed demand)")
		fmt.Fprintln(w, experiments.FormatPlacementStudy(rows))
		if err := writeCSV("placement", rows); err != nil {
			return err
		}
	}
	if study == "adaptation" || study == "all" {
		known = true
		cfg := experiments.DefaultAdaptationStudyConfig()
		cfg.Seed = seed
		rows, err := experiments.AdaptationStudy(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "Ext-11. Cache adaptation after a popularity flip (windowed hit ratio)")
		fmt.Fprintln(w, experiments.FormatAdaptationStudy(rows))
		if err := writeCSV("adaptation", rows); err != nil {
			return err
		}
	}
	if study == "admission" || study == "all" {
		known = true
		mix, err := experiments.ParseClassMix(classMix)
		if err != nil {
			return err
		}
		cfg := experiments.DefaultAdmissionStudyConfig()
		cfg.Seed = seed
		cfg.Mix = mix
		cells, err := experiments.AdmissionStudy(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "Ext-12. Per-class admission vs best-effort (mix "+classMix+")")
		fmt.Fprintln(w, experiments.FormatAdmissionStudy(cells))
		if err := writeCSV("admission", cells); err != nil {
			return err
		}
	}
	if study == "framing" || study == "all" {
		known = true
		rows, err := experiments.FramingStudy(experiments.DefaultFramingStudyConfig())
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "Ext-13. JSON vs binary cluster framing (live TCP, single node)")
		fmt.Fprintln(w, experiments.FormatFramingStudy(rows))
		if err := writeCSV("framing", rows); err != nil {
			return err
		}
		if framingOut != "" {
			data, err := json.MarshalIndent(framingReport{Study: "framing", Rows: rows}, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(framingOut, append(data, '\n'), 0o644); err != nil {
				return err
			}
		}
		if framingBaseline != "" {
			if err := checkFramingBaseline(w, rows, framingBaseline); err != nil {
				return err
			}
		}
	}
	if study == "merge" || study == "all" {
		known = true
		cfg := experiments.DefaultMergeStudyConfig()
		cfg.Seed = seed
		rows, err := experiments.MergeStudy(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "Ext-14. Shared-prefix stream merging vs unicast (concurrent watchers, remote origin)")
		fmt.Fprintln(w, experiments.FormatMergeStudy(rows))
		if err := writeCSV("merge", rows); err != nil {
			return err
		}
		if mergeOut != "" {
			data, err := json.MarshalIndent(mergeReport{Study: "merge", Rows: rows}, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(mergeOut, append(data, '\n'), 0o644); err != nil {
				return err
			}
		}
		if mergeBaseline != "" {
			if err := checkMergeBaseline(w, rows, mergeBaseline); err != nil {
				return err
			}
		}
	}
	if study == "chaos" || study == "all" {
		known = true
		cfg := experiments.DefaultChaosStudyConfig()
		cfg.Seed = seed
		rows, err := experiments.ChaosStudy(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "Ext-15. Fault injection: defended vs bare delivery plane (canned schedules)")
		fmt.Fprintln(w, experiments.FormatChaosStudy(rows))
		if err := writeCSV("chaos", rows); err != nil {
			return err
		}
		if chaosOut != "" {
			data, err := json.MarshalIndent(chaosReport{Study: "chaos", Rows: rows}, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(chaosOut, append(data, '\n'), 0o644); err != nil {
				return err
			}
		}
		if chaosBaseline != "" {
			if err := checkChaosBaseline(w, rows, chaosBaseline); err != nil {
				return err
			}
		}
	}
	if study == "ledger" || study == "all" {
		known = true
		cfg := experiments.DefaultLedgerStudyConfig()
		cfg.Seed = seed
		rows, err := experiments.LedgerStudy(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "Ext-16. Link admission: per-server vs ledger-backed brokers (contended trunk)")
		fmt.Fprintln(w, experiments.FormatLedgerStudy(rows))
		if err := writeCSV("ledger", rows); err != nil {
			return err
		}
		if ledgerOut != "" {
			data, err := json.MarshalIndent(ledgerReport{Study: "ledger", Rows: rows}, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(ledgerOut, append(data, '\n'), 0o644); err != nil {
				return err
			}
		}
		if ledgerBaseline != "" {
			if err := checkLedgerBaseline(w, rows, ledgerBaseline); err != nil {
				return err
			}
		}
	}
	if study == "churn" || study == "all" {
		known = true
		cfg := experiments.DefaultChurnStudyConfig()
		cfg.Seed = seed
		rows, err := experiments.ChurnStudy(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "Ext-17. Elastic membership: watches through join / drain / kill")
		fmt.Fprintln(w, experiments.FormatChurnStudy(rows))
		if err := writeCSV("churn", rows); err != nil {
			return err
		}
		if churnOut != "" {
			data, err := json.MarshalIndent(churnReport{Study: "churn", Rows: rows}, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(churnOut, append(data, '\n'), 0o644); err != nil {
				return err
			}
		}
		if churnBaseline != "" {
			if err := checkChurnBaseline(w, rows, churnBaseline); err != nil {
				return err
			}
		}
	}
	if study == "contention" || study == "all" {
		known = true
		rows, err := experiments.ContentionStudy(experiments.DefaultContentionStudyConfig())
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "Ext-18. Hot-path contention: sharded admission + lock-free reads")
		fmt.Fprintln(w, experiments.FormatContentionStudy(rows))
		if err := writeCSV("contention", rows); err != nil {
			return err
		}
		if contentionOut != "" {
			data, err := json.MarshalIndent(contentionReport{Study: "contention", Rows: rows}, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(contentionOut, append(data, '\n'), 0o644); err != nil {
				return err
			}
		}
		if contentionBaseline != "" {
			if err := checkContentionBaseline(w, rows, contentionBaseline); err != nil {
				return err
			}
		}
	}
	if study == "membership" || study == "all" {
		known = true
		cfg := experiments.DefaultMembershipStudyConfig()
		cfg.Seed = seed
		rows, err := experiments.MembershipStudy(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "Ext-19. WAN membership: delta-sync gossip vs full views under loss")
		fmt.Fprintln(w, experiments.FormatMembershipStudy(rows))
		if err := writeCSV("membership", rows); err != nil {
			return err
		}
		if membershipOut != "" {
			data, err := json.MarshalIndent(membershipReport{Study: "membership", Rows: rows}, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(membershipOut, append(data, '\n'), 0o644); err != nil {
				return err
			}
		}
		if membershipBaseline != "" {
			if err := checkMembershipBaseline(w, rows, membershipBaseline); err != nil {
				return err
			}
		}
	}
	if study == "prefix" || study == "all" {
		known = true
		cfg := experiments.DefaultPrefixStudyConfig()
		rows, err := experiments.PrefixStudy(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "Ext-20. Prefix replication tier + cohort relays under a flash crowd")
		fmt.Fprintln(w, experiments.FormatPrefixStudy(rows))
		if err := writeCSV("prefix", rows); err != nil {
			return err
		}
		if prefixOut != "" {
			data, err := json.MarshalIndent(prefixReport{Study: "prefix", Rows: rows}, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(prefixOut, append(data, '\n'), 0o644); err != nil {
				return err
			}
		}
		if prefixBaseline != "" {
			if err := checkPrefixBaseline(w, rows, prefixBaseline); err != nil {
				return err
			}
		}
	}
	if !known {
		return fmt.Errorf("unknown study %q", study)
	}
	return nil
}

// framingReport is the committed BENCH_framing.json schema.
type framingReport struct {
	Study string                   `json:"study"`
	Rows  []experiments.FramingRow `json:"rows"`
}

// checkFramingBaseline gates the framing study. Structural bounds (kernel
// rows measured, kernel path actually taken on Linux) bind on every machine;
// the kernel-over-binary speedup target only binds where the runner can
// demonstrate it — see FramingRegression for the proc-aware rules, which
// print their single-core warning loudly instead of silently weakening the
// gate.
func checkFramingBaseline(w io.Writer, rows []experiments.FramingRow, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base framingReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("framing baseline %s: %w", path, err)
	}
	bad, notes := experiments.FramingRegression(rows, base.Rows)
	for _, n := range notes {
		fmt.Fprintln(w, n)
	}
	if len(bad) > 0 {
		return fmt.Errorf("framing regression: %s", strings.Join(bad, "; "))
	}
	fmt.Fprintln(w, "framing baseline check passed")
	return nil
}

// contentionReport is the committed BENCH_contention.json schema.
type contentionReport struct {
	Study string                      `json:"study"`
	Rows  []experiments.ContentionRow `json:"rows"`
}

// checkContentionBaseline gates the contention study. The absolute
// admissions/sec floor and lock-free-read liveness bind on every machine;
// shard-scaling and raw-throughput comparisons only bind to the degree the
// baseline machine could demonstrate them (see ContentionRegression) so a
// baseline recorded on few cores never makes the gate flake on many, or vice
// versa. The gate's notes — in particular the loud warning that a sub-4-proc
// baseline cannot set the scaling bound — are printed verbatim.
func checkContentionBaseline(w io.Writer, rows []experiments.ContentionRow, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base contentionReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("contention baseline %s: %w", path, err)
	}
	for _, r := range base.Rows {
		fmt.Fprintf(w, "contention baseline shards=%d: %.0f adm/sec %.0f reads/sec (procs %d)\n",
			r.Shards, r.AdmissionsPerSec, r.SnapshotReadsPerSec, r.Procs)
	}
	bad, notes := experiments.ContentionRegression(rows, base.Rows)
	for _, n := range notes {
		fmt.Fprintln(w, n)
	}
	if len(bad) > 0 {
		return fmt.Errorf("contention regression: %s", strings.Join(bad, "; "))
	}
	return nil
}

// ledgerReport is the committed BENCH_ledger.json schema.
type ledgerReport struct {
	Study string                  `json:"study"`
	Rows  []experiments.LedgerRow `json:"rows"`
}

// checkLedgerBaseline gates the ledger study: zero oversubscribed-link-seconds
// with the ledger on (an absolute bound — any positive value is a correctness
// bug), at least one rejection on the full trunk, and blind per-server brokers
// still granting everything (the contrast the study exists to show).
func checkLedgerBaseline(w io.Writer, rows []experiments.LedgerRow, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base ledgerReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("ledger baseline %s: %w", path, err)
	}
	for _, r := range rows {
		fmt.Fprintf(w, "ledger baseline %s: oversub %.3fs rejected %d/%d\n",
			r.Mode, r.OversubscribedLinkSeconds, r.Rejected, r.Watchers)
	}
	if bad := experiments.LedgerRegression(rows, base.Rows); len(bad) > 0 {
		return fmt.Errorf("ledger regression: %s", strings.Join(bad, "; "))
	}
	return nil
}

// churnReport is the committed BENCH_churn.json schema.
type churnReport struct {
	Study string                 `json:"study"`
	Rows  []experiments.ChurnRow `json:"rows"`
}

// checkChurnBaseline gates the churn study on its structural invariants: all
// four lifecycle phases present, zero failed watches and a 1.0 admit rate in
// each, the front door actually bouncing during steady and drain, and the
// failure detector actually firing after the kill.
func checkChurnBaseline(w io.Writer, rows []experiments.ChurnRow, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base churnReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("churn baseline %s: %w", path, err)
	}
	for _, r := range rows {
		fmt.Fprintf(w, "churn baseline %s: granted %d/%d redirects %d mean hops %.2f\n",
			r.Phase, r.Granted, r.Watches, r.Redirects, r.MeanRedirectHops)
	}
	if bad := experiments.ChurnRegression(rows, base.Rows); len(bad) > 0 {
		return fmt.Errorf("churn regression: %s", strings.Join(bad, "; "))
	}
	return nil
}

// membershipReport is the committed BENCH_membership.json schema.
type membershipReport struct {
	Study string                      `json:"study"`
	Rows  []experiments.MembershipRow `json:"rows"`
}

// checkMembershipBaseline gates the membership study on its structural
// invariants: every cell converged and detected the kills, delta steady
// bytes at least 5x under full sync per size, delta convergence within 2x of
// full's, and zero false Failed verdicts anywhere under the loss plan. The
// checks count rounds and bytes, not wall-clock, so the gate is stable on
// loaded CI machines.
func checkMembershipBaseline(w io.Writer, rows []experiments.MembershipRow, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base membershipReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("membership baseline %s: %w", path, err)
	}
	for _, r := range rows {
		fmt.Fprintf(w, "membership baseline %d/%s: converge %d detect %d bytes/round %d falseFailed %d\n",
			r.Nodes, r.Mode, r.ConvergeRounds, r.DetectRounds, r.SteadyBytesPerRound, r.FalseFailed)
	}
	if bad := experiments.MembershipRegression(rows, base.Rows); len(bad) > 0 {
		return fmt.Errorf("membership regression: %s", strings.Join(bad, "; "))
	}
	return nil
}

// prefixReport is the committed BENCH_prefix.json schema.
type prefixReport struct {
	Study string                  `json:"study"`
	Rows  []experiments.PrefixRow `json:"rows"`
}

// checkPrefixBaseline gates the prefix study. Structural bounds bind on every
// machine: zero announced remote startups on the prefix arms, prefix reads
// actually served, one shared relay upstream with no fallbacks, and the
// prefix+relay arm's origin reads at least 5x under the same run's baseline
// arm (and within 20% of the committed baseline's cut). The startup-P99
// halving binds only at GOMAXPROCS >= 4; below that, the gate relaxes to a
// loose parity bound and says so loudly.
func checkPrefixBaseline(w io.Writer, rows []experiments.PrefixRow, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base prefixReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("prefix baseline %s: %w", path, err)
	}
	for _, r := range rows {
		fmt.Fprintf(w, "prefix baseline %s: originReads %d startP99 %.1fms remoteStarts %d prefixServed %d upstreams %d\n",
			r.Arm, r.OriginReads, r.StartupP99Ms, r.StartupRemoteFetches, r.PrefixServed, r.RelayUpstreams)
	}
	bad, notes := experiments.PrefixRegression(rows, base.Rows)
	for _, n := range notes {
		fmt.Fprintln(w, n)
	}
	if len(bad) > 0 {
		return fmt.Errorf("prefix regression: %s", strings.Join(bad, "; "))
	}
	return nil
}

// chaosReport is the committed BENCH_chaos.json schema.
type chaosReport struct {
	Study string                 `json:"study"`
	Rows  []experiments.ChaosRow `json:"rows"`
}

// checkChaosBaseline compares the current run's defended failed-watch and
// rebuffer rates per schedule against the committed baseline and fails on a
// >20% (plus small absolute slack) regression. Only the defended arms are
// gated: the bare arms exist to show what the defense buys, and their failure
// rates are the fault schedule's, not the code's.
func checkChaosBaseline(w io.Writer, rows []experiments.ChaosRow, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base chaosReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("chaos baseline %s: %w", path, err)
	}
	if len(base.Rows) == 0 {
		return fmt.Errorf("chaos baseline %s holds no rows to compare", path)
	}
	for _, r := range rows {
		if r.Mode == "defended" {
			fmt.Fprintf(w, "chaos baseline %s: failed %.2f rebuffer %.2f\n", r.Schedule, r.FailedRate, r.RebufferRate)
		}
	}
	if bad := experiments.ChaosRegression(rows, base.Rows); len(bad) > 0 {
		return fmt.Errorf("chaos regression: %s", strings.Join(bad, "; "))
	}
	return nil
}

// mergeReport is the committed BENCH_merge.json schema.
type mergeReport struct {
	Study string                 `json:"study"`
	Rows  []experiments.MergeRow `json:"rows"`
}

// checkMergeBaseline compares the current run's origin-read saving per
// pattern against the committed baseline and fails on a >20% regression.
// The saving ratio is structural (reads shared per cohort), not wall-clock,
// so the gate is stable on loaded CI machines.
func checkMergeBaseline(w io.Writer, rows []experiments.MergeRow, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base mergeReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("merge baseline %s: %w", path, err)
	}
	want := experiments.MergeSavings(base.Rows)
	got := experiments.MergeSavings(rows)
	if len(want) == 0 {
		return fmt.Errorf("merge baseline %s holds no savings to compare", path)
	}
	for pattern, baseline := range want {
		current, ok := got[pattern]
		if !ok {
			return fmt.Errorf("merge baseline: pattern %q missing from current run", pattern)
		}
		fmt.Fprintf(w, "merge baseline %s: saving %.2fx (baseline %.2fx)\n", pattern, current, baseline)
		if current < 0.8*baseline {
			return fmt.Errorf("merge regression: %s origin-read saving %.2fx fell >20%% below baseline %.2fx",
				pattern, current, baseline)
		}
	}
	return nil
}
