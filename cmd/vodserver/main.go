// Command vodserver runs a live VoD deployment: one video server per GRNET
// site on consecutive localhost ports, a synthetic title library distributed
// round-robin, SNMP polling of delivered traffic, and (optionally) the
// paper's web interface modules over HTTP. It prints each endpoint and
// serves until interrupted.
//
// Usage:
//
//	vodserver -base-port 9100 -titles 6 -web-port 9090 -admin-token secret
//
// Connect with cmd/vodclient; browse http://127.0.0.1:9090/titles.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dvod"
	"dvod/internal/media"
)

// config carries the parsed flags.
type config struct {
	basePort     int
	numTitles    int
	titleBytes   int64
	clusterBytes int64
	snmpInterval time.Duration
	webPort      int
	adminToken   string
	topologyPath string
	mergeWindow  int
	dataDir      string
}

func main() {
	var cfg config
	flag.IntVar(&cfg.basePort, "base-port", 9100, "first TCP port; node Ui listens on base-port+i-1 (0 = ephemeral)")
	flag.IntVar(&cfg.numTitles, "titles", 6, "synthetic titles to generate")
	flag.Int64Var(&cfg.titleBytes, "title-bytes", 1<<20, "size of each title")
	flag.Int64Var(&cfg.clusterBytes, "cluster-bytes", 128<<10, "cluster size c")
	flag.DurationVar(&cfg.snmpInterval, "snmp-interval", 30*time.Second, "statistics refresh period")
	flag.IntVar(&cfg.webPort, "web-port", 0, "serve the web interface modules on this port (0 = disabled)")
	flag.StringVar(&cfg.adminToken, "admin-token", "", "bearer token for the limited-access module")
	flag.StringVar(&cfg.topologyPath, "topology", "", "topology JSON file (default: the GRNET backbone)")
	flag.IntVar(&cfg.mergeWindow, "merge-window", 0, "stream-merging window in clusters (0 = one stream per session)")
	flag.StringVar(&cfg.dataDir, "data-dir", "", "back every disk with block files under this directory (empty = in-memory); enables the kernel sendfile path on Linux")
	flag.Parse()

	dep, err := setup(os.Stdout, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vodserver:", err)
		os.Exit(1)
	}
	defer dep.Close()
	fmt.Println("\nserving; press Ctrl-C to stop")
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
}

// deployment is a running vodserver instance.
type deployment struct {
	Service *dvod.Service
	WebAddr string
	webLn   net.Listener
}

// Close shuts everything down.
func (d *deployment) Close() {
	if d.webLn != nil {
		_ = d.webLn.Close()
	}
	_ = d.Service.Close()
}

// setup builds, starts, and populates the deployment, printing endpoints to
// w. It is separated from main for testability.
func setup(w io.Writer, cfg config) (*deployment, error) {
	spec := dvod.GRNETTopology()
	if cfg.topologyPath != "" {
		var err error
		spec, err = dvod.LoadTopologyFile(cfg.topologyPath)
		if err != nil {
			return nil, err
		}
	}
	opts := []dvod.Option{
		dvod.WithClusterBytes(cfg.clusterBytes),
		dvod.WithSNMPInterval(cfg.snmpInterval),
		dvod.WithFailover(5*time.Second, 20*time.Second),
	}
	if cfg.mergeWindow != 0 {
		opts = append(opts, dvod.WithMergeWindow(cfg.mergeWindow))
	}
	if cfg.dataDir != "" {
		opts = append(opts, dvod.WithFileBackedDisks(cfg.dataDir))
	}
	for i, node := range spec.Nodes {
		addr := "127.0.0.1:0"
		if cfg.basePort > 0 {
			addr = fmt.Sprintf("127.0.0.1:%d", cfg.basePort+i)
		}
		opts = append(opts, dvod.WithListenAddr(node, addr))
	}
	svc, err := dvod.New(spec, opts...)
	if err != nil {
		return nil, err
	}
	if err := svc.Start(); err != nil {
		return nil, err
	}
	dep := &deployment{Service: svc}

	lib, err := media.GenerateLibrary(media.LibrarySpec{
		Count:       cfg.numTitles,
		MinBytes:    cfg.titleBytes,
		MaxBytes:    cfg.titleBytes,
		BitrateMbps: 1.5,
		NamePrefix:  "movie",
	}, rand.New(rand.NewSource(1)))
	if err != nil {
		dep.Close()
		return nil, err
	}
	for i, t := range lib {
		if err := svc.AddTitle(t); err != nil {
			dep.Close()
			return nil, err
		}
		node := spec.Nodes[i%len(spec.Nodes)]
		if err := svc.Preload(node, t.Name); err != nil {
			dep.Close()
			return nil, err
		}
		fmt.Fprintf(w, "title %-12s (%d bytes) preloaded on %s (%s)\n",
			t.Name, t.SizeBytes, node, dvod.GRNETCityName(node))
	}
	fmt.Fprintln(w)
	for _, node := range spec.Nodes {
		addr, err := svc.ServerAddr(node)
		if err != nil {
			dep.Close()
			return nil, err
		}
		fmt.Fprintf(w, "server %s (%-12s) listening on %s\n", node, dvod.GRNETCityName(node), addr)
	}

	if cfg.webPort >= 0 && (cfg.webPort > 0 || cfg.adminToken != "") {
		handler, err := svc.WebHandler(cfg.adminToken)
		if err != nil {
			dep.Close()
			return nil, err
		}
		ln, err := net.Listen("tcp", fmt.Sprintf("127.0.0.1:%d", cfg.webPort))
		if err != nil {
			dep.Close()
			return nil, err
		}
		dep.webLn = ln
		dep.WebAddr = ln.Addr().String()
		go func() {
			_ = http.Serve(ln, handler) // returns when ln closes
		}()
		fmt.Fprintf(w, "web module on http://%s (admin %s)\n",
			dep.WebAddr, enabledWord(cfg.adminToken != ""))
	}
	return dep, nil
}

func enabledWord(on bool) string {
	if on {
		return "enabled"
	}
	return "disabled"
}
