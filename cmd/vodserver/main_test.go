package main

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dvod/internal/client"
	"dvod/internal/topology"
	"dvod/internal/transport"
)

// testConfig uses ephemeral ports and small titles.
func testConfig() config {
	return config{
		basePort:     0,
		numTitles:    3,
		titleBytes:   64 << 10,
		clusterBytes: 16 << 10,
		snmpInterval: time.Second,
		webPort:      0,
		adminToken:   "tok", // forces the web module on (ephemeral port)
	}
}

func TestSetupAndWatch(t *testing.T) {
	var b strings.Builder
	dep, err := setup(&b, testConfig())
	if err != nil {
		t.Fatalf("setup: %v", err)
	}
	defer dep.Close()
	out := b.String()
	for _, want := range []string{"movie-0", "server U1", "listening on", "web module"} {
		if !strings.Contains(out, want) {
			t.Errorf("setup output missing %q:\n%s", want, out)
		}
	}

	// A client can list and watch through any home server.
	addr, err := dep.Service.ServerAddr("U2")
	if err != nil {
		t.Fatal(err)
	}
	book := transport.NewAddrBook()
	book.Set(topology.NodeID("U2"), addr)
	p, err := client.NewPlayer("U2", book)
	if err != nil {
		t.Fatal(err)
	}
	titles, err := p.ListTitles()
	if err != nil {
		t.Fatal(err)
	}
	if len(titles) != 3 {
		t.Fatalf("titles = %d", len(titles))
	}
	stats, err := p.Watch("movie-0")
	if err != nil {
		t.Fatalf("Watch: %v", err)
	}
	if !stats.Verified || stats.BytesReceived != 64<<10 {
		t.Fatalf("stats = %+v", stats)
	}

	// The web module answers.
	resp, err := http.Get("http://" + dep.WebAddr + "/titles")
	if err != nil {
		t.Fatal(err)
	}
	var webTitles []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&webTitles); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(webTitles) != 3 {
		t.Fatalf("web titles = %d", len(webTitles))
	}
}

func TestSetupWithoutWeb(t *testing.T) {
	cfg := testConfig()
	cfg.adminToken = ""
	cfg.webPort = 0
	var b strings.Builder
	dep, err := setup(&b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	if dep.WebAddr != "" {
		t.Fatalf("web module started unexpectedly at %s", dep.WebAddr)
	}
	if strings.Contains(b.String(), "web module") {
		t.Fatal("output mentions web module")
	}
}

func TestEnabledWord(t *testing.T) {
	if enabledWord(true) != "enabled" || enabledWord(false) != "disabled" {
		t.Fatal("enabledWord wrong")
	}
}

// TestSetupCustomTopology boots the deployment from a topology file.
func TestSetupCustomTopology(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "topo.json")
	topo := `{
	  "nodes": ["edge", "origin"],
	  "links": [{"a": "edge", "b": "origin", "capacityMbps": 18}]
	}`
	if err := os.WriteFile(path, []byte(topo), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.topologyPath = path
	cfg.adminToken = ""
	var b strings.Builder
	dep, err := setup(&b, cfg)
	if err != nil {
		t.Fatalf("setup: %v", err)
	}
	defer dep.Close()
	if !strings.Contains(b.String(), "server edge") || !strings.Contains(b.String(), "server origin") {
		t.Fatalf("output:\n%s", b.String())
	}
	// Bad path fails cleanly.
	cfg.topologyPath = filepath.Join(dir, "missing.json")
	if _, err := setup(&b, cfg); err == nil {
		t.Fatal("missing topology accepted")
	}
}
