package dvod

import (
	"fmt"

	"dvod/internal/grnet"
	"dvod/internal/topology"
)

// GRNETSampleTimes lists the paper's four measurement instants, in order:
// "8am", "10am", "4pm", "6pm".
func GRNETSampleTimes() []string {
	times := grnet.SampleTimes()
	out := make([]string, len(times))
	for i, t := range times {
		out[i] = t.String()
	}
	return out
}

// GRNETUtilization returns the per-link utilization fractions measured on
// the GRNET backbone at one of the paper's Table 2 sample times ("8am",
// "10am", "4pm", "6pm").
func GRNETUtilization(sample string) (map[LinkID]float64, error) {
	var st grnet.SampleTime
	for _, t := range grnet.SampleTimes() {
		if t.String() == sample {
			st = t
			break
		}
	}
	if st == 0 {
		return nil, fmt.Errorf("unknown sample time %q (want 8am, 10am, 4pm or 6pm)", sample)
	}
	out := make(map[LinkID]float64, 7)
	for _, row := range grnet.Table2() {
		out[topology.MakeLinkID(row.A, row.B)] = row.Utilization(st)
	}
	return out, nil
}

// GRNETCityName maps a GRNET node ID (U1..U6) to its city.
func GRNETCityName(n NodeID) string { return grnet.CityName(n) }
