package dvod

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"dvod/internal/client"
)

// flapCell runs one edge→origin deployment whose only route's link flaps
// mid-stream, and returns the watch outcome plus the injector's event log.
// The geometry gives playout a large lead: 4 KiB clusters at 1.5 Mbps play
// for ~22 ms each while a dragged fetch takes ~2 ms, so by the time the link
// drops at 60 ms the client holds far more buffer than the 100 ms outage.
func flapCell(t *testing.T, seed int64) (PlaybackStats, []FaultLogEntry, int64, map[NodeID]MetricsSnapshot) {
	t.Helper()
	const (
		edge   = NodeID("edge")
		origin = NodeID("origin")
	)
	const numClusters = 48
	const clusterBytes = 4 << 10
	var plan FaultPlan
	plan.SlowDisk(0, 5*time.Second, origin, 2*time.Millisecond).
		FlapLink(60*time.Millisecond, 100*time.Millisecond, MakeLinkID(edge, origin))

	spec := TopologySpec{
		Nodes: []NodeID{edge, origin},
		Links: []LinkSpec{{A: edge, B: origin, CapacityMbps: 34}},
	}
	svc, err := New(spec,
		WithClusterBytes(clusterBytes),
		WithDisks(2, numClusters*clusterBytes),
		// The edge holds one cluster: every cluster crosses the flapped link.
		WithNodeDisks(edge, 1, clusterBytes),
		WithFaultPlan(plan, seed),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	title := Title{Name: "flapped", SizeBytes: numClusters * clusterBytes, BitrateMbps: 1.5}
	if err := svc.AddTitle(title); err != nil {
		t.Fatal(err)
	}
	if err := svc.Preload(origin, title.Name); err != nil {
		t.Fatal(err)
	}
	if err := svc.Start(); err != nil {
		t.Fatal(err)
	}
	// The acceptance premise: the active route crosses the link the plan flaps.
	dec, err := svc.Plan(edge, title.Name)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Local || dec.Server != origin {
		t.Fatalf("route = %+v, want remote service from %s over the flapped link", dec, origin)
	}
	p, err := svc.Player(edge, client.WithResume(), client.WithDialer(svc.WatchDialer(edge)))
	if err != nil {
		t.Fatal(err)
	}
	stats, err := p.Watch(title.Name)
	if err != nil {
		t.Fatalf("watch across the flap: %v", err)
	}
	return stats, svc.FaultEvents(), svc.InjectedFaults(), svc.Metrics()
}

// TestFaultPlanFlapMidStreamCompletes is the tentpole's acceptance test: with
// a fault plan flapping the active route's bottleneck link mid-stream, the
// watch completes byte-identically (verified content, every cluster exactly
// once, in order) with at most one rebuffer, and the same (plan, seed) pair
// reproduces the identical fault event sequence on a second run.
func TestFaultPlanFlapMidStreamCompletes(t *testing.T) {
	const seed = 7
	stats, events, injected, ms := flapCell(t, seed)

	if !stats.Verified {
		t.Fatal("delivery not verified")
	}
	if stats.BytesReceived != 48*(4<<10) {
		t.Fatalf("received %d bytes, want the full title", stats.BytesReceived)
	}
	if len(stats.Records) != 48 {
		t.Fatalf("received %d clusters, want 48", len(stats.Records))
	}
	for i, rec := range stats.Records {
		if rec.Index != i {
			t.Fatalf("cluster %d arrived at position %d: gap or reorder across the resume", rec.Index, i)
		}
	}
	if stats.Stalls > 1 {
		t.Fatalf("playout stalled %d times, want at most 1", stats.Stalls)
	}
	if stats.Retries == 0 {
		t.Fatal("the flap was never felt: no client resume recorded")
	}
	if injected == 0 {
		t.Fatal("injector reports no injected faults")
	}

	// Satellite: resilience counters are exposed on the metrics surface —
	// the home server counts the recovery and the injector its injections.
	if got := ms["edge"].Counters["client.retries"]; got == 0 {
		t.Fatal("client.retries not exported on the home server")
	}
	if got := ms["_faults"].Counters["faults.injected_total"]; got != injected {
		t.Fatalf("faults.injected_total = %d, want %d", got, injected)
	}

	// Reproducibility: an identical run yields the identical event sequence.
	stats2, events2, _, _ := flapCell(t, seed)
	if !reflect.DeepEqual(events, events2) {
		t.Fatalf("same plan and seed produced different fault sequences:\n%v\n%v", events, events2)
	}
	if !stats2.Verified || stats2.BytesReceived != stats.BytesReceived {
		t.Fatalf("second run delivered %d verified=%v, want %d verified",
			stats2.BytesReceived, stats2.Verified, stats.BytesReceived)
	}
}

// TestMergedCohortPartitionSingleSharedFailover partitions the base stream's
// serving origin while a merged cohort is mid-title. The cohort must fail
// over as one shared stream — a handful of server-side retries total, not one
// storm per watcher — and every subscriber still receives the complete title
// in order.
func TestMergedCohortPartitionSingleSharedFailover(t *testing.T) {
	const (
		home = NodeID("home")
		o1   = NodeID("origin-a")
		o2   = NodeID("origin-b")
	)
	const numClusters = 64
	const clusterBytes = 4 << 10
	const watchers = 4
	var plan FaultPlan
	plan.SlowDisk(0, 5*time.Second, o1, 2*time.Millisecond).
		SlowDisk(0, 5*time.Second, o2, 2*time.Millisecond).
		FailPeer(40*time.Millisecond, 120*time.Millisecond, o1)

	spec := TopologySpec{
		Nodes: []NodeID{home, o1, o2},
		Links: []LinkSpec{
			{A: home, B: o1, CapacityMbps: 34},
			{A: home, B: o2, CapacityMbps: 34},
		},
	}
	svc, err := New(spec,
		WithClusterBytes(clusterBytes),
		WithDisks(2, numClusters*clusterBytes),
		WithNodeDisks(home, 1, clusterBytes),
		WithMergeWindow(numClusters),
		WithFaultPlan(plan, 7),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	title := Title{Name: "partitioned", SizeBytes: numClusters * clusterBytes, BitrateMbps: 1.5}
	if err := svc.AddTitle(title); err != nil {
		t.Fatal(err)
	}
	for _, origin := range []NodeID{o1, o2} {
		if err := svc.Preload(origin, title.Name); err != nil {
			t.Fatal(err)
		}
	}
	if err := svc.Start(); err != nil {
		t.Fatal(err)
	}
	// Bias routing toward origin-a so the partition hits the active source.
	if err := svc.SetLinkTraffic(home, o1, 2); err != nil {
		t.Fatal(err)
	}
	if err := svc.SetLinkTraffic(home, o2, 10); err != nil {
		t.Fatal(err)
	}

	stats := make([]PlaybackStats, watchers)
	errs := make([]error, watchers)
	var wg sync.WaitGroup
	gate := make(chan struct{})
	for i := range watchers {
		p, err := svc.Player(home)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, p *Player) {
			defer wg.Done()
			<-gate
			stats[i], errs[i] = p.Watch(title.Name)
		}(i, p)
	}
	close(gate)
	wg.Wait()

	merged := 0
	for i := range watchers {
		if errs[i] != nil {
			t.Fatalf("watcher %d failed across the partition: %v", i, errs[i])
		}
		if !stats[i].Verified {
			t.Fatalf("watcher %d delivery not verified", i)
		}
		if len(stats[i].Records) != numClusters {
			t.Fatalf("watcher %d received %d clusters, want %d", i, len(stats[i].Records), numClusters)
		}
		for j, rec := range stats[i].Records {
			if rec.Index != j {
				t.Fatalf("watcher %d cluster %d at position %d: gap across the failover", i, rec.Index, j)
			}
		}
		if stats[i].Merged {
			merged++
		}
		// One shared failover, not flapping between sources: each subscriber
		// sees at most two source switches across its whole stream.
		switches := 0
		for j := 1; j < len(stats[i].Sources); j++ {
			if stats[i].Sources[j] != stats[i].Sources[j-1] {
				switches++
			}
		}
		if switches > 2 {
			t.Fatalf("watcher %d switched sources %d times, want a single shared failover", i, switches)
		}
	}
	if merged != watchers {
		t.Fatalf("%d of %d watchers merged, want the whole cohort", merged, watchers)
	}

	ms := svc.Metrics()
	home_ := ms[home]
	if home_.Counters["merge.sessions_merged"] == 0 {
		t.Fatal("no session attached to the cohort")
	}
	retries := home_.Counters["server.fetch_retries"]
	if retries == 0 {
		t.Fatal("the partition was never felt: no fetch retries")
	}
	// Shared recovery: the breaker caps the retry storm well below one
	// failure train per watcher per cluster.
	if retries > 10 {
		t.Fatalf("fetch retries = %d, want the cohort's single shared failover", retries)
	}
	if upstream := home_.Counters["server.remote_clusters"]; 2*upstream > int64(watchers*numClusters) {
		t.Fatalf("upstream fetches %d not shared across %d watchers", upstream, watchers)
	}
	if svc.InjectedFaults() == 0 {
		t.Fatal("injector reports no injected faults")
	}
}
