module dvod

go 1.24
