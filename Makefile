GO ?= go

.PHONY: all build vet test race bench fuzz cover reproduce examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

fuzz:
	$(GO) test ./internal/transport/ -fuzz FuzzReadMessage -fuzztime 30s
	$(GO) test ./internal/transport/ -fuzz FuzzRoundTrip -fuzztime 30s
	$(GO) test ./internal/transport/ -fuzz FuzzDecodeFrame -fuzztime 30s
	$(GO) test ./internal/transport/ -fuzz FuzzLedgerSyncFrame -fuzztime 30s
	$(GO) test ./internal/transport/ -fuzz FuzzPrefixAnnounceFrame -fuzztime 30s

cover:
	$(GO) test -cover ./...

# Regenerate every paper table/figure and all extension studies.
reproduce:
	$(GO) run ./cmd/vodsim
	$(GO) run ./cmd/vodbench -study all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/grnet
	$(GO) run ./examples/streaming
	$(GO) run ./examples/adaptive
	$(GO) run ./examples/campus

clean:
	$(GO) clean ./...
