// Package dvod is a dynamic distributed Video-on-Demand service for
// best-effort IP networks, reproducing Bouras, Kapoulas, Konidaris &
// Sevasti, "A Dynamic Distributed Video on Demand Service" (ICDCS 2000).
//
// The service distributes video titles over a set of cooperating video
// servers and routes every request with two algorithms:
//
//   - the Disk Manipulation Algorithm (DMA) keeps each server's disk array
//     stocked with the titles most popular among its own clients, striping
//     each cached title across the array in fixed-size clusters;
//   - the Virtual Routing Algorithm (VRA) weights every network link with a
//     Link Validation Number derived from SNMP utilization statistics and
//     serves each request from the replica with the cheapest Dijkstra path,
//     re-evaluating at every cluster boundary so an in-flight playback can
//     switch servers when conditions change.
//
// # Quick start
//
//	svc, err := dvod.New(dvod.GRNETTopology())
//	if err != nil { ... }
//	if err := svc.Start(); err != nil { ... }
//	defer svc.Close()
//
//	title := dvod.Title{Name: "zorba", SizeBytes: 8 << 20, BitrateMbps: 1.5}
//	_ = svc.AddTitle(title)
//	_ = svc.Preload("U4", "zorba") // place the initial copy at Thessaloniki
//
//	player, _ := svc.Player("U2") // a client homed at Patra
//	stats, _ := player.Watch("zorba")
//	fmt.Println(stats.Sources)    // which server delivered each cluster
//
// For pure algorithm evaluation without sockets, use EvaluateLinks and
// SelectServer. The cmd/vodsim tool regenerates every table and figure of
// the paper's case study; see DESIGN.md and EXPERIMENTS.md.
package dvod
