package dvod_test

import (
	"fmt"
	"log"

	"dvod"
)

// ExampleSelectServer reproduces the paper's Experiment B as a stateless
// call: at 10am a Patra client's title lives at Thessaloniki and Xanthi, and
// the Virtual Routing Algorithm picks the cheaper replica.
func ExampleSelectServer() {
	util, err := dvod.GRNETUtilization("10am")
	if err != nil {
		log.Fatal(err)
	}
	dec, err := dvod.SelectServer(dvod.GRNETTopology(), util, "U2",
		[]dvod.NodeID{"U4", "U5"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("download from %s via %s\n", dvod.GRNETCityName(dec.Server), dec.Path)
	// Output:
	// download from Thessaloniki via U2,U3,U4
}

// ExampleEvaluateLinks computes one Link Validation Number from the paper's
// Table 2 measurements (the 4pm Patra-Athens cell of Table 3).
func ExampleEvaluateLinks() {
	util, err := dvod.GRNETUtilization("4pm")
	if err != nil {
		log.Fatal(err)
	}
	weights, err := dvod.EvaluateLinks(dvod.GRNETTopology(), util)
	if err != nil {
		log.Fatal(err)
	}
	target := dvod.MakeLinkID("U2", "U1")
	for _, w := range weights {
		if w.Link == target {
			fmt.Printf("LVN(Patra-Athens, 4pm) = %.3f\n", w.LVN)
		}
	}
	// Output:
	// LVN(Patra-Athens, 4pm) = 0.687
}

// ExampleService shows the minimal live deployment: publish a title, place
// one copy, and plan a request.
func ExampleService() {
	svc, err := dvod.New(dvod.GRNETTopology(), dvod.WithDisks(2, 1<<20))
	if err != nil {
		log.Fatal(err)
	}
	if err := svc.Start(); err != nil {
		log.Fatal(err)
	}
	defer svc.Close()

	title := dvod.Title{Name: "zorba", SizeBytes: 100_000, BitrateMbps: 1.5}
	if err := svc.AddTitle(title); err != nil {
		log.Fatal(err)
	}
	if err := svc.Preload("U4", "zorba"); err != nil {
		log.Fatal(err)
	}
	holders, err := svc.Holders("zorba")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("holders:", holders)
	// Output:
	// holders: [U4]
}
