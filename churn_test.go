package dvod

import (
	"testing"
	"time"

	"dvod/internal/admission"
	"dvod/internal/clock"
)

// TestClusterChurnAcceptance is the elastic-membership acceptance test: a
// three-node fleet on a virtual clock grows by one server mid-run (the DMA
// re-replicates the hottest title onto the joiner and it takes watch load),
// gracefully drains another with zero failed watches, then hard-kills a
// third — the survivors' round-counted failure detector marks it Failed and
// the event-driven hook reclaims its ledger leases immediately, with no
// virtual time advanced, far inside the lease TTL. Every phase is driven by
// synchronous gossip rounds, so the whole lifecycle is deterministic.
func TestClusterChurnAcceptance(t *testing.T) {
	const (
		alpha = NodeID("alpha")
		beta  = NodeID("beta")
		gamma = NodeID("gamma")
		delta = NodeID("delta")
	)
	clk := clock.NewVirtual(time.Unix(1_700_000_000, 0))
	spec := TopologySpec{
		Nodes: []NodeID{alpha, beta, gamma},
		Links: []LinkSpec{
			{A: alpha, B: beta, CapacityMbps: 10},
			{A: beta, B: gamma, CapacityMbps: 10},
			{A: alpha, B: gamma, CapacityMbps: 10},
		},
	}
	svc, err := New(spec,
		WithClusterBytes(4096),
		WithDisks(3, 1<<20),
		WithAdmission(100),
		WithClock(clk),
		WithMembership(250*time.Millisecond),
		WithFrontDoor(),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	zorba := Title{Name: "zorba", SizeBytes: 40_000, BitrateMbps: 1.5}
	rare := Title{Name: "rare-print", SizeBytes: 24_000, BitrateMbps: 1.5}
	for _, title := range []Title{zorba, rare} {
		if err := svc.AddTitle(title); err != nil {
			t.Fatal(err)
		}
	}
	if err := svc.Start(); err != nil {
		t.Fatal(err)
	}
	if err := svc.Preload(alpha, "zorba"); err != nil {
		t.Fatal(err)
	}
	// Beta is the sole holder of rare-print: the drain must evacuate it.
	if err := svc.Preload(beta, "rare-print"); err != nil {
		t.Fatal(err)
	}

	failedWatches := 0
	watch := func(home NodeID, title string) PlaybackStats {
		t.Helper()
		p, err := svc.Player(home)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := p.Watch(title)
		if err != nil {
			failedWatches++
			t.Fatalf("watch %q from %s failed: %v", title, home, err)
		}
		return stats
	}

	for range 3 {
		svc.MembershipRound()
	}
	if st := svc.MemberStates(alpha); st[beta] != MemberAlive || st[gamma] != MemberAlive {
		t.Fatalf("boot membership view at alpha = %v", st)
	}

	// The front door bounces a non-holder's watch to the holder — and the
	// served watches make zorba the hottest title for the coming join.
	for range 2 {
		stats := watch(beta, "zorba")
		if stats.Redirects != 1 || stats.RedirectPath[0] != alpha {
			t.Fatalf("front-door bounce = %d via %v, want 1 via [alpha]", stats.Redirects, stats.RedirectPath)
		}
	}

	// ---- Phase: join. Delta enters the running fleet.
	if err := svc.AddServer(delta, []LinkSpec{{A: delta, B: alpha, CapacityMbps: 10}}); err != nil {
		t.Fatalf("AddServer: %v", err)
	}
	if !svc.caches[delta].Resident("zorba") {
		t.Fatal("joiner was not re-replicated the hottest title")
	}
	for range 3 {
		svc.MembershipRound()
	}
	for _, viewer := range []NodeID{alpha, beta, gamma} {
		if st := svc.MemberStates(viewer); st[delta] != MemberAlive {
			t.Fatalf("%s does not see the joiner alive: %v", viewer, st)
		}
	}
	// The joiner serves its replicated title directly — no bounce.
	if stats := watch(delta, "zorba"); stats.Redirects != 0 {
		t.Fatalf("joiner bounced its own resident title %d times", stats.Redirects)
	}

	// ---- Phase: graceful drain of beta, with zero failed watches.
	if err := svc.BeginDrain(beta); err != nil {
		t.Fatalf("BeginDrain: %v", err)
	}
	holders, err := svc.Holders("rare-print")
	if err != nil {
		t.Fatal(err)
	}
	if len(holders) < 2 {
		t.Fatalf("sole holding not evacuated before the drain: holders = %v", holders)
	}
	// New watches landing on the draining node bounce away and succeed.
	if stats := watch(beta, "rare-print"); stats.Redirects == 0 {
		t.Fatal("draining node served a new watch instead of redirecting")
	}
	if stats := watch(beta, "zorba"); stats.Redirects == 0 {
		t.Fatal("draining node served a new watch instead of redirecting")
	}
	for range 3 {
		svc.MembershipRound()
	}
	if err := svc.FinishDrain(beta); err != nil {
		t.Fatalf("FinishDrain: %v", err)
	}
	for range 3 {
		svc.MembershipRound()
	}
	for _, viewer := range []NodeID{alpha, gamma, delta} {
		if st := svc.MemberStates(viewer); st[beta] != MemberLeft {
			t.Fatalf("%s did not learn the drained node left: %v", viewer, st)
		}
	}
	// The evacuated title survives its old holder's departure.
	watch(alpha, "rare-print")
	if failedWatches != 0 {
		t.Fatalf("%d watches failed across the drain, want 0", failedWatches)
	}

	// ---- Phase: hard kill of gamma. First give it a ledger lease to lose.
	ag := MakeLinkID(alpha, gamma)
	if _, err := svc.brokers[gamma].Admit(admission.Request{
		Class: admission.Premium, BitrateMbps: 3, Links: []LinkID{ag},
	}); err != nil {
		t.Fatal(err)
	}
	if r := gossipUntilConverged(svc, 8); r < 0 {
		t.Fatalf("ledgers never converged before the kill: %v", svc.LedgerDigests())
	}
	if got := svc.ledgers[alpha].RemoteReservedMbps(ag); got != 3 {
		t.Fatalf("alpha sees %g Mbps of gamma's lease pre-kill, want 3", got)
	}
	if err := svc.StopServer(gamma); err != nil {
		t.Fatal(err)
	}
	// Round-counted detection: survivors beat, gamma's heartbeat freezes,
	// Suspect after 3 quiet rounds, Failed after 6 — no wall time involved.
	for range 10 {
		svc.MembershipRound()
	}
	for _, viewer := range []NodeID{alpha, delta} {
		if st := svc.MemberStates(viewer); st[gamma] != MemberFailed {
			t.Fatalf("%s never marked the killed node failed: %v", viewer, st)
		}
	}
	// Event-driven lease reclaim: the virtual clock has not moved since the
	// kill, so this is strictly inside the 10 s TTL — the fail event, not
	// lease expiry, reclaimed the bandwidth.
	for _, survivor := range []NodeID{alpha, delta} {
		if got := svc.ledgers[survivor].RemoteReservedMbps(ag); got != 0 {
			t.Fatalf("%s still counts %g Mbps for the killed node", survivor, got)
		}
	}
	var reclaimed int64
	for _, survivor := range []NodeID{alpha, delta} {
		reclaimed += svc.Metrics()[survivor].Counters["ledger.origin_expired"]
	}
	if reclaimed == 0 {
		t.Fatal("ledger.origin_expired never incremented on the survivors")
	}
	// The shrunken fleet keeps serving.
	watch(alpha, "zorba")
	if failedWatches != 0 {
		t.Fatalf("%d watches failed across the churn, want 0", failedWatches)
	}
}

// TestChurnSuspectRecoversAfterPartition pins the non-lethal path of the
// failure detector under deterministic fault injection: a transient
// partition drives a peer to Suspect on the survivors, and the heal — the
// partitioned node's refutation at a higher incarnation — restores Alive
// without any Failed verdict or lease reclaim.
func TestChurnSuspectRecoversAfterPartition(t *testing.T) {
	const (
		a = NodeID("a1")
		b = NodeID("b1")
		c = NodeID("c1")
	)
	clk := clock.NewVirtual(time.Unix(1_700_000_000, 0))
	// Partition c between T+1s and T+2s.
	var plan FaultPlan
	plan.FailPeer(time.Second, time.Second, c)
	spec := TopologySpec{
		Nodes: []NodeID{a, b, c},
		Links: []LinkSpec{
			{A: a, B: b, CapacityMbps: 10},
			{A: b, B: c, CapacityMbps: 10},
			{A: a, B: c, CapacityMbps: 10},
		},
	}
	svc, err := New(spec,
		WithAdmission(100),
		WithClock(clk),
		WithMembership(250*time.Millisecond),
		WithFaultPlan(plan, 11),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if err := svc.Start(); err != nil {
		t.Fatal(err)
	}
	for range 2 {
		svc.MembershipRound()
	}
	if st := svc.MemberStates(a); st[c] != MemberAlive {
		t.Fatalf("pre-partition view at a = %v", st)
	}

	// Inside the partition window: c goes quiet, survivors reach Suspect
	// (3 rounds) but must not reach Failed (6) before the heal.
	clk.Advance(1200 * time.Millisecond)
	for range 4 {
		svc.MembershipRound()
	}
	if st := svc.MemberStates(a); st[c] != MemberSuspect {
		t.Fatalf("mid-partition view at a = %v, want %s suspect", st, c)
	}

	// Heal: c refutes the suspicion at a bumped incarnation and recovers.
	clk.Advance(time.Second)
	for range 4 {
		svc.MembershipRound()
	}
	for _, viewer := range []NodeID{a, b} {
		if st := svc.MemberStates(viewer); st[c] != MemberAlive {
			t.Fatalf("%s did not see the healed node recover: %v", viewer, st)
		}
	}
}
