// Benchmarks regenerating the paper's evaluation artifacts — one per table,
// figure, and experiment (see DESIGN.md's per-experiment index) — plus the
// Ext-1..Ext-5 extension studies and microbenchmarks of the core algorithm
// stages. Run with:
//
//	go test -bench=. -benchmem
package dvod_test

import (
	"testing"
	"time"

	"dvod"
	"dvod/internal/cache"
	"dvod/internal/core"
	"dvod/internal/disk"
	"dvod/internal/experiments"
	"dvod/internal/grnet"
	"dvod/internal/media"
	"dvod/internal/routing"
	"dvod/internal/striping"
	"dvod/internal/topology"
)

// --- Paper tables -----------------------------------------------------------

// BenchmarkTable2SNMPPoll regenerates Table 2: the emulated network carries
// the measured background traffic and the SNMP agents poll it into the DB at
// each of the four sample times.
func BenchmarkTable2SNMPPoll(b *testing.B) {
	for b.Loop() {
		if _, err := experiments.Table2(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3LVN regenerates Table 3: all 28 Link Validation Numbers
// from the Table 2 snapshot via equations (1)-(4).
func BenchmarkTable3LVN(b *testing.B) {
	for b.Loop() {
		if _, err := experiments.Table3(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchTrace regenerates one Dijkstra walk table.
func benchTrace(b *testing.B, st grnet.SampleTime) {
	b.Helper()
	snap, err := grnet.Snapshot(st)
	if err != nil {
		b.Fatal(err)
	}
	weights, err := snap.Weights(topology.DefaultNormalizationK)
	if err != nil {
		b.Fatal(err)
	}
	ct := routing.CostTable(weights)
	b.ResetTimer()
	for b.Loop() {
		if _, _, err := routing.DijkstraTrace(snap.Graph(), ct, grnet.Patra); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4DijkstraTrace regenerates Table 4 (Experiment A's walk).
func BenchmarkTable4DijkstraTrace(b *testing.B) { benchTrace(b, grnet.At8am) }

// BenchmarkTable5DijkstraTrace regenerates Table 5 (Experiment B's walk).
func BenchmarkTable5DijkstraTrace(b *testing.B) { benchTrace(b, grnet.At10am) }

// --- Paper experiments A-D ---------------------------------------------------

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for b.Loop() {
		if _, err := experiments.RunExperiment(id); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExperimentA reproduces Experiment A (8am; documented erratum).
func BenchmarkExperimentA(b *testing.B) { benchExperiment(b, "A") }

// BenchmarkExperimentB reproduces Experiment B (10am).
func BenchmarkExperimentB(b *testing.B) { benchExperiment(b, "B") }

// BenchmarkExperimentC reproduces Experiment C (4pm).
func BenchmarkExperimentC(b *testing.B) { benchExperiment(b, "C") }

// BenchmarkExperimentD reproduces Experiment D (6pm).
func BenchmarkExperimentD(b *testing.B) { benchExperiment(b, "D") }

// --- Extension studies (Ext-1..Ext-5) ----------------------------------------

// BenchmarkExtRoutingPolicies runs a compact Ext-1 replay: all four routing
// policies over an identical 10-minute diurnal trace.
func BenchmarkExtRoutingPolicies(b *testing.B) {
	cfg := experiments.DefaultRoutingStudyConfig()
	cfg.Duration = 10 * time.Minute
	cfg.RatePerSec = 0.01
	for b.Loop() {
		if _, err := experiments.RoutingStudy(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtCachePolicies runs a compact Ext-2 sweep: DMA/LRU/LFU/none
// against a single Zipf stream.
func BenchmarkExtCachePolicies(b *testing.B) {
	cfg := experiments.DefaultCacheStudyConfig()
	cfg.Thetas = []float64{0.729}
	cfg.Requests = 500
	for b.Loop() {
		if _, err := experiments.CacheStudy(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtClusterSize runs a compact Ext-3 sweep: two cluster sizes
// through the congestion-injection trial.
func BenchmarkExtClusterSize(b *testing.B) {
	cfg := experiments.DefaultClusterSweepConfig()
	cfg.TitleBytes = 512 << 10
	cfg.ClusterSizes = []int64{64 << 10, 512 << 10}
	cfg.CongestAfter = time.Second
	for b.Loop() {
		if _, err := experiments.ClusterSweep(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtStripingWidth runs Ext-4: modeled read parallelism for widths
// 1..16.
func BenchmarkExtStripingWidth(b *testing.B) {
	title := media.Title{Name: "feature", SizeBytes: 64 << 20, BitrateMbps: 1.5}
	widths := []int{1, 2, 4, 8, 16}
	for b.Loop() {
		if _, err := experiments.StripingSweep(title, 256<<10, widths); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtNormalizationK runs Ext-5: experiments A-D under seven K
// values.
func BenchmarkExtNormalizationK(b *testing.B) {
	ks := []float64{1, 2, 5, 10, 20, 50, 100}
	for b.Loop() {
		if _, err := experiments.KSweep(ks); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtGranularity runs a compact Ext-6 comparison: whole-title vs
// segment caching under partial viewing.
func BenchmarkExtGranularity(b *testing.B) {
	cfg := experiments.DefaultGranularityStudyConfig()
	cfg.Sessions = 300
	for b.Loop() {
		if _, err := experiments.GranularityStudy(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtScalability runs a compact Ext-7 sweep: VRA decisions on 6-
// and 50-node random topologies.
func BenchmarkExtScalability(b *testing.B) {
	cfg := experiments.DefaultScalabilityStudyConfig()
	cfg.Sizes = []int{6, 50}
	cfg.Decisions = 10
	for b.Loop() {
		if _, err := experiments.ScalabilityStudy(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtParallelFetch runs Ext-8: sequential vs multi-replica
// parallel delivery of a 1 MiB title.
func BenchmarkExtParallelFetch(b *testing.B) {
	cfg := experiments.DefaultParallelFetchConfig()
	cfg.TitleBytes = 1 << 20
	for b.Loop() {
		if _, err := experiments.ParallelFetch(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtBlocking runs a compact Ext-9 trial: one load point, all four
// policies with QoS-gated admission.
func BenchmarkExtBlocking(b *testing.B) {
	cfg := experiments.DefaultBlockingStudyConfig()
	cfg.ArrivalsPerHour = []float64{18}
	cfg.Duration = 2 * time.Hour
	for b.Loop() {
		if _, err := experiments.BlockingStudy(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtPlacement runs Ext-10: exact k-median placement sweeps.
func BenchmarkExtPlacement(b *testing.B) {
	cfg := experiments.DefaultPlacementStudyConfig()
	cfg.RandomTrials = 10
	for b.Loop() {
		if _, err := experiments.PlacementStudy(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtAdaptation runs a compact Ext-11 trial: four cache policies
// through a two-phase popularity flip.
func BenchmarkExtAdaptation(b *testing.B) {
	cfg := experiments.DefaultAdaptationStudyConfig()
	cfg.PhaseRequests = 400
	cfg.Window = 80
	for b.Loop() {
		if _, err := experiments.AdaptationStudy(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Core-stage microbenchmarks ----------------------------------------------

// BenchmarkLVNWeights measures one full link-weighting pass (equations 1-4
// over the 7-link backbone).
func BenchmarkLVNWeights(b *testing.B) {
	snap, err := grnet.Snapshot(grnet.At4pm)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for b.Loop() {
		if _, err := snap.Weights(topology.DefaultNormalizationK); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVRASelect measures one complete Figure 5 decision (weighting +
// Dijkstra + candidate choice).
func BenchmarkVRASelect(b *testing.B) {
	snap, err := grnet.Snapshot(grnet.At10am)
	if err != nil {
		b.Fatal(err)
	}
	candidates := []topology.NodeID{grnet.Thessaloniki, grnet.Xanthi}
	vra := core.VRA{}
	b.ResetTimer()
	for b.Loop() {
		if _, err := vra.Select(snap, grnet.Patra, candidates); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStripingWrite measures striping a 1 MiB title over 4 disks in
// 64 KiB clusters, including content generation and rollback bookkeeping.
func BenchmarkStripingWrite(b *testing.B) {
	title := media.Title{Name: "bench", SizeBytes: 1 << 20, BitrateMbps: 1.5}
	for b.Loop() {
		arr, err := disk.NewUniformArray("b", 4, 1<<20)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := striping.Write(arr, title, 64<<10, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDMAOnRequest measures the admission/eviction decision under a
// churning working set.
func BenchmarkDMAOnRequest(b *testing.B) {
	arr, err := disk.NewUniformArray("b", 4, 64<<10)
	if err != nil {
		b.Fatal(err)
	}
	dma, err := cache.NewDMA(cache.Config{Array: arr, ClusterBytes: 4 << 10})
	if err != nil {
		b.Fatal(err)
	}
	titles := make([]media.Title, 16)
	for i := range titles {
		titles[i] = media.Title{
			Name:        "t" + string(rune('a'+i)),
			SizeBytes:   32 << 10,
			BitrateMbps: 1.5,
		}
	}
	b.ResetTimer()
	i := 0
	for b.Loop() {
		if _, err := dma.OnRequest(titles[i%len(titles)]); err != nil {
			b.Fatal(err)
		}
		i++
	}
}

// BenchmarkLiveWatch measures a full end-to-end delivery over real localhost
// TCP: a 256 KiB title in 32 KiB clusters, preloaded at the home server (the
// hot local-service path).
func BenchmarkLiveWatch(b *testing.B) {
	svc, err := dvod.New(dvod.GRNETTopology(),
		dvod.WithClusterBytes(32<<10),
		dvod.WithDisks(2, 8<<20))
	if err != nil {
		b.Fatal(err)
	}
	if err := svc.Start(); err != nil {
		b.Fatal(err)
	}
	defer svc.Close()
	title := dvod.Title{Name: "bench-live", SizeBytes: 256 << 10, BitrateMbps: 1.5}
	if err := svc.AddTitle(title); err != nil {
		b.Fatal(err)
	}
	if err := svc.Preload("U2", title.Name); err != nil {
		b.Fatal(err)
	}
	player, err := svc.Player("U2")
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(title.SizeBytes)
	b.ResetTimer()
	for b.Loop() {
		stats, err := player.Watch(title.Name)
		if err != nil {
			b.Fatal(err)
		}
		if !stats.Verified {
			b.Fatal("not verified")
		}
	}
}

// BenchmarkPublicSelectServer measures the stateless public-API decision
// path (graph build + snapshot + VRA).
func BenchmarkPublicSelectServer(b *testing.B) {
	spec := dvod.GRNETTopology()
	util, err := dvod.GRNETUtilization("10am")
	if err != nil {
		b.Fatal(err)
	}
	candidates := []dvod.NodeID{"U4", "U5"}
	b.ResetTimer()
	for b.Loop() {
		if _, err := dvod.SelectServer(spec, util, "U2", candidates); err != nil {
			b.Fatal(err)
		}
	}
}
