package dvod

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"
)

// sumCounter adds one counter across every node of the service.
func sumCounter(svc *Service, name string) int64 {
	var total int64
	for _, snap := range svc.Metrics() {
		total += snap.Counters[name]
	}
	return total
}

// TestFileBackedEndToEnd runs the full service on a file-backed store: the
// title's blocks land as real files, delivery verifies end to end, and on
// Linux every locally served cluster leaves through the kernel path.
func TestFileBackedEndToEnd(t *testing.T) {
	dir := t.TempDir()
	spec := TopologySpec{
		Nodes: []NodeID{"A", "B"},
		Links: []LinkSpec{{A: "A", B: "B", CapacityMbps: 34}},
	}
	svc, err := New(spec,
		WithClusterBytes(8192),
		WithDisks(3, 1<<20),
		WithFileBackedDisks(dir),
		WithMergeWindow(4),
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := svc.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer svc.Close()

	title := Title{Name: "zorba", SizeBytes: 100_000, BitrateMbps: 1.5}
	if err := svc.AddTitle(title); err != nil {
		t.Fatal(err)
	}
	if err := svc.Preload("A", "zorba"); err != nil {
		t.Fatalf("Preload: %v", err)
	}

	// The preload must exist as block files on disk, under the node's own
	// subtree.
	blocks, err := filepath.Glob(filepath.Join(dir, "A", "*", "*.blk"))
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) == 0 {
		t.Fatalf("no block files under %s after preload", dir)
	}

	// Two concurrent local watchers: with the merge window open the second
	// rides the first's cohort, so the fan-out path sends file-backed frames
	// too. Content verification is on (the default), so every delivered byte
	// is checked against the synthetic content function.
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := range errs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p, err := svc.Player("A")
			if err != nil {
				errs[i] = err
				return
			}
			stats, err := p.Watch("zorba")
			if err == nil && (!stats.Verified || stats.BytesReceived != title.SizeBytes) {
				err = fmt.Errorf("bad playback stats: %+v", stats)
			}
			errs[i] = err
		}()
		time.Sleep(20 * time.Millisecond) // let the first session open the cohort
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("watch %d: %v", i, err)
		}
	}

	kernel := sumCounter(svc, "server.kernel_sends")
	fallback := sumCounter(svc, "server.fallback_sends")
	if kernel+fallback == 0 {
		t.Fatal("no sends counted")
	}
	if runtime.GOOS == "linux" {
		if kernel == 0 {
			t.Fatalf("kernel_sends = 0 on linux (fallback_sends = %d)", fallback)
		}
		if fallback != 0 {
			t.Fatalf("fallback_sends = %d on a file-backed store with no faults armed", fallback)
		}
	} else if fallback == 0 {
		t.Fatal("fallback_sends = 0 off linux")
	}
}

// TestFileBackedFaultsForceFallback arms a fault plan on a file-backed
// deployment: the injector's read interceptor makes disk.FileRef refuse, so
// every send must take the userspace fallback — and the stream still
// verifies, because the fallback is byte-identical.
func TestFileBackedFaultsForceFallback(t *testing.T) {
	var plan FaultPlan
	plan.SlowDisk(0, 2*time.Second, "A", time.Millisecond)
	svc, err := New(TopologySpec{
		Nodes: []NodeID{"A", "B"},
		Links: []LinkSpec{{A: "A", B: "B", CapacityMbps: 34}},
	},
		WithClusterBytes(8192),
		WithDisks(2, 1<<20),
		WithFileBackedDisks(t.TempDir()),
		WithFaultPlan(plan, 11),
	)
	if err != nil {
		t.Fatal(err)
	}
	title := Title{Name: "delayed", SizeBytes: 50_000, BitrateMbps: 1.5}
	if err := svc.AddTitle(title); err != nil {
		t.Fatal(err)
	}
	if err := svc.Preload("A", "delayed"); err != nil {
		t.Fatal(err)
	}
	if err := svc.Start(); err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	p, err := svc.Player("A")
	if err != nil {
		t.Fatal(err)
	}
	stats, err := p.Watch("delayed")
	if err != nil {
		t.Fatalf("Watch under disk fault: %v", err)
	}
	if !stats.Verified || stats.BytesReceived != title.SizeBytes {
		t.Fatalf("stats = %+v", stats)
	}
	if kernel := sumCounter(svc, "server.kernel_sends"); kernel != 0 {
		t.Fatalf("kernel_sends = %d with a fault interceptor armed, want 0", kernel)
	}
	if fallback := sumCounter(svc, "server.fallback_sends"); fallback == 0 {
		t.Fatal("fallback_sends = 0")
	}
}

// TestWithFileBackedDisksReuseRejected: a second service over the same data
// directory must fail loudly (block files already exist), not silently
// serve stale content.
func TestWithFileBackedDisksReuseRejected(t *testing.T) {
	dir := t.TempDir()
	mk := func() (*Service, error) {
		svc, err := New(TopologySpec{
			Nodes: []NodeID{"A", "B"},
			Links: []LinkSpec{{A: "A", B: "B", CapacityMbps: 34}},
		}, WithClusterBytes(8192), WithDisks(1, 1<<20), WithFileBackedDisks(dir))
		if err != nil {
			return nil, err
		}
		if err := svc.AddTitle(Title{Name: "dup", SizeBytes: 30_000, BitrateMbps: 1}); err != nil {
			svc.Close()
			return nil, err
		}
		return svc, svc.Preload("A", "dup")
	}
	svc, err := mk()
	if err != nil {
		t.Fatalf("first service: %v", err)
	}
	defer svc.Close()
	if svc2, err := mk(); err == nil {
		svc2.Close()
		t.Fatal("second preload over the same data dir succeeded")
	}
	if _, err := os.Stat(dir); err != nil {
		t.Fatal(err)
	}
}
