package dvod

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestChaosServerKillUnderLoad combines the resilience machinery end to end:
// six live servers with heartbeat failover, three dual-replica titles,
// concurrent clients watching in a loop while one replica holder is killed
// mid-run. Every delivery that reports success must be byte-verified; after
// the kill, deliveries must keep succeeding via the surviving replicas.
func TestChaosServerKillUnderLoad(t *testing.T) {
	svc, err := New(GRNETTopology(),
		WithClusterBytes(4096),
		WithDisks(2, 4<<20),
		WithNodeDisks("U2", 1, 1024), // the client site caches nothing
		WithFailover(10*time.Millisecond, 50*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Start(); err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	seedTenAM(t, svc)

	titles := make([]Title, 3)
	for i := range titles {
		titles[i] = Title{
			Name:        fmt.Sprintf("chaos-%d", i),
			SizeBytes:   int64(20_000 + i*7_000),
			BitrateMbps: 1.5,
		}
		if err := svc.AddTitle(titles[i]); err != nil {
			t.Fatal(err)
		}
		// Every title on U4 and one other replica.
		if err := svc.Preload("U4", titles[i].Name); err != nil {
			t.Fatal(err)
		}
		other := []NodeID{"U5", "U6", "U3"}[i]
		if err := svc.Preload(other, titles[i].Name); err != nil {
			t.Fatal(err)
		}
	}

	const (
		clients     = 4
		watchesEach = 10
		killAfter   = 2 // watches completed per client before the kill
	)
	var (
		wg          sync.WaitGroup
		successes   atomic.Int64
		failures    atomic.Int64
		corruptions atomic.Int64
		killOnce    sync.Once
		killed      = make(chan struct{})
	)
	for c := range clients {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			player, err := svc.Player("U2")
			if err != nil {
				t.Errorf("player: %v", err)
				return
			}
			for i := range watchesEach {
				if i == killAfter && c == 0 {
					killOnce.Do(func() {
						if err := svc.StopServer("U4"); err != nil {
							t.Errorf("StopServer: %v", err)
						}
						close(killed)
					})
				}
				title := titles[(c+i)%len(titles)]
				stats, err := player.Watch(title.Name)
				if err != nil {
					// Transient failure while the kill propagates is
					// acceptable; corruption is not.
					failures.Add(1)
					continue
				}
				if !stats.Verified || stats.BytesReceived != title.SizeBytes {
					corruptions.Add(1)
					continue
				}
				successes.Add(1)
			}
		}(c)
	}
	wg.Wait()

	if corruptions.Load() != 0 {
		t.Fatalf("%d corrupted deliveries", corruptions.Load())
	}
	if successes.Load() == 0 {
		t.Fatal("no successful deliveries at all")
	}
	t.Logf("chaos run: %d ok, %d transient failures", successes.Load(), failures.Load())

	// After the dust settles, the survivors serve everything.
	<-killed
	player, err := svc.Player("U2")
	if err != nil {
		t.Fatal(err)
	}
	for _, title := range titles {
		var lastErr error
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			stats, err := player.Watch(title.Name)
			if err == nil {
				if !stats.Verified {
					t.Fatalf("post-kill delivery of %s not verified", title.Name)
				}
				for _, src := range stats.Sources {
					if src == "U4" {
						t.Fatalf("post-kill delivery of %s sourced from dead U4", title.Name)
					}
				}
				lastErr = nil
				break
			}
			lastErr = err
			time.Sleep(20 * time.Millisecond)
		}
		if lastErr != nil && !errors.Is(lastErr, nil) {
			t.Fatalf("post-kill watch of %s never recovered: %v", title.Name, lastErr)
		}
	}
}
